//! Faceted context exploration — the Figure 8 keyword→path index in action,
//! together with the in-text statistics of Sec. 1/5: the long tail of rare
//! paths, the 27 contexts matching "United States", and `/country` occurring
//! in almost (but not exactly) every document.
//!
//! Run with `cargo run --release --example faceted_contexts`.

use seda_datagen::{factbook, FactbookConfig};
use seda_textindex::{ContextIndex, CountStorage, FullTextQuery};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let countries: usize =
        std::env::var("SEDA_FACTBOOK_COUNTRIES").ok().and_then(|s| s.parse().ok()).unwrap_or(100);
    let collection = factbook::generate(&FactbookConfig::paper_scaled(countries, 6))?;
    let index = ContextIndex::build(&collection, CountStorage::DocumentStore);

    println!(
        "corpus: {} documents, {} distinct paths (paper: 1600 documents, 1984 paths)",
        collection.len(),
        collection.distinct_path_count()
    );

    // The context bucket of the term (*, "United States").
    let bucket = index.context_bucket(&FullTextQuery::phrase("United States"));
    println!(
        "\n\"United States\" occurs in {} distinct contexts (paper: 27); top 10 by path frequency:",
        bucket.len()
    );
    for entry in bucket.iter().take(10) {
        println!(
            "  {:<65} freq {:>6}  in {:>5} docs",
            collection.path_string(entry.path),
            entry.frequency,
            entry.document_frequency
        );
    }

    // Prominent vs rare paths: the long tail.
    let freq = collection.path_document_frequency();
    let country = collection.paths().get_str(collection.symbols(), "/country").unwrap();
    println!(
        "\n/country occurs in {} of {} documents (paper: 1577 of 1600)",
        freq[&country],
        collection.len()
    );
    let mut tail: Vec<(usize, String)> =
        freq.iter().map(|(p, f)| (*f, collection.path_string(*p))).collect();
    tail.sort();
    println!("\nfive rarest paths (long tail):");
    for (f, p) in tail.iter().take(5) {
        println!("  {f:>4} docs  {p}");
    }
    let singletons = tail.iter().filter(|(f, _)| *f == 1).count();
    println!(
        "{singletons} of {} distinct paths occur in a single document — shredding all of them \
         into a fixed warehouse schema would be hopeless, which is the paper's motivation.",
        tail.len()
    );

    // Tag-probed bucket, as used when a query term carries a context.
    let tagged = index.context_bucket_with_tag(&collection, &FullTextQuery::Any, "trade_country");
    println!("\ncontexts with leaf tag trade_country:");
    for entry in &tagged {
        println!("  {:<65} freq {:>6}", collection.path_string(entry.path), entry.frequency);
    }
    Ok(())
}
