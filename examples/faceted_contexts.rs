//! Faceted context exploration — the Figure 8 keyword→path index in action,
//! together with the in-text statistics of Sec. 1/5: the long tail of rare
//! paths, the 27 contexts matching "United States", and `/country` occurring
//! in almost (but not exactly) every document.
//!
//! Context buckets are served through the facade's `CONTEXTS` statement; the
//! raw index is only touched for the Fig. 8 tag-probe variant.
//!
//! Run with `cargo run --release --example faceted_contexts`.

use seda_core::{EngineConfig, SedaEngine};
use seda_datagen::{factbook, FactbookConfig};
use seda_olap::Registry;
use seda_textindex::FullTextQuery;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let countries: usize =
        std::env::var("SEDA_FACTBOOK_COUNTRIES").ok().and_then(|s| s.parse().ok()).unwrap_or(100);
    let corpus = factbook::generate(&FactbookConfig::paper_scaled(countries, 6))?;
    let engine = SedaEngine::build(corpus, Registry::new(), EngineConfig::default())?;
    let collection = engine.collection();

    println!(
        "corpus: {} documents, {} distinct paths (paper: 1600 documents, 1984 paths)",
        collection.len(),
        collection.distinct_path_count()
    );

    // The context bucket of the term (*, "United States"), through the
    // unified facade.
    let mut reader = engine.reader();
    let response = reader.execute_text(r#"CONTEXTS FOR (*, "United States")"#)?;
    let Some(summary) = response.contexts() else {
        return Err("CONTEXTS request must return a context summary".into());
    };
    let Some(bucket) = summary.bucket(0) else {
        return Err("one bucket per query term".into());
    };
    println!(
        "\n\"United States\" occurs in {} distinct contexts (paper: 27); top 10 by path frequency:",
        bucket.entries.len()
    );
    for entry in bucket.entries.iter().take(10) {
        println!(
            "  {:<65} freq {:>6}  in {:>5} docs",
            collection.path_string(entry.path),
            entry.frequency,
            entry.document_frequency
        );
    }
    println!("{}", response.profile.render());

    // Prominent vs rare paths: the long tail.
    let freq = collection.path_document_frequency();
    let country = engine.resolve_path("/country")?;
    println!(
        "\n/country occurs in {} of {} documents (paper: 1577 of 1600)",
        freq.get(&country).copied().unwrap_or(0),
        collection.len()
    );
    let mut tail: Vec<(usize, String)> =
        freq.iter().map(|(p, f)| (*f, collection.path_string(*p))).collect();
    tail.sort();
    println!("\nfive rarest paths (long tail):");
    for (f, p) in tail.iter().take(5) {
        println!("  {f:>4} docs  {p}");
    }
    let singletons = tail.iter().filter(|(f, _)| *f == 1).count();
    println!(
        "{singletons} of {} distinct paths occur in a single document — shredding all of them \
         into a fixed warehouse schema would be hopeless, which is the paper's motivation.",
        tail.len()
    );

    // Tag-probed bucket (Fig. 8), as used when a query term carries a
    // context: this reads the index substrate the facade plans over.
    let tagged = engine.context_index().context_bucket_with_tag(
        collection,
        &FullTextQuery::Any,
        "trade_country",
    );
    println!("\ncontexts with leaf tag trade_country:");
    for entry in &tagged {
        println!("  {:<65} freq {:>6}", collection.path_string(entry.path), entry.frequency);
    }
    Ok(())
}
