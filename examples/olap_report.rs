//! OLAP report — after materialising the complete result for Query 1 through
//! the request facade, run the kind of analysis an off-the-shelf OLAP tool
//! would: rollups, slices and per-year averages over the
//! import-trade-percentage cube, plus a second cube over the GDP fact (which
//! spans the GDP / GDP_ppp schema evolution).
//!
//! Run with `cargo run --release --example olap_report`.

use seda_core::{EngineConfig, SedaEngine, SedaRequest};
use seda_datagen::{factbook, FactbookConfig};
use seda_olap::{aggregate, rollup, AggFn, BuildOptions, CubeQuery, Registry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let collection = factbook::generate(&FactbookConfig::paper_scaled(80, 6))?;
    let engine =
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())?;
    let mut reader = engine.reader();

    // Query 1 refined to import partners, as one complete-results request;
    // the planner resolves (and validates) the context paths.
    let request = SedaRequest::builder()
        .complete_results()
        .query_text(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)?
        .select_paths(0, ["/country/name"])
        .select_paths(1, ["/country/economy/import_partners/item/trade_country"])
        .select_paths(2, ["/country/economy/import_partners/item/percentage"])
        .build();
    let response = reader.execute(&request)?;
    println!("{}", response.profile.render());
    let Some(result) = response.table() else {
        return Err("complete-results request must return a table".into());
    };

    // Augment with the GDP fact so two cubes are produced.
    let build =
        engine.build_star_schema(result, &BuildOptions { add: vec!["GDP".into()], remove: vec![] });

    let Some(fact) = build.schema.fact("import-trade-percentage") else {
        return Err("fact table import-trade-percentage was not derived".into());
    };
    println!("== import-trade-percentage cube ({} rows) ==", fact.len());

    println!("\nrollup over (year, import-country), SUM of percentage:");
    for level in rollup(fact, &["year", "import-country"], "import-trade-percentage", AggFn::Sum)? {
        println!("  group by {:?}: {} cells", level.group_by, level.len());
        for cell in level.cells.iter().take(4) {
            println!("    {:?} = {:.1}", cell.coordinates, cell.value);
        }
    }

    println!("\nslice year=2006, AVG percentage by partner:");
    let sliced = aggregate(
        fact,
        &CubeQuery::sum(&["import-country"], "import-trade-percentage")
            .with_agg(AggFn::Avg)
            .filter("year", "2006"),
    )?;
    for cell in sliced.cells.iter().take(8) {
        println!("  {:<16} {:>6.2}%", cell.coordinates[0], cell.value);
    }

    if let Some(gdp) = build.schema.fact("GDP") {
        println!("\n== GDP cube ({} rows, spans GDP and GDP_ppp spellings) ==", gdp.len());
        let by_year = aggregate(gdp, &CubeQuery::sum(&["year"], "GDP").with_agg(AggFn::Avg))?;
        println!("average GDP by year:");
        for cell in &by_year.cells {
            println!("  {:<6} {:>18.3e}", cell.coordinates[0], cell.value);
        }
    }

    println!("\nwarnings: {}", build.warnings.len());
    Ok(())
}
