//! Schema exploration — reproduces Table 1 of the paper: dataguide statistics
//! at a 40% overlap threshold over the four (synthetic) data sets, plus the
//! threshold-sweep ablation the paper discusses in Sec. 6.1.
//!
//! Table 1 rows come from fully built engines (`SedaEngine::dataguide_stats`,
//! the same summary the query facade plans over); the threshold sweep probes
//! the dataguide substrate directly, since it varies a build-time parameter.
//!
//! Run with `cargo run --release --example schema_exploration`
//! (set `SEDA_TABLE1_SCALE=1.0` for paper-sized corpora).

use seda_core::{EngineConfig, SedaEngine};
use seda_datagen::Dataset;
use seda_dataguide::DataGuideSet;
use seda_olap::Registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 =
        std::env::var("SEDA_TABLE1_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.2);

    println!("Table 1: Dataguide statistics for threshold of 40% (corpus scale {scale})\n");
    println!(
        "{:<26} {:>12} {:>14} {:>22}",
        "data set", "# documents", "# data guides", "(paper docs -> guides)"
    );
    for dataset in Dataset::ALL {
        let collection = scaled(dataset, scale)?;
        let engine = SedaEngine::build(collection, Registry::new(), EngineConfig::default())?;
        let stats = engine.dataguide_stats();
        println!(
            "{:<26} {:>12} {:>14} {:>15} -> {}",
            dataset.name(),
            stats.documents,
            stats.dataguides,
            dataset.paper_document_count(),
            dataset.paper_dataguide_count()
        );
    }

    println!("\nReduction factor vs overlap threshold (Sec. 6.1 ablation):\n");
    println!("{:<26} {:>8} {:>8} {:>8} {:>8} {:>8}", "data set", "0.0", "0.2", "0.4", "0.6", "0.8");
    for dataset in Dataset::ALL {
        let collection = scaled(dataset, scale.min(0.1))?;
        let mut cells = Vec::new();
        for threshold in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let guides = DataGuideSet::build(&collection, threshold)?;
            cells.push(format!("{:.1}x", collection.len() as f64 / guides.len() as f64));
        }
        println!(
            "{:<26} {:>8} {:>8} {:>8} {:>8} {:>8}",
            dataset.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4]
        );
    }
    Ok(())
}

fn scaled(dataset: Dataset, scale: f64) -> seda_xmlstore::Result<seda_xmlstore::Collection> {
    use seda_datagen::*;
    Ok(match dataset {
        Dataset::GoogleBase => {
            let mut config = GoogleBaseConfig::paper();
            config.items = ((config.items as f64 * scale) as usize).max(100);
            googlebase::generate(&config)?
        }
        Dataset::Mondial => {
            let mut config = MondialConfig::paper();
            config.countries = ((config.countries as f64 * scale) as usize).max(10);
            config.provinces = ((config.provinces as f64 * scale) as usize).max(10);
            config.cities = ((config.cities as f64 * scale) as usize).max(20);
            config.seas = ((config.seas as f64 * scale) as usize).max(4);
            config.rivers = ((config.rivers as f64 * scale) as usize).max(4);
            config.organizations = ((config.organizations as f64 * scale) as usize).max(3);
            config.features = ((config.features as f64 * scale) as usize).max(4);
            mondial::generate(&config)?
        }
        Dataset::RecipeMl => {
            let mut config = RecipeMlConfig::paper();
            config.recipes = ((config.recipes as f64 * scale) as usize).max(100);
            recipeml::generate(&config)?
        }
        Dataset::WorldFactbook => {
            let countries = ((267.0 * scale) as usize).max(12);
            let years = if scale >= 0.5 { 6 } else { 3 };
            factbook::generate(&FactbookConfig::paper_scaled(countries, years))?
        }
    })
}
