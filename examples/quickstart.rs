//! Quickstart: load a handful of XML documents, run a SEDA query through the
//! unified request → plan → response facade, inspect the summaries, and
//! derive a data cube — the Figure 6 control flow in ~60 lines.
//!
//! Run with `cargo run --example quickstart`.

use seda_core::{EngineConfig, SedaEngine, SedaSession};
use seda_olap::{BuildOptions, CubeQuery, Registry};
use seda_xmlstore::parse_collection;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An XML collection (normally loaded from files; see seda-datagen for
    //    paper-scale corpora).
    let collection = parse_collection(vec![
        (
            "us2006.xml",
            r#"<country><name>United States</name><year>2006</year>
                 <economy><GDP_ppp>12.31T</GDP_ppp><import_partners>
                   <item><trade_country>China</trade_country><percentage>15</percentage></item>
                   <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                 </import_partners></economy></country>"#,
        ),
        (
            "us2005.xml",
            r#"<country><name>United States</name><year>2005</year>
                 <economy><GDP_ppp>12.0T</GDP_ppp><import_partners>
                   <item><trade_country>China</trade_country><percentage>13.8</percentage></item>
                   <item><trade_country>Mexico</trade_country><percentage>10.3</percentage></item>
                 </import_partners></economy></country>"#,
        ),
        (
            "mexico2003.xml",
            r#"<country><name>Mexico</name><year>2003</year>
                 <economy><GDP>924.4B</GDP><export_partners>
                   <item><trade_country>United States</trade_country><percentage>70.6</percentage></item>
                 </export_partners></economy></country>"#,
        ),
    ])?;

    // 2. Build the engine: data graph, full-text indexes, dataguides.
    let engine =
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())?;
    println!("dataguides: {:?}", engine.dataguide_stats());

    // 3. Plan before running: EXPLAIN shows what the engine will do.
    let query_text = r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#;
    let mut reader = engine.reader();
    let explained = reader.execute_text(&format!("EXPLAIN TOPK 10 FOR {query_text}"))?;
    if let Some(transcript) = explained.explain_transcript() {
        println!("\n{transcript}");
    }

    // 4. Search: the paper's Query 1 through a session.
    let mut session = SedaSession::new(&engine);
    let top_k = session.submit_text(query_text)?;
    println!("top-{} tuples:", top_k.tuples.len());
    for tuple in &top_k.tuples {
        let contents: Vec<String> = tuple
            .nodes
            .iter()
            .map(|&n| engine.collection().content(n).unwrap_or_default())
            .collect();
        println!("  score {:.3}  {:?}", tuple.score, contents);
    }

    // 5. Explore: context summary (which contexts does each term match?).
    let summary = session.context_summary()?;
    for bucket in &summary.buckets {
        println!("\ncontexts for {}:", bucket.label);
        for line in bucket.display(engine.collection()) {
            println!("  {line}");
        }
    }

    // 6. Discover: connection summary from the top-k results.
    let connections = session.connection_summary()?;
    println!("\nconnections:");
    for line in connections.display(engine.collection()) {
        println!("  {line}");
    }

    // 7. Refine: pin every term to the import-partner contexts (the step a
    //    user performs in the Fig. 5 GUI) so the star schema matches cleanly.
    session.select_contexts(0, vec![engine.resolve_path("/country/name")?])?;
    session.select_contexts(
        1,
        vec![engine.resolve_path("/country/economy/import_partners/item/trade_country")?],
    )?;
    session.select_contexts(
        2,
        vec![engine.resolve_path("/country/economy/import_partners/item/percentage")?],
    )?;

    // 8. Analyze: derive the star schema and aggregate.
    let build = session.build_cube(&BuildOptions::default())?;
    println!("\nwarnings: {:?}", build.warnings);
    if let Some(fact) = build.schema.fact("import-trade-percentage") {
        println!("\nfact table {} ({} rows):", fact.name, fact.len());
        for row in &fact.rows {
            println!("  {:?} -> {:?}", row.dimensions, row.measures);
        }
    }
    let cube = session.aggregate(
        "import-trade-percentage",
        &CubeQuery::sum(&["import-country"], "import-trade-percentage"),
    )?;
    println!("\ntotal import percentage by partner:");
    for cell in &cube.cells {
        println!("  {:<12} {:>6.1} (from {} rows)", cell.coordinates[0], cell.value, cell.count);
    }
    Ok(())
}
