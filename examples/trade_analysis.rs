//! Trade analysis — the paper's worked Query 1 example (Figures 1–3) on a
//! synthetic World-Factbook-like corpus, driven through the typed session
//! facade: every stage-dependent call returns a `Result<_, SedaError>`.
//!
//! The user looks for import partners of the United States and their trade
//! percentages, refines the contexts to import partners, materialises the
//! complete result, and obtains the Figure 3(c) fact and dimension tables
//! plus OLAP aggregations.
//!
//! Run with `cargo run --example trade_analysis` (set
//! `SEDA_FACTBOOK_COUNTRIES=267` for the paper-scale corpus).

use seda_core::{EngineConfig, SedaEngine, SedaSession};
use seda_datagen::{factbook, FactbookConfig};
use seda_olap::{AggFn, BuildOptions, CubeQuery, Registry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let countries: usize =
        std::env::var("SEDA_FACTBOOK_COUNTRIES").ok().and_then(|s| s.parse().ok()).unwrap_or(60);
    let collection = factbook::generate(&FactbookConfig::paper_scaled(countries, 6))?;
    println!(
        "corpus: {} documents, {} nodes, {} distinct paths",
        collection.len(),
        collection.total_nodes(),
        collection.distinct_path_count()
    );

    let engine =
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())?;
    let mut session = SedaSession::new(&engine);
    session.set_k(10);

    // Step 1: keyword-style query.
    session.submit_text(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)?;
    let summary = session.context_summary()?.clone();
    println!("\n-- context summary --");
    for bucket in &summary.buckets {
        println!("{} ({} contexts)", bucket.label, bucket.entries.len());
        for line in bucket.display(engine.collection()).iter().take(4) {
            println!("   {line}");
        }
    }
    if let Some(profile) = session.last_profile() {
        println!("\n{}", profile.render());
    }

    // Step 2: the user selects the import-partner contexts (Figure 5).
    // Paths resolve through the typed facade: a typo would surface as
    // `SedaError::UnknownPath` instead of a panic.
    let name = engine.resolve_path("/country/name")?;
    let tc = engine.resolve_path("/country/economy/import_partners/item/trade_country")?;
    let pct = engine.resolve_path("/country/economy/import_partners/item/percentage")?;
    session.select_contexts(0, vec![name])?;
    session.select_contexts(1, vec![tc])?;
    session.select_contexts(2, vec![pct])?;

    // Step 3: connection summary — keep the same-item connection only.
    let connections = session.connection_summary()?.clone();
    println!("\n-- connection summary --");
    for line in connections.display(engine.collection()).iter().take(5) {
        println!("   {line}");
    }
    let same_item: Vec<_> =
        connections.connections.iter().filter(|conn| conn.length() == 2).cloned().collect();
    session.select_connections(same_item)?;

    // Step 4: complete results and the star schema (Figure 3).
    let complete_len = session.complete_results()?.len();
    println!("\ncomplete result tuples: {complete_len}");
    let build = session.build_cube(&BuildOptions::default())?;
    println!("matched dimensions: {:?}", build.matching.dimensions);
    println!("matched facts     : {:?}", build.matching.facts);

    let Some(fact) = build.schema.fact("import-trade-percentage") else {
        return Err("fact table import-trade-percentage was not derived".into());
    };
    println!("\n-- Figure 3(c): fact table (United States rows) --");
    println!("{:<16} {:<6} {:<14} {:>10}", "country", "year", "import-country", "percentage");
    for row in fact.rows.iter().filter(|r| r.dimensions[0] == "United States") {
        println!(
            "{:<16} {:<6} {:<14} {:>10}",
            row.dimensions[0], row.dimensions[1], row.dimensions[2], row.measures[0]
        );
    }
    for dim in &build.schema.dimension_tables {
        println!("dimension {:<16} {} members", dim.name, dim.len());
    }

    // Step 5: OLAP.
    let by_partner = session.aggregate(
        "import-trade-percentage",
        &CubeQuery::sum(&["import-country"], "import-trade-percentage").with_agg(AggFn::Avg),
    )?;
    println!("\naverage US import share by partner (top 5):");
    let mut cells = by_partner.cells.clone();
    cells.sort_by(|a, b| b.value.total_cmp(&a.value));
    for cell in cells.iter().take(5) {
        println!("  {:<14} {:>6.2}%", cell.coordinates[0], cell.value);
    }
    Ok(())
}
