//! Unified API — the whole Fig. 4 pipeline (top-k search, context summary,
//! connection summary, complete results, cube processing) driven from
//! textual requests through one `SedaReader`, ending with the paper's
//! Query 1 cube computed by a single `CUBE … FOR …` statement.  Along the
//! way: a prepared statement (plan once, execute many) and the optimizer's
//! pass-by-pass rewrite trail.
//!
//! Run with `cargo run --release --example unified_api`.

use seda_core::{EngineConfig, SedaEngine, SedaRequest};
use seda_datagen::{factbook, FactbookConfig};
use seda_olap::Registry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let collection = factbook::generate(&FactbookConfig::paper_scaled(40, 3))?;
    let engine =
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())?;
    let mut reader = engine.reader();

    let query = r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#;
    let refinements = "WITH 0 IN /country/name \
                       WITH 1 IN /country/economy/import_partners/item/trade_country \
                       WITH 2 IN /country/economy/import_partners/item/percentage";

    // 1. Search: top-k tuples.
    let response = reader.execute_text(&format!("TOPK 5 FOR {query}"))?;
    if let Some(top_k) = response.top_k() {
        println!("== TOPK 5 ==");
        for tuple in &top_k.tuples {
            let contents: Vec<String> = tuple
                .nodes
                .iter()
                .map(|&n| engine.collection().content(n).unwrap_or_default())
                .collect();
            println!("  score {:.3}  {:?}", tuple.score, contents);
        }
        println!("{}", response.profile.render());
    }

    // 1b. Serve: prepare the same statement once and re-execute it.  Warm
    //     re-executions skip parsing, the rewrite passes, sorted-access
    //     resolution and — after the first run — most connectivity label
    //     probes (the compactness memo is shared across executions).
    let request = SedaRequest::parse(&format!("TOPK 5 FOR {query}"))?;
    let mut prepared = reader.prepare(&request)?;
    for _ in 0..3 {
        prepared.execute(&mut reader)?;
    }
    println!(
        "\n== PREPARED == {} executions, {} memoized compactness scores",
        prepared.executions(),
        prepared.cached_scores()
    );
    for line in prepared.plan().rewrite_trail() {
        println!("  rewrite {line}");
    }

    // 2. Explore: context summary.
    let response = reader.execute_text(&format!("CONTEXTS FOR {query}"))?;
    if let Some(summary) = response.contexts() {
        println!("\n== CONTEXTS ==");
        for bucket in &summary.buckets {
            println!("  {} -> {} context(s)", bucket.label, bucket.entries.len());
        }
    }

    // 3. Discover: connection summary.
    let response = reader.execute_text(&format!("CONNECTIONS 5 FOR {query}"))?;
    if let Some(summary) = response.connections() {
        println!("\n== CONNECTIONS ==");
        for line in summary.display(engine.collection()).iter().take(4) {
            println!("  {line}");
        }
    }

    // 4. Materialise: the complete result set for the refined query.
    let response = reader.execute_text(&format!("RESULTS FOR {query} {refinements}"))?;
    if let Some(table) = response.table() {
        println!("\n== RESULTS == {} tuple(s)", table.len());
    }

    // 5. Analyze: the whole pipeline from one textual request — complete
    //    results, star-schema derivation, cube aggregation.  EXPLAIN first.
    let cube_text =
        format!("CUBE import-trade-percentage BY import-country AGG sum FOR {query} {refinements}");
    let request = SedaRequest::parse(&format!("EXPLAIN {cube_text}"))?;
    if let Some(transcript) = reader.execute(&request)?.explain_transcript() {
        println!("\n{transcript}");
    }
    let response = reader.execute_text(&cube_text)?;
    if let Some(cube) = response.cube() {
        println!("== CUBE == total import percentage by partner:");
        let mut cells = cube.cells.clone();
        cells.sort_by(|a, b| b.value.total_cmp(&a.value));
        for cell in cells.iter().take(8) {
            println!(
                "  {:<14} {:>8.1} (from {} fact rows)",
                cell.coordinates[0], cell.value, cell.count
            );
        }
        println!("{}", response.profile.render());
    }
    Ok(())
}
