//! Offline mini stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion API this workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `sample_size`, `criterion_group!`, `criterion_main!` and
//! `black_box` — with a simple median-of-samples timer instead of Criterion's
//! statistical machinery.  Results are printed as `name  median  (samples)`
//! lines so relative comparisons (e.g. sequential vs parallel build) remain
//! meaningful.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus an
/// input parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median wall time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, also used to scale iterations per sample so that
        // fast workloads are not dominated by timer overhead.
        let warmup = Instant::now();
        black_box(f());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 1000);

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            times.push(start.elapsed() / per_sample as u32);
        }
        times.sort();
        self.median = times[times.len() / 2];
    }
}

fn run_bench(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, median: Duration::ZERO };
    f(&mut bencher);
    println!("bench {label:<60} {:>12.3?}  ({samples} samples)", bencher.median);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(3);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.samples, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream prints summaries here; the stub is a no-op).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), samples: 10, _criterion: self }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, &mut f);
        self
    }
}

/// Declares a group-runner function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("sum", 10), |b| b.iter(|| (0..10u64).sum::<u64>()));
        group.finish();
    }
}
