//! Offline mini stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! subset of proptest this workspace's property tests rely on:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`],
//!   [`Strategy::prop_filter`], [`Strategy::prop_recursive`] and
//!   [`Strategy::boxed`],
//! * regex-lite string strategies for patterns such as `"[a-z_]{1,10}"`,
//! * numeric [`std::ops::Range`] strategies and tuple strategies,
//! * [`collection::vec`], [`option::of`], [`Just`], [`any`] and the
//!   [`prop_oneof!`] union macro,
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros, and
//! * [`ProptestConfig::with_cases`].
//!
//! Cases are generated from a deterministic SplitMix64 stream, so failures
//! reproduce without shrinking (shrinking is not implemented — failing inputs
//! are printed instead).

use std::fmt;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Error signalled by `prop_assert!`-style macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG driving case generation.
pub mod test_runner {
    /// SplitMix64 stream seeded per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for the `case`-th iteration of a property.
        pub fn for_case(case: u64) -> Self {
            TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EDA_2009 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, mirroring `Strategy::prop_map`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, resampling (bounded retries; upstream
    /// tracks global rejection quotas instead).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, reason, pred }
    }

    /// Type-erases the strategy so differently-shaped strategies of the same
    /// value type can be mixed (the basis of [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng| self.sample(rng)))
    }

    /// Recursive strategies: `self` generates the leaves, `expand` wraps an
    /// inner strategy into the next level.  `depth` bounds the nesting; the
    /// `_desired_size` / `_expected_branch` hints of the upstream signature
    /// are accepted and ignored.
    fn prop_recursive<B, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        B: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> B,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            // Each level may yield either deeper nesting or a leaf, so the
            // generated shapes cover every depth up to the bound.
            current = expand(current).boxed();
        }
        current
    }
}

/// Strategy that always yields a clone of one value (`proptest::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.sample(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.reason);
    }
}

/// A type-erased, cheaply clonable strategy (`proptest::strategy::BoxedStrategy`).
#[derive(Clone)]
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given (non-empty) alternatives.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "empty prop_oneof!");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].sample(rng)
    }
}

/// `prop_oneof!`: uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Types [`any`] can generate (`proptest::arbitrary::Arbitrary`, reduced to
/// a sampling method).
pub trait Arbitrary {
    /// Draws a random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `proptest::prelude::any::<T>()`: arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` or `Some` of the inner strategy (3:1 in
    /// favour of `Some`, mirroring upstream's default weight).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Regex-lite string strategy: supports sequences of literal characters and
/// `[...]` character classes (with `a-z` ranges), each optionally followed by
/// a `{m}`, `{m,n}`, `*`, `+` or `?` quantifier.
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let class: Vec<char> = chars[i + 1..i + close].to_vec();
            i += close + 1;
            expand_class(&class)
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("quantifier lower bound"),
                    hi.trim().parse::<usize>().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("quantifier count");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        let count = if max > min { min + rng.below((max - min + 1) as u64) as usize } else { min };
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

fn expand_class(class: &[char]) -> Vec<char> {
    let mut alphabet = Vec::new();
    let mut j = 0;
    while j < class.len() {
        if j + 2 < class.len() && class[j + 1] == '-' {
            let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
            for c in lo..=hi {
                alphabet.push(char::from_u32(c).expect("valid class range"));
            }
            j += 3;
        } else {
            alphabet.push(class[j]);
            j += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class");
    alphabet
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` with length in
    /// `size` (half-open, like upstream).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Defines property tests.  Mirrors the upstream macro for the subset
/// `#![proptest_config(...)]` + `#[test] fn name(arg in strategy, ...) { .. }`.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::for_case(case);
                    $( let $arg = $crate::Strategy::sample(&$strat, &mut __rng); )*
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!("property failed on case {case}: {e}");
                    }
                }
            }
        )*
    };
}

/// `prop_assert!`: fails the current case (not the whole process) on a false
/// condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!`: equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `prop_assert_ne!`: inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;
    use super::Strategy;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = TestRng::for_case(1);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z_]{2,12}", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 12, "bad length: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = TestRng::for_case(3);
        let strat = crate::collection::vec(1u32..20, 1..8);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(!v.is_empty() && v.len() < 8);
            assert!(v.iter().all(|&x| (1..20).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0u32..100, text in "[a-b]{1,4}") {
            prop_assert!(x < 100);
            prop_assert_eq!(text.len(), text.chars().count());
        }
    }
}
