//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this crate accepts
//! `#[derive(Serialize, Deserialize)]` (including `#[serde(...)]` helper
//! attributes such as `#[serde(skip)]`) and expands to nothing.  The derives
//! exist so the annotated types keep compiling and the real serde can be
//! swapped back in by replacing the `vendor/` path dependencies.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepted and discarded.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepted and discarded.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
