//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! two marker traits and re-exports the no-op derive macros from the sibling
//! `serde_derive` stub.  Nothing in this workspace performs actual
//! serialisation yet; when a real serialisation feature lands, drop the
//! `vendor/serde*` path dependencies and depend on the real crates.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
