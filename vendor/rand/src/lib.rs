//! Offline stand-in for the `rand` crate.
//!
//! Provides the small API surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool` — backed by a SplitMix64 generator.  The
//! streams differ from upstream `rand`'s ChaCha-based `StdRng`, but every
//! generator in this workspace only requires determinism given a seed, not a
//! particular stream.

use std::ops::Range;

/// Minimal core-RNG trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
        f64::sample_range(rng, range.start as f64..range.end as f64) as f32
    }
}

/// User-facing random-value methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.0..2500.0);
            assert!((0.0..2500.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
