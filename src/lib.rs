//! # seda
//!
//! Umbrella crate of the SEDA reproduction (Balmin et al., CIDR 2009):
//! re-exports the engine crates so applications, the repository-level
//! integration tests and the examples can depend on a single crate.
//!
//! See the workspace `README.md` for the crate dependency DAG and the
//! shard → merge build lifecycle.

pub use seda_core::{
    seda_datagraph as datagraph, seda_dataguide as dataguide, seda_olap as olap,
    seda_textindex as textindex, seda_topk as topk, seda_twigjoin as twigjoin,
    seda_xmlstore as xmlstore,
};
pub use seda_core::{
    BuildProfile, ConnectionSummary, ContextBucket, ContextSelections, ContextSpec, ContextSummary,
    EngineConfig, ExecProfile, PhaseProfile, PlanStep, QueryError, QueryPlan, QueryProfile,
    QueryTerm, RequestBuilder, ResponsePayload, SedaEngine, SedaError, SedaQuery, SedaReader,
    SedaRequest, SedaResponse, SedaSession, Session, SessionStage, Statement,
};
