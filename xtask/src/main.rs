//! `cargo xtask lint` — a hand-rolled, dependency-free static-analysis pass
//! enforcing SEDA-specific rules that clippy cannot express:
//!
//! 1. **forbidden-call** — no `unwrap()`, `panic!`, `unreachable!`, `todo!`
//!    or `unimplemented!` in non-test library code; `expect()` is allowed
//!    only with a message starting with `invariant: ` that names the
//!    invariant the `seda-audit` layer (`verify()`) checks.
//! 2. **counter-budget** — a library file that bumps one of the governed
//!    pipeline counters (`sorted_accesses`, `random_accesses`,
//!    `tuples_scored`, `label_probes`) must also reference the matching
//!    budget ceiling, so counters can never drift away from governance.
//! 3. **instant-now** — `Instant::now()` only inside `core/govern.rs` (the
//!    sanctioned clock module) and bench code, so every clock read is
//!    attributable.
//! 4. **unsafe-forbid** — the workspace lint table forbids `unsafe_code` and
//!    every member manifest inherits it via `lints.workspace = true`.
//! 5. **result-error** — public `seda-core` APIs returning `Result` use the
//!    unified `SedaError` taxonomy.
//! 6. **metric-name** — metric handles (`.counter(`, `.gauge(`,
//!    `.histogram(`) are looked up via the typed constants in
//!    `seda_core::metrics::names`, never via ad-hoc string literals, and each
//!    `seda_`-prefixed metric name constant is declared exactly once per
//!    file — so the metric catalog has a single authoritative registry.
//!
//! The pass lexes each source file just enough to blank out comments,
//! string/char literals and raw strings, so rules never fire on doc examples
//! or message text, then treats everything after the first `#[cfg(test)]`
//! as test code (the repository convention keeps test modules last).
//!
//! Run as `cargo xtask lint [--root <dir>]`; exits non-zero when any
//! violation is found.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files exempt from the forbidden-call rule: the fault-injection module's
/// `panic!` *is* the injected fault under test.
const CALL_ALLOWLIST: &[&str] = &["crates/core/src/faults.rs"];

/// Bench harness code: fixture setup uses `expect` idiomatically and owns its
/// own timing; every rule except the manifest checks skips it.
const BENCH_PREFIX: &str = "crates/bench/";

/// Files allowed to call `Instant::now()`: the governance module is the
/// sanctioned clock owner, and the top-k searcher's deadline comparison is
/// itself a governance site (`seda-topk` cannot depend on `seda-core`).
const INSTANT_ALLOWLIST: &[&str] = &["crates/core/src/govern.rs", "crates/topk/src/searcher.rs"];

/// Files exempt from counter-budget pairing: `ExecProfile::absorb` aggregates
/// already-governed counters into the response profile after the fact.
const COUNTER_ALLOWLIST: &[&str] = &["crates/core/src/response.rs"];

/// `seda-core` files whose public `Result`s use typed sub-errors that the
/// facade converts via `From`: contained worker panics (`WorkerPanic`) and
/// the query parser (`QueryError`).
const RESULT_ERROR_ALLOWLIST: &[&str] =
    &["crates/core/src/parallel.rs", "crates/core/src/query.rs"];

/// Governed counter → identifiers that count as its budget check.
const COUNTER_BUDGETS: &[(&str, &[&str])] = &[
    ("sorted_accesses", &["max_sorted_accesses"]),
    ("random_accesses", &["max_random_accesses"]),
    ("tuples_scored", &["max_tuples_scored"]),
    ("label_probes", &["max_label_probes", "probe_ceiling"]),
];

/// One lint finding, reported as `file:line: [rule] detail`.
#[derive(Debug)]
struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.detail)
    }
}

/// Blanks out comments, string literals, char literals and raw strings,
/// preserving length and line structure so byte offsets and line numbers stay
/// valid.  Lifetimes (`'a`) are left untouched.
fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for slot in &mut out[from..to] {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let end = src[i..].find('\n').map(|n| i + n).unwrap_or(bytes.len());
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 1;
                let mut j = i + 2;
                while j + 1 < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j.min(bytes.len()));
                i = j;
            }
            b'"' => {
                let mut j = i + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'"' => break,
                        _ => j += 1,
                    }
                }
                blank(&mut out, i, (j + 1).min(bytes.len()));
                i = j + 1;
            }
            b'r' | b'b'
                if is_raw_string_start(bytes, i) && (i == 0 || !is_ident_byte(bytes[i - 1])) =>
            {
                let (hashes, quote) = raw_string_shape(bytes, i);
                let terminator = format!("\"{}", "#".repeat(hashes));
                let body_start = quote + 1;
                let end = src[body_start..]
                    .find(&terminator)
                    .map(|n| body_start + n + terminator.len())
                    .unwrap_or(bytes.len());
                blank(&mut out, i, end);
                i = end;
            }
            b'\'' => {
                // Char literal iff it closes within a couple of characters;
                // otherwise it is a lifetime and only the quote is consumed.
                if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    blank(&mut out, i, (j + 1).min(bytes.len()));
                    i = j + 1;
                } else if i + 2 < bytes.len() && bytes[i + 1] != b'\'' && bytes[i + 2] == b'\'' {
                    blank(&mut out, i, i + 3);
                    i += 3;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("invariant: masking replaces bytes with ASCII spaces only")
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when `bytes[i..]` starts a raw (byte) string: `r"`, `r#"`, `br"`, …
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Returns (hash count, index of the opening quote) of a raw string at `i`.
fn raw_string_shape(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // the 'r'
    let mut hashes = 0;
    while bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    (hashes, j)
}

/// Byte offset where test code starts: the first `#[cfg(test)]` marker (the
/// repository convention keeps test modules at the end of each file).
fn lib_region_end(masked: &str) -> usize {
    masked.find("#[cfg(test").unwrap_or(masked.len())
}

fn line_of(src: &str, offset: usize) -> usize {
    src[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

/// Every offset where `needle` occurs in `haystack[..end]`.
fn find_all(haystack: &str, needle: &str, end: usize) -> Vec<usize> {
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(at) = haystack[from..end].find(needle) {
        found.push(from + at);
        from += at + needle.len();
    }
    found
}

/// Rule 1+2+3+5 over one source file (`rel` is the root-relative path with
/// `/` separators).
fn lint_file(rel: &str, src: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    if rel.starts_with(BENCH_PREFIX) {
        return violations;
    }
    let masked = mask_source(src);
    let lib_end = lib_region_end(&masked);
    let report = |violations: &mut Vec<Violation>,
                  at: usize,
                  rule: &'static str,
                  detail: String| {
        violations.push(Violation { file: rel.to_string(), line: line_of(src, at), rule, detail });
    };

    // Rule 1: forbidden calls in library code.
    if !CALL_ALLOWLIST.contains(&rel) {
        for needle in [".unwrap()", "panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
            for at in find_all(&masked, needle, lib_end) {
                // `panic!(` must not also match `core::panic!(` paths or
                // idents ending in panic — require a non-ident byte before.
                if needle.ends_with("!(") && at > 0 && is_ident_byte(masked.as_bytes()[at - 1]) {
                    continue;
                }
                report(
                    &mut violations,
                    at,
                    "forbidden-call",
                    format!("`{}` in library code", needle.trim_end_matches('(')),
                );
            }
        }
        for at in find_all(&masked, ".expect(", lib_end) {
            let arg_start = at + ".expect(".len();
            let arg = src[arg_start..].trim_start();
            let ok = arg.strip_prefix('"').is_some_and(|m| m.starts_with("invariant: "));
            if !ok {
                report(
                    &mut violations,
                    at,
                    "forbidden-call",
                    "`.expect()` whose message does not start with \"invariant: \"".to_string(),
                );
            }
        }
    }

    // Rule 2: governed counter bumps must see their budget ceiling.
    if !COUNTER_ALLOWLIST.contains(&rel) {
        for (counter, budgets) in COUNTER_BUDGETS {
            let bump = format!("{counter} +=");
            for at in find_all(&masked, &bump, lib_end) {
                if !budgets.iter().any(|b| masked.contains(b)) {
                    report(
                        &mut violations,
                        at,
                        "counter-budget",
                        format!("`{counter}` bumped without any of {budgets:?} in the same file"),
                    );
                }
            }
        }
    }

    // Rule 3: clock reads only in sanctioned modules.
    if !INSTANT_ALLOWLIST.contains(&rel) {
        for at in find_all(&masked, "Instant::now(", lib_end) {
            report(
                &mut violations,
                at,
                "instant-now",
                "`Instant::now()` outside govern/bench code".to_string(),
            );
        }
        for at in find_all(&masked, "SystemTime::now(", lib_end) {
            report(
                &mut violations,
                at,
                "instant-now",
                "`SystemTime::now()` outside govern/bench code".to_string(),
            );
        }
    }

    // Rule 6: metric handles come from typed name constants, and every
    // `seda_`-prefixed metric name constant is declared exactly once.
    for needle in [".counter(", ".gauge(", ".histogram("] {
        for at in find_all(&masked, needle, lib_end) {
            let arg = src[at + needle.len()..].trim_start();
            if arg.starts_with('"') {
                report(
                    &mut violations,
                    at,
                    "metric-name",
                    format!(
                        "`{}` called with a string-literal name; use a `metrics::names` constant",
                        needle.trim_start_matches('.').trim_end_matches('(')
                    ),
                );
            }
        }
    }
    let mut metric_names: Vec<&str> = Vec::new();
    for at in find_all(&masked, "const ", lib_end) {
        let Some(name) = metric_name_literal(&src[at..lib_end.min(src.len())]) else { continue };
        if metric_names.contains(&name) {
            report(
                &mut violations,
                at,
                "metric-name",
                format!("metric name \"{name}\" is declared by more than one constant"),
            );
        } else {
            metric_names.push(name);
        }
    }

    // Rule 7: every optimizer rewrite pass is registered in the pass list.
    // An `impl RewritePass for T` whose `T` never appears (as `&T`) inside
    // the `registered_passes` body of the same file is dead weight that
    // silently never runs.
    {
        let registry_at = masked[..lib_end].find("fn registered_passes");
        for at in find_all(&masked, "impl RewritePass for ", lib_end) {
            let name_start = at + "impl RewritePass for ".len();
            let name: String = masked[name_start..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            let needle = format!("&{name}");
            let registered = registry_at.is_some_and(|r| {
                let hay = &masked[r..lib_end];
                let mut from = 0;
                while let Some(p) = hay[from..].find(&needle) {
                    let end = from + p + needle.len();
                    if hay.as_bytes().get(end).is_none_or(|b| !is_ident_byte(*b)) {
                        return true;
                    }
                    from += p + 1;
                }
                false
            });
            if !registered {
                report(
                    &mut violations,
                    at,
                    "pass-registry",
                    format!("rewrite pass `{name}` is not listed in `registered_passes`"),
                );
            }
        }
    }

    // Rule 5: public seda-core APIs return Result<_, SedaError>.
    if rel.starts_with("crates/core/src/") && !RESULT_ERROR_ALLOWLIST.contains(&rel) {
        for at in find_all(&masked, "pub fn ", lib_end) {
            let sig_end = masked[at..lib_end].find(['{', ';']).map(|n| at + n).unwrap_or(lib_end);
            let sig = &masked[at..sig_end];
            let Some(arrow) = sig.find("-> Result<") else { continue };
            let generics = &sig[arrow + "-> Result<".len()..];
            let Some(err) = result_error_type(generics) else { continue };
            if err != "SedaError" && !err.ends_with("::SedaError") {
                report(
                    &mut violations,
                    at,
                    "result-error",
                    format!("public core API returns Result<_, {err}>, expected SedaError"),
                );
            }
        }
    }

    violations
}

/// The `seda_`-prefixed string literal a `const NAME: &str = "seda_…";`
/// declaration binds, when `decl` starts at its `const` keyword (sliced from
/// the unmasked source, so the literal is intact).  Metric name constants
/// follow this exact shape; any other constant returns `None`.
fn metric_name_literal(decl: &str) -> Option<&str> {
    let stmt = &decl[..decl.find(';')?];
    let value = &stmt[stmt.find("= \"")? + 3..];
    let literal = value.split('"').next()?;
    literal.starts_with("seda_").then_some(literal)
}

/// The error type of `Result<T, E>` generic args (`generics` starts right
/// after `Result<`).  `None` when the Result elides its error type (an
/// aliased `Result<T>`, whose alias fixes the error type at its definition).
fn result_error_type(generics: &str) -> Option<String> {
    let mut depth = 0usize;
    let mut top_comma = None;
    let mut end = generics.len();
    for (i, c) in generics.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => {
                if depth == 0 {
                    end = i;
                    break;
                }
                depth -= 1;
            }
            ',' if depth == 0 && top_comma.is_none() => top_comma = Some(i),
            _ => {}
        }
    }
    top_comma.map(|comma| generics[comma + 1..end].trim().to_string())
}

/// Rule 4: workspace lint table + per-member inheritance.
fn lint_manifests(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut check = |rel: String, ok: bool, detail: &str| {
        if !ok {
            violations.push(Violation {
                file: rel,
                line: 1,
                rule: "unsafe-forbid",
                detail: detail.to_string(),
            });
        }
    };

    let root_manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    check(
        "Cargo.toml".to_string(),
        root_manifest.contains("[workspace.lints.rust]")
            && root_manifest.contains("unsafe_code = \"forbid\""),
        "workspace lint table must forbid unsafe_code",
    );

    let mut manifests = vec![root.join("Cargo.toml")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let manifest = entry.path().join("Cargo.toml");
            if manifest.is_file() {
                manifests.push(manifest);
            }
        }
    }
    for manifest in manifests {
        let text = std::fs::read_to_string(&manifest).unwrap_or_default();
        let rel =
            manifest.strip_prefix(root).unwrap_or(&manifest).to_string_lossy().replace('\\', "/");
        let inherits = text.contains("[lints]") && text.contains("workspace = true");
        check(
            rel,
            inherits,
            "crate must inherit the workspace lint table (lints.workspace = true)",
        );
    }
    violations
}

/// Collects the library sources in scope: `crates/*/src/**/*.rs` plus the
/// umbrella crate's `src/`.  Benches, tests, examples, vendor stand-ins and
/// this xtask are out of scope.
fn library_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut walk_src = |dir: PathBuf| {
        let mut stack = vec![dir];
        while let Some(current) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&current) else { continue };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    files.push(path);
                }
            }
        }
    };
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_src(src);
            }
        }
    }
    walk_src(root.join("src"));
    files.sort();
    files
}

/// Runs every rule over the tree at `root` and returns all violations.
fn lint_tree(root: &Path) -> Vec<Violation> {
    let mut violations = lint_manifests(root);
    for path in library_sources(root) {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        // Bin targets under src/bin are CLI surfaces, linted like library
        // code except in bench (excluded wholesale above).
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        violations.extend(lint_file(&rel, &src));
    }
    violations
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).parent().map(Path::to_path_buf);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = it.next().map(PathBuf::from),
            "lint" => command = Some("lint"),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root else {
        eprintln!("no workspace root (pass --root <dir>)");
        return ExitCode::from(2);
    };
    match command.unwrap_or("lint") {
        "lint" => {
            let violations = lint_tree(&root);
            for v in &violations {
                println!("{v}");
            }
            if violations.is_empty() {
                println!("xtask lint: clean ({} rules)", 7);
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        _ => ExitCode::from(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_strings_and_chars_but_not_lifetimes() {
        let src = "let a = \"x.unwrap()\"; // panic!(no)\nlet b: &'static str = r#\"todo!()\"#;\nlet c = 'u';\n";
        let masked = mask_source(src);
        assert!(!masked.contains("unwrap"));
        assert!(!masked.contains("panic"));
        assert!(!masked.contains("todo"));
        assert!(masked.contains("'static"));
        assert_eq!(masked.len(), src.len());
        assert_eq!(masked.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn unwrap_in_library_code_is_flagged_but_test_code_is_not() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }\n";
        let violations = lint_file("crates/demo/src/lib.rs", src);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "forbidden-call");
        assert_eq!(violations[0].line, 1);
    }

    #[test]
    fn expect_requires_an_invariant_message() {
        let bad = "fn f() { x.expect(\"just set\"); }\n";
        assert_eq!(lint_file("crates/demo/src/lib.rs", bad).len(), 1);
        let good = "fn f() { x.expect(\"invariant: slots are dense\"); }\n";
        assert!(lint_file("crates/demo/src/lib.rs", good).is_empty());
    }

    #[test]
    fn counter_bump_requires_budget_check() {
        let bad = "fn f(s: &mut S) { s.sorted_accesses += 1; }\n";
        let violations = lint_file("crates/demo/src/lib.rs", bad);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "counter-budget");
        let good =
            "fn f(s: &mut S, m: usize) { s.sorted_accesses += 1; check(s, max_sorted_accesses); }\n";
        assert!(lint_file("crates/demo/src/lib.rs", good).is_empty());
    }

    #[test]
    fn instant_now_is_flagged_outside_sanctioned_modules() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(lint_file("crates/demo/src/lib.rs", src)[0].rule, "instant-now");
        assert!(lint_file("crates/core/src/govern.rs", src).is_empty());
        assert!(lint_file("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn core_public_results_must_use_seda_error() {
        let bad = "pub fn f() -> Result<u32, OtherError> {\n    todo()\n}\n";
        let violations = lint_file("crates/core/src/engine.rs", bad);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "result-error");
        let good = "pub fn f() -> Result<Vec<(u32, u8)>, SedaError> {\n    g()\n}\n";
        assert!(lint_file("crates/core/src/engine.rs", good).is_empty());
        let aliased = "pub fn f() -> Result<u32> {\n    g()\n}\n";
        assert!(lint_file("crates/core/src/engine.rs", aliased).is_empty());
    }

    #[test]
    fn literal_metric_names_are_flagged_but_typed_constants_are_not() {
        let bad = "fn f(m: &MetricsRegistry) { m.counter(\"seda_adhoc_total\", \"\").inc(); }\n";
        let violations = lint_file("crates/demo/src/lib.rs", bad);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "metric-name");
        let good = "fn f(m: &MetricsRegistry) { m.counter(names::REQUESTS_TOTAL, \"\").inc(); }\n";
        assert!(lint_file("crates/demo/src/lib.rs", good).is_empty());
        // Test code is exempt, like every other source rule.
        let test_only = "#[cfg(test)]\nmod tests { fn f(m: &M) { m.gauge(\"seda_x\").set(1); } }\n";
        assert!(lint_file("crates/demo/src/lib.rs", test_only).is_empty());
    }

    #[test]
    fn duplicated_metric_name_constants_are_flagged() {
        let bad = "pub mod names {\n    pub const A: &str = \"seda_widgets_total\";\n    pub const B: &str = \"seda_widgets_total\";\n}\n";
        let violations = lint_file("crates/demo/src/lib.rs", bad);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "metric-name");
        assert_eq!(violations[0].line, 3, "the duplicate declaration is flagged, not the first");
        let good = "pub mod names {\n    pub const A: &str = \"seda_widgets_total\";\n    pub const B: &str = \"seda_gadgets_total\";\n}\n";
        assert!(lint_file("crates/demo/src/lib.rs", good).is_empty());
        // Non-metric constants never participate.
        let unrelated = "const LABELS: [&str; 2] = [\"a\", \"b\"];\nconst LABELS2: [&str; 2] = [\"a\", \"b\"];\n";
        assert!(lint_file("crates/demo/src/lib.rs", unrelated).is_empty());
    }

    #[test]
    fn result_error_type_handles_nested_generics() {
        assert_eq!(result_error_type("Vec<(u32, u8)>, SedaError>").as_deref(), Some("SedaError"));
        assert_eq!(result_error_type("u32>").as_deref(), None);
        assert_eq!(
            result_error_type("HashMap<K, V>, crate::SedaError>").as_deref(),
            Some("crate::SedaError")
        );
    }

    #[test]
    fn unregistered_rewrite_passes_are_flagged() {
        let bad = "trait RewritePass {}\nstruct Orphan;\nimpl RewritePass for Orphan {}\nfn registered_passes() -> [&'static dyn RewritePass; 0] {\n    []\n}\n";
        let violations = lint_file("crates/demo/src/lib.rs", bad);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "pass-registry");
        let good = "trait RewritePass {}\nstruct Listed;\nimpl RewritePass for Listed {}\nfn registered_passes() -> [&'static dyn RewritePass; 1] {\n    [&Listed]\n}\n";
        assert!(lint_file("crates/demo/src/lib.rs", good).is_empty());
        // A prefix of a registered name is not itself registered.
        let prefix = "trait RewritePass {}\nstruct Access;\nstruct AccessOrder;\nimpl RewritePass for Access {}\nimpl RewritePass for AccessOrder {}\nfn registered_passes() -> [&'static dyn RewritePass; 1] {\n    [&AccessOrder]\n}\n";
        let violations = lint_file("crates/demo/src/lib.rs", prefix);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].detail.contains("`Access`"), "{violations:?}");
    }

    #[test]
    fn bad_fixture_tree_fails_and_counts_every_rule() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/bad");
        let violations = lint_tree(&root);
        assert!(!violations.is_empty());
        for rule in [
            "forbidden-call",
            "counter-budget",
            "instant-now",
            "unsafe-forbid",
            "metric-name",
            "pass-registry",
        ] {
            assert!(
                violations.iter().any(|v| v.rule == rule),
                "fixture must trip {rule}: {violations:?}"
            );
        }
    }
}
