//! Seeded-violation fixture: every lint rule must fire on this file.

use std::time::Instant;

pub struct Stats {
    pub sorted_accesses: u64,
}

/// Rule 1: bare unwrap, a non-invariant expect, and a panic.
pub fn forbidden_calls(input: Option<u32>) -> u32 {
    let value = input.unwrap();
    let doubled = Some(value * 2).expect("just computed");
    if doubled > 100 {
        panic!("too big");
    }
    doubled
}

/// Rule 2: bumps a governed counter with no budget check in sight.
pub fn unpaired_bump(stats: &mut Stats) {
    stats.sorted_accesses += 1;
}

/// Rule 3: reads the clock outside govern/bench code.
pub fn rogue_clock() -> Instant {
    Instant::now()
}

/// Rule 6 (declarations): the same metric name registered under two
/// different constants.
pub mod names {
    /// The widget counter.
    pub const WIDGETS_TOTAL: &str = "seda_widgets_total";
    /// Accidental duplicate of the widget counter.
    pub const WIDGETS_AGAIN: &str = "seda_widgets_total";
}

/// A stand-in for the metrics registry so rule 6 has a call site.
pub struct Metrics;

impl Metrics {
    /// Accepts any name, like the real registry.
    pub fn counter(&self, _name: &str, _label: &str) {}
}

/// Rule 6 (call sites): an ad-hoc string-literal metric name.
pub fn rogue_metric(metrics: &Metrics) {
    metrics.counter("seda_adhoc_total", "");
}

/// A stand-in for the optimizer's pass trait so rule 7 has a shape to scan.
pub trait RewritePass {}

/// Rule 7: a rewrite pass that never made it into the registry.
pub struct Unregistered;

impl RewritePass for Unregistered {}

/// The registry rule 7 checks against — conspicuously empty.
pub fn registered_passes() -> [&'static dyn RewritePass; 0] {
    []
}

#[cfg(test)]
mod tests {
    // unwrap here is fine: test code is exempt.
    #[test]
    fn exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
