//! Structural invariant checks for the dataguide substrate.
//!
//! Invariant catalog (class ids in brackets):
//!
//! * `path-index` — the inverted `path → guides` index agrees exactly with
//!   the guides: every `(path, guide)` membership appears once in the index
//!   and nothing else does.  The connection-summary path relies on this index
//!   being a faithful view of the guides.
//! * `assignment` — the document → guide assignment is consistent: every
//!   assigned guide id is in bounds, the guide's coverage list contains the
//!   document, and conversely every covered document is assigned back to that
//!   guide (so no document is claimed by two guides).
//!
//! A default-constructed (never built) [`DataGuideSet`] passes vacuously.

use std::collections::HashMap;

use seda_xmlstore::audit::{finish, AuditResult, InvariantViolation};
use seda_xmlstore::{DocId, PathId};

use crate::guide::{DataGuideSet, GuideId};

const SUBSTRATE: &str = "dataguide";

impl DataGuideSet {
    /// Verifies the structural invariants of the built guide set.
    ///
    /// Returns `Ok(())` when every invariant holds, or the full list of
    /// violations otherwise.  Runs in time linear in the total number of
    /// guide paths and covered documents.
    pub fn verify(&self) -> AuditResult {
        let mut violations = Vec::new();
        self.verify_path_index(&mut violations);
        self.verify_assignment(&mut violations);
        finish(violations)
    }

    /// The `path-index` class: recompute the inverted index from the guides
    /// and compare it entry-by-entry (order-insensitively — insertion order
    /// in the live index follows merge history, not guide id).
    fn verify_path_index(&self, violations: &mut Vec<InvariantViolation>) {
        let mut expected: HashMap<PathId, Vec<u32>> = HashMap::new();
        for (i, guide) in self.guides.iter().enumerate() {
            for &path in &guide.paths {
                expected.entry(path).or_default().push(i as u32);
            }
        }
        for (path, want) in &expected {
            let mut got = self.path_index.get(path).cloned().unwrap_or_default();
            got.sort_unstable();
            if got != *want {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "path-index",
                    format!(
                        "path {} maps to guides {:?} in the index but {:?} per the guides",
                        path.0, got, want
                    ),
                ));
            }
        }
        for path in self.path_index.keys() {
            if !expected.contains_key(path) {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "path-index",
                    format!("path {} is indexed but occurs in no guide", path.0),
                ));
            }
        }
    }

    /// The `assignment` class: document ↔ guide coverage is a bijection
    /// between `assignment` entries and guide coverage slots.
    fn verify_assignment(&self, violations: &mut Vec<InvariantViolation>) {
        for (&doc, &gid) in &self.assignment {
            match self.guides.get(gid.index()) {
                None => violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "assignment",
                    format!(
                        "document {} is assigned to guide {} but only {} guides exist",
                        doc.0,
                        gid.0,
                        self.guides.len()
                    ),
                )),
                Some(guide) if !guide.documents.contains(&doc) => {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "assignment",
                        format!(
                            "document {} is assigned to guide {} which does not cover it",
                            doc.0, gid.0
                        ),
                    ));
                }
                Some(_) => {}
            }
        }
        for (i, guide) in self.guides.iter().enumerate() {
            for &doc in &guide.documents {
                if self.assignment.get(&doc) != Some(&GuideId(i as u32)) {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "assignment",
                        format!(
                            "guide {} covers document {} but the document is assigned to {:?}",
                            i,
                            doc.0,
                            self.assignment.get(&doc)
                        ),
                    ));
                }
            }
        }
    }

    /// Test-only corruption hook: desyncs the path → guide index by dropping
    /// the entry for `path`, leaving the guides themselves untouched.
    #[doc(hidden)]
    pub fn corrupt_drop_path_index(&mut self, path: PathId) -> bool {
        self.path_index.remove(&path).is_some()
    }

    /// Test-only corruption hook: rewrites a document's assignment without
    /// updating guide coverage.
    #[doc(hidden)]
    pub fn corrupt_reassign_document(&mut self, doc: DocId, guide: GuideId) {
        self.assignment.insert(doc, guide);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_xmlstore::parse_collection;

    fn built_set() -> (seda_xmlstore::Collection, DataGuideSet) {
        let c = parse_collection(vec![
            ("a1.xml", "<a><x>1</x><y>2</y></a>"),
            ("a2.xml", "<a><x>3</x><y>4</y><z>5</z></a>"),
            ("b1.xml", "<b><p>1</p><q>2</q></b>"),
        ])
        .unwrap();
        let set = DataGuideSet::build(&c, 0.4).unwrap();
        (c, set)
    }

    #[test]
    fn fresh_set_passes() {
        let (_, set) = built_set();
        set.verify().unwrap();
        DataGuideSet::default().verify().unwrap();
    }

    #[test]
    fn dropped_path_index_entry_fails_path_index() {
        let (c, mut set) = built_set();
        let x = c.paths().get_str(c.symbols(), "/a/x").unwrap();
        assert!(set.corrupt_drop_path_index(x));
        let violations = set.verify().unwrap_err();
        assert!(violations.iter().any(|v| v.invariant == "path-index"));
        assert!(violations.iter().all(|v| v.invariant != "assignment"));
    }

    #[test]
    fn reassigned_document_fails_assignment() {
        let (_, mut set) = built_set();
        let bogus = GuideId(set.len() as u32);
        set.corrupt_reassign_document(DocId(0), bogus);
        let violations = set.verify().unwrap_err();
        assert!(violations.iter().any(|v| v.invariant == "assignment"));
    }

    #[test]
    fn cross_guide_reassignment_is_detected_from_both_sides() {
        let (_, mut set) = built_set();
        // Move document 0 to the other (valid) guide: the guide still claims
        // it while the assignment now points elsewhere.
        let current = set.guide_of_document(DocId(0)).unwrap();
        let other = GuideId(if current.0 == 0 { 1 } else { 0 });
        set.corrupt_reassign_document(DocId(0), other);
        let violations = set.verify().unwrap_err();
        assert!(violations.iter().filter(|v| v.invariant == "assignment").count() >= 2);
    }
}
