//! # seda-dataguide
//!
//! Dataguide summaries for SEDA (Sec. 6 of the paper): per-document
//! dataguides, the overlap-threshold merge algorithm behind Table 1,
//! inter-dataguide links, and connection discovery for the connection
//! summary, including the false-positive analysis of Sec. 6.1.
//!
//! ```
//! use seda_dataguide::DataGuideSet;
//! use seda_xmlstore::parse_collection;
//!
//! let collection = parse_collection(vec![
//!     ("a.xml", "<a><x>1</x></a>"),
//!     ("b.xml", "<a><x>2</x></a>"),
//!     ("c.xml", "<b><y>3</y></b>"),
//! ]).unwrap();
//! let guides = DataGuideSet::build(&collection, 0.4).unwrap();
//! assert_eq!(guides.len(), 2);
//! ```

pub mod audit;
pub mod connection;
pub mod guide;

pub use connection::{
    discover_connections, false_positive_connections, guide_connection, guide_links, Connection,
    GuideConnection, GuideLink,
};
pub use guide::{DataGuide, DataGuideSet, DataGuideShard, DataGuideStats, GuideId};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::guide::DataGuideSet;
    use seda_xmlstore::Collection;

    /// Builds a collection of documents, each choosing one of `shapes`
    /// distinct flat schemas.
    fn shaped_collection(assignments: &[u8], shapes: u8) -> Collection {
        let mut c = Collection::new();
        for (i, &a) in assignments.iter().enumerate() {
            let shape = a % shapes.max(1);
            c.add_document(format!("d{i}.xml"), |b| {
                b.start_element(&format!("shape{shape}"))?;
                for f in 0..3 {
                    b.leaf(&format!("field_{shape}_{f}"), &format!("{i}"))?;
                }
                b.end_element()?;
                Ok(())
            })
            .unwrap();
        }
        c
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The number of dataguides never exceeds the number of documents,
        /// equals the number of distinct disjoint shapes, and every document
        /// is assigned to exactly one guide.
        #[test]
        fn guide_count_is_bounded(assignments in proptest::collection::vec(0u8..6, 1..40), shapes in 1u8..6) {
            let c = shaped_collection(&assignments, shapes);
            let set = DataGuideSet::build(&c, 0.4).unwrap();
            prop_assert!(set.len() <= c.len());
            let distinct_shapes: std::collections::HashSet<u8> =
                assignments.iter().map(|a| a % shapes.max(1)).collect();
            prop_assert_eq!(set.len(), distinct_shapes.len());
            let mut covered = 0usize;
            for (_, g) in set.iter() { covered += g.documents().len(); }
            prop_assert_eq!(covered, c.len());
        }

        /// Raising the threshold can only increase (or keep) the number of
        /// dataguides: merging becomes harder.
        #[test]
        fn guide_count_is_monotone_in_threshold(assignments in proptest::collection::vec(0u8..6, 1..30)) {
            let c = shaped_collection(&assignments, 6);
            let low = DataGuideSet::build(&c, 0.1).unwrap();
            let mid = DataGuideSet::build(&c, 0.5).unwrap();
            let high = DataGuideSet::build(&c, 0.9).unwrap();
            prop_assert!(low.len() <= mid.len());
            prop_assert!(mid.len() <= high.len());
        }

        /// Overlap is symmetric and within [0, 1] for arbitrary documents.
        #[test]
        fn overlap_properties(a in 0u8..6, b in 0u8..6) {
            let c = shaped_collection(&[a, b], 6);
            let g1 = crate::guide::DataGuide::of_document(&c, seda_xmlstore::DocId(0)).unwrap();
            let g2 = crate::guide::DataGuide::of_document(&c, seda_xmlstore::DocId(1)).unwrap();
            let o12 = g1.overlap(&g2);
            let o21 = g2.overlap(&g1);
            prop_assert!((o12 - o21).abs() < 1e-12);
            prop_assert!((0.0..=1.0).contains(&o12));
            if a % 6 == b % 6 { prop_assert!((o12 - 1.0).abs() < 1e-12); }
        }
    }
}
