//! Connection discovery (Sec. 6).
//!
//! After the user restricts the contexts of her query terms, there may still
//! be several structural ways to relate the matching nodes (the paper's
//! example: a `trade_country` can pair with the `percentage` of the *same*
//! `item` or with the `percentage` of a *sibling* `item`).  SEDA presents a
//! *connection summary* — pairwise connections observed between the nodes of
//! the top-k result — and lets the user pick the relevant ones.
//!
//! Two complementary sources of connections are implemented:
//!
//! * [`discover_connections`] extracts connections from result tuples by
//!   abstracting the shortest data-graph path between every pair of matched
//!   nodes into a *signature* (the sequence of contexts visited).  These are
//!   instantiated connections, the ones SEDA shows the user.
//! * [`guide_connection`] computes the shortest connection between two paths
//!   in the merged dataguide summary (plus inter-guide links).  Dataguide
//!   connections that are never instantiated in the query result are the
//!   *false positives* the paper attributes to keyword restrictions and
//!   overlap merging; [`false_positive_connections`] measures them.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use seda_datagraph::{shortest_path_with, DataGraph, EdgeKind, TraversalScratch};
use seda_xmlstore::{Collection, NodeId, PathId};

use crate::guide::{DataGuideSet, GuideId};

/// A connection between two contexts, abstracted from instance data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Connection {
    /// Context of the first endpoint.
    pub from_path: PathId,
    /// Context of the second endpoint.
    pub to_path: PathId,
    /// The signature: sequence of contexts visited along the shortest
    /// connecting path, endpoints included.
    pub signature: Vec<PathId>,
    /// Edge kinds used along the path (deduplicated, in first-use order).
    pub edge_kinds: Vec<EdgeKind>,
    /// Number of result tuples exhibiting this connection.
    pub support: usize,
}

impl Connection {
    /// Number of edges on the connection.
    pub fn length(&self) -> usize {
        self.signature.len().saturating_sub(1)
    }

    /// Renders the signature in `/a/b ~ /a/c` style for display.
    pub fn display(&self, collection: &Collection) -> String {
        self.signature.iter().map(|&p| collection.path_string(p)).collect::<Vec<_>>().join(" ~ ")
    }
}

/// Key identifying a connection irrespective of its support.
fn signature_key(signature: &[PathId]) -> Vec<PathId> {
    // Normalise direction so A~B and B~A are the same connection.
    let reversed: Vec<PathId> = signature.iter().rev().copied().collect();
    if reversed < signature.to_vec() {
        reversed
    } else {
        signature.to_vec()
    }
}

/// Discovers pairwise connections between the nodes of result tuples.
///
/// For every tuple and every pair of member nodes, the shortest path in the
/// data graph (bounded by `max_depth`) is abstracted to its context signature;
/// identical signatures are aggregated with their support count.  Connections
/// are returned most-frequent first.
pub fn discover_connections(
    collection: &Collection,
    graph: &DataGraph,
    tuples: &[Vec<NodeId>],
    max_depth: usize,
) -> Vec<Connection> {
    let mut aggregated: BTreeMap<Vec<PathId>, Connection> = BTreeMap::new();
    let mut scratch = TraversalScratch::new();
    for tuple in tuples {
        for i in 0..tuple.len() {
            for j in (i + 1)..tuple.len() {
                let a = tuple[i];
                let b = tuple[j];
                if a == b {
                    continue;
                }
                let Some(hops) = shortest_path_with(graph, &mut scratch, a, b, max_depth) else {
                    continue;
                };
                let Ok(start_path) = collection.context(a) else { continue };
                let mut signature = Vec::with_capacity(hops.len() + 1);
                signature.push(start_path);
                let mut edge_kinds: Vec<EdgeKind> = Vec::new();
                let mut valid = true;
                for hop in &hops {
                    match collection.context(hop.node) {
                        Ok(p) => signature.push(p),
                        Err(_) => {
                            valid = false;
                            break;
                        }
                    }
                    if !edge_kinds.contains(&hop.kind) {
                        edge_kinds.push(hop.kind);
                    }
                }
                if !valid {
                    continue;
                }
                let key = signature_key(&signature);
                match aggregated.get_mut(&key) {
                    Some(existing) => existing.support += 1,
                    None => {
                        aggregated.insert(
                            key,
                            Connection {
                                from_path: signature[0],
                                to_path: *signature
                                    .last()
                                    .expect("invariant: a connection signature has both endpoints"),
                                signature,
                                edge_kinds,
                                support: 1,
                            },
                        );
                    }
                }
            }
        }
    }
    let mut connections: Vec<Connection> = aggregated.into_values().collect();
    connections.sort_by(|a, b| b.support.cmp(&a.support).then(a.signature.cmp(&b.signature)));
    connections
}

/// A connection computed purely from the dataguide summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuideConnection {
    /// First endpoint context.
    pub from_path: PathId,
    /// Second endpoint context.
    pub to_path: PathId,
    /// Number of edges on the shortest summary-level connection.
    pub length: usize,
    /// Guides the endpoints were found in (equal for intra-guide
    /// connections).
    pub guides: (GuideId, GuideId),
    /// Whether the connection crosses guides via an inter-guide link.
    pub crosses_guides: bool,
}

/// A link between two dataguides, derived from a non-tree edge of the data
/// graph (IDREF / XLink / value-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuideLink {
    /// Guide and context of the source endpoint.
    pub from: (GuideId, PathId),
    /// Guide and context of the target endpoint.
    pub to: (GuideId, PathId),
    /// Kind of the underlying edge.
    pub kind: EdgeKind,
}

/// Derives inter-dataguide links from the materialised non-tree edges of the
/// data graph ("a set of links between the dataguides corresponding to the
/// external edges between documents in G").
pub fn guide_links(
    collection: &Collection,
    graph: &DataGraph,
    guides: &DataGuideSet,
) -> Vec<GuideLink> {
    let mut links = Vec::new();
    let mut seen = HashMap::new();
    for edge in graph.edges() {
        let (Ok(from_path), Ok(to_path)) =
            (collection.context(edge.from), collection.context(edge.to))
        else {
            continue;
        };
        let (Some(from_guide), Some(to_guide)) =
            (guides.guide_of_document(edge.from.doc), guides.guide_of_document(edge.to.doc))
        else {
            continue;
        };
        let key = (from_guide, from_path, to_guide, to_path, edge.kind);
        if seen.insert(key, ()).is_none() {
            links.push(GuideLink {
                from: (from_guide, from_path),
                to: (to_guide, to_path),
                kind: edge.kind,
            });
        }
    }
    links
}

/// Distance between two paths within one dataguide, i.e. the tree distance in
/// the guide's path trie (`depth(a) + depth(b) - 2 * |common prefix|`).
fn intra_guide_distance(collection: &Collection, a: PathId, b: PathId) -> usize {
    let pa = collection.paths().resolve(a);
    let pb = collection.paths().resolve(b);
    let common = pa.steps().iter().zip(pb.steps().iter()).take_while(|(x, y)| x == y).count();
    pa.len() + pb.len() - 2 * common
}

/// Shortest summary-level connection between two contexts, using the dataguide
/// tries plus at most one inter-guide link ("if there are multiple paths
/// between two dataguide nodes, the algorithm chooses the shortest").
pub fn guide_connection(
    collection: &Collection,
    guides: &DataGuideSet,
    links: &[GuideLink],
    from_path: PathId,
    to_path: PathId,
) -> Option<GuideConnection> {
    let from_guides = guides.guides_with_path(from_path);
    let to_guides = guides.guides_with_path(to_path);
    if from_guides.is_empty() || to_guides.is_empty() {
        return None;
    }

    // Intra-guide connection when some guide contains both paths.
    let mut best: Option<GuideConnection> = None;
    for &g in &from_guides {
        if to_guides.contains(&g) {
            let length = intra_guide_distance(collection, from_path, to_path);
            let candidate = GuideConnection {
                from_path,
                to_path,
                length,
                guides: (g, g),
                crosses_guides: false,
            };
            if best.as_ref().map(|b| candidate.length < b.length).unwrap_or(true) {
                best = Some(candidate);
            }
        }
    }

    // Cross-guide connection via one link.
    for link in links {
        let (lg, lp) = link.from;
        let (rg, rp) = link.to;
        // Try both orientations of the link.
        for ((g1, p1), (g2, p2)) in [((lg, lp), (rg, rp)), ((rg, rp), (lg, lp))] {
            if from_guides.contains(&g1)
                && guides.guide(g1).contains(from_path)
                && guides.guide(g1).contains(p1)
                && to_guides.contains(&g2)
                && guides.guide(g2).contains(to_path)
                && guides.guide(g2).contains(p2)
            {
                let length = intra_guide_distance(collection, from_path, p1)
                    + 1
                    + intra_guide_distance(collection, p2, to_path);
                let candidate = GuideConnection {
                    from_path,
                    to_path,
                    length,
                    guides: (g1, g2),
                    crosses_guides: g1 != g2 || p1 != from_path || p2 != to_path,
                };
                if best.as_ref().map(|b| candidate.length < b.length).unwrap_or(true) {
                    best = Some(candidate);
                }
            }
        }
    }
    best
}

/// Dataguide-level connections between `path_pairs` that are **not**
/// instantiated by any of the given result tuples — the false positives of
/// Sec. 6.1.  Returns `(false_positives, total_guide_connections)`.
pub fn false_positive_connections(
    collection: &Collection,
    guides: &DataGuideSet,
    links: &[GuideLink],
    instantiated: &[Connection],
    path_pairs: &[(PathId, PathId)],
) -> (usize, usize) {
    let mut false_positives = 0usize;
    let mut total = 0usize;
    for &(a, b) in path_pairs {
        if guide_connection(collection, guides, links, a, b).is_some() {
            total += 1;
            let instantiated_pair = instantiated.iter().any(|c| {
                (c.from_path == a && c.to_path == b) || (c.from_path == b && c.to_path == a)
            });
            if !instantiated_pair {
                false_positives += 1;
            }
        }
    }
    (false_positives, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guide::DataGuideSet;
    use seda_datagraph::GraphConfig;
    use seda_xmlstore::parse_collection;

    fn setup() -> (Collection, DataGraph, DataGuideSet) {
        let c = parse_collection(vec![
            (
                "us.xml",
                r#"<country id="cty-us"><name>United States</name><year>2006</year>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                       <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                     </import_partners></economy>
                   </country>"#,
            ),
            (
                "sea.xml",
                r#"<sea id="sea-pac"><name>Pacific Ocean</name>
                     <bordering country_idref="cty-us"/></sea>"#,
            ),
        ])
        .unwrap();
        let g = DataGraph::build(&c, &GraphConfig::default());
        let guides = DataGuideSet::build(&c, 0.4).unwrap();
        (c, g, guides)
    }

    fn path(c: &Collection, s: &str) -> PathId {
        c.paths().get_str(c.symbols(), s).unwrap()
    }

    fn node(c: &Collection, path_str: &str, content: &str) -> NodeId {
        let p = path(c, path_str);
        c.nodes_with_path(p).into_iter().find(|&n| c.content(n).unwrap() == content).unwrap()
    }

    #[test]
    fn same_item_and_cross_item_connections_are_distinguished() {
        let (c, g, _) = setup();
        let china = node(&c, "/country/economy/import_partners/item/trade_country", "China");
        let pct_same = node(&c, "/country/economy/import_partners/item/percentage", "15");
        let pct_other = node(&c, "/country/economy/import_partners/item/percentage", "16.9");
        // Two tuples: China with its own percentage, China with Canada's.
        let tuples = vec![vec![china, pct_same], vec![china, pct_other]];
        let connections = discover_connections(&c, &g, &tuples, 10);
        assert_eq!(
            connections.len(),
            2,
            "the paper's two ways to connect trade_country and percentage"
        );
        let lengths: Vec<usize> = connections.iter().map(Connection::length).collect();
        assert!(lengths.contains(&2), "same-item connection via the shared item node");
        assert!(lengths.contains(&4), "cross-item connection via import_partners");
    }

    #[test]
    fn connection_support_aggregates_identical_signatures() {
        let (c, g, _) = setup();
        let china = node(&c, "/country/economy/import_partners/item/trade_country", "China");
        let pct15 = node(&c, "/country/economy/import_partners/item/percentage", "15");
        let canada = node(&c, "/country/economy/import_partners/item/trade_country", "Canada");
        let pct169 = node(&c, "/country/economy/import_partners/item/percentage", "16.9");
        let tuples = vec![vec![china, pct15], vec![canada, pct169]];
        let connections = discover_connections(&c, &g, &tuples, 10);
        assert_eq!(connections.len(), 1, "both pairs share the same signature");
        assert_eq!(connections[0].support, 2);
        assert_eq!(connections[0].length(), 2);
    }

    #[test]
    fn connections_across_documents_record_idref_edges() {
        let (c, g, _) = setup();
        let us_name = node(&c, "/country/name", "United States");
        let sea_name = node(&c, "/sea/name", "Pacific Ocean");
        let tuples = vec![vec![us_name, sea_name]];
        let connections = discover_connections(&c, &g, &tuples, 10);
        assert_eq!(connections.len(), 1);
        assert!(connections[0].edge_kinds.contains(&EdgeKind::IdRef));
        assert!(connections[0].edge_kinds.contains(&EdgeKind::ParentChild));
    }

    #[test]
    fn connection_display_renders_contexts() {
        let (c, g, _) = setup();
        let china = node(&c, "/country/economy/import_partners/item/trade_country", "China");
        let pct15 = node(&c, "/country/economy/import_partners/item/percentage", "15");
        let connections = discover_connections(&c, &g, &[vec![china, pct15]], 10);
        let rendered = connections[0].display(&c);
        assert!(rendered.contains("/country/economy/import_partners/item/trade_country"));
        assert!(rendered.contains("/country/economy/import_partners/item/percentage"));
    }

    #[test]
    fn guide_links_reflect_cross_document_edges() {
        let (c, g, guides) = setup();
        let links = guide_links(&c, &g, &guides);
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].kind, EdgeKind::IdRef);
    }

    #[test]
    fn intra_guide_connection_uses_trie_distance() {
        let (c, _, guides) = setup();
        let tc = path(&c, "/country/economy/import_partners/item/trade_country");
        let pct = path(&c, "/country/economy/import_partners/item/percentage");
        let conn = guide_connection(&c, &guides, &[], tc, pct).unwrap();
        assert_eq!(conn.length, 2);
        assert!(!conn.crosses_guides);
    }

    #[test]
    fn cross_guide_connection_uses_links() {
        let (c, g, guides) = setup();
        let links = guide_links(&c, &g, &guides);
        let name = path(&c, "/country/name");
        let sea_name = path(&c, "/sea/name");
        let conn = guide_connection(&c, &guides, &links, name, sea_name).unwrap();
        assert!(conn.crosses_guides);
        // name->country (1) + link (1) + bordering->sea->name (2) = 4.
        assert_eq!(conn.length, 4);
        // Without links there is no connection at all.
        assert!(guide_connection(&c, &guides, &[], name, sea_name).is_none());
    }

    #[test]
    fn false_positives_are_guide_connections_without_instances() {
        let (c, g, guides) = setup();
        let links = guide_links(&c, &g, &guides);
        let tc = path(&c, "/country/economy/import_partners/item/trade_country");
        let pct = path(&c, "/country/economy/import_partners/item/percentage");
        let year = path(&c, "/country/year");
        // Instantiate only the trade_country ~ percentage connection.
        let china = node(&c, "/country/economy/import_partners/item/trade_country", "China");
        let pct15 = node(&c, "/country/economy/import_partners/item/percentage", "15");
        let instantiated = discover_connections(&c, &g, &[vec![china, pct15]], 10);
        let (fp, total) = false_positive_connections(
            &c,
            &guides,
            &links,
            &instantiated,
            &[(tc, pct), (tc, year)],
        );
        assert_eq!(total, 2, "both pairs are connected at the summary level");
        assert_eq!(fp, 1, "only the trade_country~year pair lacks an instance");
    }

    #[test]
    fn unknown_paths_yield_no_guide_connection() {
        let (c, _, guides) = setup();
        let tc = path(&c, "/country/economy/import_partners/item/trade_country");
        // A path id that no guide contains (sea/bordering/country_idref is in
        // a different guide, so pair exists; use an out-of-range id instead).
        let bogus = PathId(9999);
        assert!(guide_connection(&c, &guides, &[], tc, bogus).is_none());
    }
}
