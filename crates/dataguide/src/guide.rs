//! Dataguides and the overlap-threshold merge algorithm (Sec. 6.1).
//!
//! A dataguide summarises the structure of one or more documents as the set of
//! root-to-leaf label paths occurring in them.  SEDA computes one dataguide
//! per document and then merges similar dataguides: two dataguides are merged
//! when their *overlap*
//!
//! ```text
//! overlap(dg1, dg2) = min( |common| / |paths(dg1)| , |common| / |paths(dg2)| )
//! ```
//!
//! exceeds a threshold (40% in Table 1).  The merge keeps the summary small on
//! regular corpora (Google Base: 10000 documents → 88 dataguides) while
//! heterogeneous corpora such as the World Factbook retain many more guides.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, DocId, PathId};

/// Identifier of a dataguide within a [`DataGuideSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GuideId(pub u32);

impl GuideId {
    /// Raw index into the owning set.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One dataguide: a set of root-to-leaf paths plus the documents it covers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataGuide {
    pub(crate) paths: BTreeSet<PathId>,
    pub(crate) documents: Vec<DocId>,
}

impl DataGuide {
    /// Builds the dataguide of a single document.
    pub fn of_document(collection: &Collection, doc: DocId) -> seda_xmlstore::Result<Self> {
        let document = collection.document(doc)?;
        Ok(DataGuide {
            paths: document.distinct_paths().into_iter().collect(),
            documents: vec![doc],
        })
    }

    /// The set of root-to-leaf paths summarised by this guide.
    pub fn paths(&self) -> &BTreeSet<PathId> {
        &self.paths
    }

    /// Number of distinct paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when the guide holds no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Documents covered by this guide.
    pub fn documents(&self) -> &[DocId] {
        &self.documents
    }

    /// True when the guide contains the given path.
    pub fn contains(&self, path: PathId) -> bool {
        self.paths.contains(&path)
    }

    /// Number of paths shared with another guide.
    pub fn common_path_count(&self, other: &DataGuide) -> usize {
        if self.len() <= other.len() {
            self.paths.iter().filter(|p| other.paths.contains(p)).count()
        } else {
            other.paths.iter().filter(|p| self.paths.contains(p)).count()
        }
    }

    /// The paper's overlap measure between two guides.
    pub fn overlap(&self, other: &DataGuide) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let common = self.common_path_count(other) as f64;
        (common / self.len() as f64).min(common / other.len() as f64)
    }

    /// True when every path of `self` also occurs in `other`.
    pub fn is_subset_of(&self, other: &DataGuide) -> bool {
        self.paths.iter().all(|p| other.paths.contains(p))
    }

    /// Absorbs another guide (set union of paths, concatenation of coverage).
    pub fn merge_in(&mut self, other: DataGuide) {
        self.paths.extend(other.paths);
        self.documents.extend(other.documents);
    }
}

/// Statistics of a built dataguide set — one row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataGuideStats {
    /// Number of documents summarised.
    pub documents: usize,
    /// Number of dataguides after merging.
    pub dataguides: usize,
    /// Total number of paths across all dataguides (the "total size" the paper
    /// says merging reduces).
    pub total_paths: usize,
    /// Reduction factor `documents / dataguides`.
    pub reduction_factor: f64,
    /// Overlap threshold the set was built with.
    pub threshold: f64,
}

/// Per-document dataguides awaiting the threshold merge, produced by
/// [`DataGuideSet::build_shard`] and consumed by [`DataGuideSet::merge`].
///
/// Computing a document's path set is the data-proportional part of dataguide
/// construction and parallelises per document; the greedy 40%-threshold merge
/// is order-sensitive, so it runs once over all shards' guides in document
/// order, guaranteeing the merged set is identical to the sequential build.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataGuideShard {
    guides: Vec<(DocId, DataGuide)>,
}

impl DataGuideShard {
    /// Number of per-document guides in this shard.
    pub fn len(&self) -> usize {
        self.guides.len()
    }

    /// True when the shard holds no guides.
    pub fn is_empty(&self) -> bool {
        self.guides.is_empty()
    }

    /// Iterates over the `(document, guide)` pairs of this shard.
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &DataGuide)> {
        self.guides.iter().map(|(doc, guide)| (*doc, guide))
    }
}

/// A collection of merged dataguides plus the document → guide assignment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataGuideSet {
    pub(crate) guides: Vec<DataGuide>,
    pub(crate) assignment: HashMap<DocId, GuideId>,
    threshold: f64,
    /// Inverted index path → guides containing it, so one pass over an
    /// incoming guide's paths yields its common-path count with *every*
    /// existing guide (instead of intersecting with each guide separately).
    pub(crate) path_index: HashMap<PathId, Vec<u32>>,
}

impl DataGuideSet {
    /// Runs the paper's merge algorithm over every document of the collection.
    ///
    /// For each document the algorithm computes its dataguide and then:
    /// 1. if the guide is a subset of (or equal to) an existing guide, the
    ///    document is assigned to that guide;
    /// 2. otherwise it is merged into the *best* existing guide whose overlap
    ///    is at least `threshold`;
    /// 3. otherwise it becomes a new dataguide.
    ///
    /// This is the sequential reference path; it is equivalent to building
    /// shards with [`DataGuideSet::build_shard`] and combining them with
    /// [`DataGuideSet::merge`].
    pub fn build(collection: &Collection, threshold: f64) -> seda_xmlstore::Result<Self> {
        let docs: Vec<DocId> = collection.documents().map(|d| d.id).collect();
        let shard = Self::build_shard(collection, docs)?;
        Ok(Self::merge(threshold, vec![shard]))
    }

    /// Computes the per-document dataguides of a batch of documents (the
    /// per-shard phase of the shard → merge build lifecycle).
    pub fn build_shard(
        collection: &Collection,
        docs: impl IntoIterator<Item = DocId>,
    ) -> seda_xmlstore::Result<DataGuideShard> {
        let mut shard = DataGuideShard::default();
        for doc in docs {
            shard.guides.push((doc, DataGuide::of_document(collection, doc)?));
        }
        Ok(shard)
    }

    /// Runs the overlap-threshold merge over the per-document guides of all
    /// shards (the merge phase of the shard → merge build lifecycle).
    ///
    /// Guides are inserted in ascending document order regardless of how the
    /// documents were partitioned into shards, so the result — including the
    /// exact guide boundaries of the order-sensitive greedy algorithm — is
    /// identical to the sequential [`DataGuideSet::build`].
    pub fn merge(threshold: f64, shards: Vec<DataGuideShard>) -> Self {
        let mut pending: Vec<(DocId, DataGuide)> =
            shards.into_iter().flat_map(|s| s.guides).collect();
        pending.sort_by_key(|(doc, _)| *doc);
        let mut set = DataGuideSet { threshold, ..DataGuideSet::default() };
        for (doc, guide) in pending {
            set.insert_guide(doc, guide);
        }
        set
    }

    /// Inserts one document's guide, preserving the paper's greedy semantics:
    /// first subset match wins, else the best guide at or above the overlap
    /// threshold (earliest on ties), else a new guide.  The common-path
    /// counts against all existing guides come from a single pass over the
    /// incoming guide's paths through the inverted path index, instead of a
    /// pairwise intersection per existing guide.
    fn insert_guide(&mut self, doc: DocId, guide: DataGuide) {
        let mut common = vec![0usize; self.guides.len()];
        for path in &guide.paths {
            for &g in self.path_index.get(path).map(Vec::as_slice).unwrap_or(&[]) {
                common[g as usize] += 1;
            }
        }

        // Case 1: subset of an existing guide (all paths shared), first match.
        for (i, &shared) in common.iter().enumerate() {
            if shared == guide.len() {
                self.guides[i].documents.push(doc);
                self.assignment.insert(doc, GuideId(i as u32));
                return;
            }
        }
        // Case 2: merge with the best guide over the threshold.
        let mut best: Option<(usize, f64)> = None;
        for (i, existing) in self.guides.iter().enumerate() {
            let overlap = if guide.is_empty() || existing.is_empty() {
                0.0
            } else {
                let shared = common[i] as f64;
                (shared / guide.len() as f64).min(shared / existing.len() as f64)
            };
            if overlap >= self.threshold && best.map(|(_, b)| overlap > b).unwrap_or(true) {
                best = Some((i, overlap));
            }
        }
        if let Some((i, _)) = best {
            for &path in &guide.paths {
                if !self.guides[i].contains(path) {
                    self.path_index.entry(path).or_default().push(i as u32);
                }
            }
            self.guides[i].merge_in(guide);
            self.assignment.insert(doc, GuideId(i as u32));
            return;
        }
        // Case 3: new dataguide.
        let id = GuideId(self.guides.len() as u32);
        for &path in &guide.paths {
            self.path_index.entry(path).or_default().push(id.0);
        }
        self.guides.push(guide);
        self.assignment.insert(doc, id);
    }

    /// The overlap threshold the set was built with.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of dataguides.
    pub fn len(&self) -> usize {
        self.guides.len()
    }

    /// True when the set holds no guides.
    pub fn is_empty(&self) -> bool {
        self.guides.is_empty()
    }

    /// Borrow a guide.
    pub fn guide(&self, id: GuideId) -> &DataGuide {
        &self.guides[id.index()]
    }

    /// Iterate over `(id, guide)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GuideId, &DataGuide)> {
        self.guides.iter().enumerate().map(|(i, g)| (GuideId(i as u32), g))
    }

    /// Guide a document was assigned to.
    pub fn guide_of_document(&self, doc: DocId) -> Option<GuideId> {
        self.assignment.get(&doc).copied()
    }

    /// All guides containing a given path, in ascending guide order.
    pub fn guides_with_path(&self, path: PathId) -> Vec<GuideId> {
        let mut out: Vec<GuideId> = self
            .path_index
            .get(&path)
            .map(|guides| guides.iter().map(|&g| GuideId(g)).collect())
            .unwrap_or_default();
        out.sort_unstable();
        out
    }

    /// Table 1 statistics for this set.
    pub fn stats(&self, documents: usize) -> DataGuideStats {
        DataGuideStats {
            documents,
            dataguides: self.guides.len(),
            total_paths: self.guides.iter().map(DataGuide::len).sum(),
            reduction_factor: if self.guides.is_empty() {
                0.0
            } else {
                documents as f64 / self.guides.len() as f64
            },
            threshold: self.threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_xmlstore::parse_collection;

    fn collection_with_shapes() -> Collection {
        parse_collection(vec![
            // Two documents with identical shape.
            ("a1.xml", "<a><x>1</x><y>2</y></a>"),
            ("a2.xml", "<a><x>3</x><y>4</y></a>"),
            // A subset shape (missing y).
            ("a3.xml", "<a><x>5</x></a>"),
            // A heavily overlapping shape (adds z).
            ("a4.xml", "<a><x>6</x><y>7</y><z>8</z></a>"),
            // A completely different shape.
            ("b1.xml", "<b><p>1</p><q>2</q><r>3</r></b>"),
        ])
        .unwrap()
    }

    #[test]
    fn identical_and_subset_shapes_collapse() {
        let c = collection_with_shapes();
        let set = DataGuideSet::build(&c, 0.4).unwrap();
        // a1, a2, a3, a4 collapse into one guide (a4 overlaps 3/4 = 0.75);
        // b1 is its own guide.
        assert_eq!(set.len(), 2);
        let stats = set.stats(c.len());
        assert_eq!(stats.documents, 5);
        assert_eq!(stats.dataguides, 2);
        assert!((stats.reduction_factor - 2.5).abs() < 1e-9);
    }

    #[test]
    fn threshold_one_keeps_distinct_shapes_apart() {
        let c = collection_with_shapes();
        let set = DataGuideSet::build(&c, 1.01).unwrap();
        // Nothing merges except exact-subset/equality cases: a1==a2 and a3 is
        // a subset of the a1 guide; a4 and b1 stay separate.
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn threshold_zero_merges_everything_overlapping() {
        let c = collection_with_shapes();
        let set = DataGuideSet::build(&c, 0.0).unwrap();
        // Even b1 merges once the threshold is zero (overlap 0 >= 0).
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn overlap_is_symmetric_and_bounded() {
        let c = collection_with_shapes();
        let g1 = DataGuide::of_document(&c, seda_xmlstore::DocId(0)).unwrap();
        let g4 = DataGuide::of_document(&c, seda_xmlstore::DocId(3)).unwrap();
        let o = g1.overlap(&g4);
        assert!((g4.overlap(&g1) - o).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&o));
        // g1 has 3 paths (a, a/x, a/y), g4 has 4 (plus a/z): common = 3.
        assert!((o - 0.75).abs() < 1e-12);
    }

    #[test]
    fn document_assignment_is_total() {
        let c = collection_with_shapes();
        let set = DataGuideSet::build(&c, 0.4).unwrap();
        for doc in c.documents() {
            let gid = set.guide_of_document(doc.id).expect("every document is assigned");
            assert!(set.guide(gid).documents().contains(&doc.id));
        }
    }

    #[test]
    fn guides_with_path_lookup() {
        let c = collection_with_shapes();
        let set = DataGuideSet::build(&c, 0.4).unwrap();
        let x = c.paths().get_str(c.symbols(), "/a/x").unwrap();
        let p = c.paths().get_str(c.symbols(), "/b/p").unwrap();
        assert_eq!(set.guides_with_path(x).len(), 1);
        assert_eq!(set.guides_with_path(p).len(), 1);
        assert_ne!(set.guides_with_path(x), set.guides_with_path(p));
    }

    #[test]
    fn merged_guide_covers_union_of_paths() {
        let c = collection_with_shapes();
        let set = DataGuideSet::build(&c, 0.4).unwrap();
        let x = c.paths().get_str(c.symbols(), "/a/x").unwrap();
        let z = c.paths().get_str(c.symbols(), "/a/z").unwrap();
        let gid = set.guides_with_path(x)[0];
        assert!(set.guide(gid).contains(z), "merge keeps the union of paths");
    }

    #[test]
    fn stats_total_paths_counts_all_guides() {
        let c = collection_with_shapes();
        let set = DataGuideSet::build(&c, 0.4).unwrap();
        let stats = set.stats(c.len());
        // Guide A holds 5 paths (a, x, y, z), actually 5 = a,a/x,a/y,a/z => 4;
        // guide B holds 4 (b, p, q, r). Together 8.
        assert_eq!(stats.total_paths, 8);
        assert_eq!(stats.threshold, 0.4);
    }

    #[test]
    fn merged_shards_equal_sequential_build() {
        let c = collection_with_shapes();
        let sequential = DataGuideSet::build(&c, 0.4).unwrap();
        // Partition the five documents into three shards, deliberately out of
        // order: the merge must reassemble document order before inserting.
        let docs: Vec<DocId> = c.documents().map(|d| d.id).collect();
        let shards = vec![
            DataGuideSet::build_shard(&c, vec![docs[3], docs[4]]).unwrap(),
            DataGuideSet::build_shard(&c, vec![docs[0]]).unwrap(),
            DataGuideSet::build_shard(&c, vec![docs[2], docs[1]]).unwrap(),
        ];
        let merged = DataGuideSet::merge(0.4, shards);
        assert_eq!(merged, sequential);
        assert_eq!(merged.stats(c.len()), sequential.stats(c.len()));
    }

    #[test]
    fn shard_exposes_per_document_guides() {
        let c = collection_with_shapes();
        let docs: Vec<DocId> = c.documents().map(|d| d.id).collect();
        let shard = DataGuideSet::build_shard(&c, docs.clone()).unwrap();
        assert_eq!(shard.len(), docs.len());
        assert!(!shard.is_empty());
        for (doc, guide) in shard.iter() {
            assert!(docs.contains(&doc));
            assert!(!guide.is_empty());
        }
    }

    #[test]
    fn merge_of_no_shards_is_empty() {
        let merged = DataGuideSet::merge(0.4, Vec::new());
        assert!(merged.is_empty());
        assert_eq!(merged.threshold(), 0.4);
    }

    #[test]
    fn empty_guides_never_overlap() {
        let empty = DataGuide::default();
        let other = DataGuide::default();
        assert_eq!(empty.overlap(&other), 0.0);
        assert!(empty.is_empty());
    }
}
