//! A small OLAP engine over the derived fact tables.
//!
//! The paper hands the generated star schema "into an OLAP tool to compute
//! the data cubes, one per fact table, and the desired aggregation functions
//! for further analysis".  This module plays the role of that off-the-shelf
//! tool: group-by aggregation, rollup along a dimension order, and
//! slicing/dicing, so the examples and experiments can complete the pipeline
//! end to end.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::table::FactTable;

/// Aggregation functions supported by the cube engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFn {
    /// Sum of the measure.
    Sum,
    /// Number of contributing fact rows.
    Count,
    /// Arithmetic mean of the measure.
    Avg,
    /// Minimum measure value.
    Min,
    /// Maximum measure value.
    Max,
}

/// A cube/aggregation query over one fact table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CubeQuery {
    /// Dimension columns to group by (may be empty for a grand total).
    pub group_by: Vec<String>,
    /// Measure column to aggregate.
    pub measure: String,
    /// Aggregation function.
    pub agg: AggFn,
    /// Dimension equality filters (`dice`): only rows whose dimension value
    /// equals the given value contribute.
    pub filters: Vec<(String, String)>,
}

impl CubeQuery {
    /// Sum of `measure` grouped by `group_by`.
    pub fn sum(group_by: &[&str], measure: &str) -> Self {
        CubeQuery {
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            measure: measure.to_string(),
            agg: AggFn::Sum,
            filters: Vec::new(),
        }
    }

    /// Adds a slice filter.
    pub fn filter(mut self, dimension: &str, value: &str) -> Self {
        self.filters.push((dimension.to_string(), value.to_string()));
        self
    }

    /// Switches the aggregation function.
    pub fn with_agg(mut self, agg: AggFn) -> Self {
        self.agg = agg;
        self
    }
}

/// One cell of an aggregated cube.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CubeCell {
    /// Group-by coordinate values, aligned with the query's `group_by`.
    pub coordinates: Vec<String>,
    /// Aggregated value.
    pub value: f64,
    /// Number of fact rows that contributed.
    pub count: usize,
}

/// Result of a cube query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CubeResult {
    /// The group-by dimensions of the query.
    pub group_by: Vec<String>,
    /// Aggregated cells, ordered by coordinates.
    pub cells: Vec<CubeCell>,
    /// Fact rows examined by the aggregation (before filters), the work
    /// measure of the scan — surfaced so callers can attribute cube cost.
    pub rows_scanned: usize,
}

impl CubeResult {
    /// Looks up the cell with the given coordinates.
    pub fn cell(&self, coordinates: &[&str]) -> Option<&CubeCell> {
        self.cells.iter().find(|c| {
            c.coordinates.len() == coordinates.len()
                && c.coordinates.iter().zip(coordinates).all(|(a, b)| a == b)
        })
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the result has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Errors produced by the cube engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CubeError {
    /// A group-by or filter dimension does not exist in the fact table.
    UnknownDimension(String),
    /// The measure column does not exist in the fact table.
    UnknownMeasure(String),
}

impl std::fmt::Display for CubeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CubeError::UnknownDimension(d) => write!(f, "unknown dimension column {d:?}"),
            CubeError::UnknownMeasure(m) => write!(f, "unknown measure column {m:?}"),
        }
    }
}

impl std::error::Error for CubeError {}

/// Evaluates a cube query against a fact table.
pub fn aggregate(table: &FactTable, query: &CubeQuery) -> Result<CubeResult, CubeError> {
    let group_indices: Vec<usize> = query
        .group_by
        .iter()
        .map(|d| table.dimension_index(d).ok_or_else(|| CubeError::UnknownDimension(d.clone())))
        .collect::<Result<_, _>>()?;
    let filter_indices: Vec<(usize, &str)> = query
        .filters
        .iter()
        .map(|(d, v)| {
            table
                .dimension_index(d)
                .map(|i| (i, v.as_str()))
                .ok_or_else(|| CubeError::UnknownDimension(d.clone()))
        })
        .collect::<Result<_, _>>()?;
    let measure_index = table
        .measure_index(&query.measure)
        .ok_or_else(|| CubeError::UnknownMeasure(query.measure.clone()))?;

    #[derive(Default)]
    struct Acc {
        sum: f64,
        count: usize,
        min: f64,
        max: f64,
    }
    let mut groups: BTreeMap<Vec<String>, Acc> = BTreeMap::new();
    for row in &table.rows {
        if !filter_indices.iter().all(|&(i, v)| row.dimensions[i] == v) {
            continue;
        }
        let Some(value) = row.numeric_measure(measure_index) else { continue };
        let key: Vec<String> = group_indices.iter().map(|&i| row.dimensions[i].clone()).collect();
        let acc = groups.entry(key).or_insert(Acc {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        });
        acc.sum += value;
        acc.count += 1;
        acc.min = acc.min.min(value);
        acc.max = acc.max.max(value);
    }

    let cells = groups
        .into_iter()
        .map(|(coordinates, acc)| {
            let value = match query.agg {
                AggFn::Sum => acc.sum,
                AggFn::Count => acc.count as f64,
                AggFn::Avg => {
                    if acc.count == 0 {
                        0.0
                    } else {
                        acc.sum / acc.count as f64
                    }
                }
                AggFn::Min => acc.min,
                AggFn::Max => acc.max,
            };
            CubeCell { coordinates, value, count: acc.count }
        })
        .collect();
    Ok(CubeResult { group_by: query.group_by.clone(), cells, rows_scanned: table.rows.len() })
}

/// Computes a rollup along the given dimension order: one [`CubeResult`] per
/// prefix of `dimensions`, from the full granularity down to the grand total.
pub fn rollup(
    table: &FactTable,
    dimensions: &[&str],
    measure: &str,
    agg: AggFn,
) -> Result<Vec<CubeResult>, CubeError> {
    let mut out = Vec::with_capacity(dimensions.len() + 1);
    for len in (0..=dimensions.len()).rev() {
        let query = CubeQuery {
            group_by: dimensions[..len].iter().map(|s| s.to_string()).collect(),
            measure: measure.to_string(),
            agg,
            filters: Vec::new(),
        };
        out.push(aggregate(table, &query)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::FactRow;

    /// The Figure 3(c) fact table.
    fn figure3_table() -> FactTable {
        let rows = [
            ("United States", "2006", "China", "15"),
            ("United States", "2006", "Canada", "16.9"),
            ("United States", "2005", "China", "13.8"),
            ("United States", "2005", "Mexico", "10.3"),
            ("United States", "2004", "Mexico", "10.7"),
            ("United States", "2004", "China", "12.5"),
        ];
        FactTable {
            name: "import-trade-percentage".into(),
            dimension_columns: vec!["country".into(), "year".into(), "import-country".into()],
            measure_columns: vec!["percentage".into()],
            rows: rows
                .iter()
                .map(|(c, y, p, v)| FactRow {
                    dimensions: vec![c.to_string(), y.to_string(), p.to_string()],
                    measures: vec![v.to_string()],
                })
                .collect(),
        }
    }

    #[test]
    fn group_by_partner_sums_percentages() {
        let table = figure3_table();
        let result = aggregate(&table, &CubeQuery::sum(&["import-country"], "percentage")).unwrap();
        assert_eq!(result.len(), 3);
        let china = result.cell(&["China"]).unwrap();
        assert!((china.value - (15.0 + 13.8 + 12.5)).abs() < 1e-9);
        assert_eq!(china.count, 3);
        let canada = result.cell(&["Canada"]).unwrap();
        assert!((canada.value - 16.9).abs() < 1e-9);
    }

    #[test]
    fn average_by_year() {
        let table = figure3_table();
        let q = CubeQuery::sum(&["year"], "percentage").with_agg(AggFn::Avg);
        let result = aggregate(&table, &q).unwrap();
        let y2006 = result.cell(&["2006"]).unwrap();
        assert!((y2006.value - (15.0 + 16.9) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn min_max_and_count() {
        let table = figure3_table();
        let max =
            aggregate(&table, &CubeQuery::sum(&[], "percentage").with_agg(AggFn::Max)).unwrap();
        assert!((max.cells[0].value - 16.9).abs() < 1e-9);
        let min =
            aggregate(&table, &CubeQuery::sum(&[], "percentage").with_agg(AggFn::Min)).unwrap();
        assert!((min.cells[0].value - 10.3).abs() < 1e-9);
        let count =
            aggregate(&table, &CubeQuery::sum(&[], "percentage").with_agg(AggFn::Count)).unwrap();
        assert_eq!(count.cells[0].value as usize, 6);
    }

    #[test]
    fn slicing_restricts_rows() {
        let table = figure3_table();
        let q = CubeQuery::sum(&["import-country"], "percentage").filter("year", "2006");
        let result = aggregate(&table, &q).unwrap();
        assert_eq!(result.len(), 2);
        assert!(result.cell(&["Mexico"]).is_none());
        assert!((result.cell(&["China"]).unwrap().value - 15.0).abs() < 1e-9);
    }

    #[test]
    fn rollup_produces_all_granularities() {
        let table = figure3_table();
        let levels = rollup(&table, &["year", "import-country"], "percentage", AggFn::Sum).unwrap();
        assert_eq!(levels.len(), 3);
        // Finest level: (year, partner) pairs — 6 distinct.
        assert_eq!(levels[0].len(), 6);
        // Middle level: 3 years.
        assert_eq!(levels[1].len(), 3);
        // Grand total: one cell whose value is the sum of all percentages.
        assert_eq!(levels[2].len(), 1);
        let total: f64 = 15.0 + 16.9 + 13.8 + 10.3 + 10.7 + 12.5;
        assert!((levels[2].cells[0].value - total).abs() < 1e-9);
    }

    #[test]
    fn unknown_columns_are_errors() {
        let table = figure3_table();
        assert_eq!(
            aggregate(&table, &CubeQuery::sum(&["nope"], "percentage")),
            Err(CubeError::UnknownDimension("nope".into()))
        );
        assert_eq!(
            aggregate(&table, &CubeQuery::sum(&["year"], "nope")),
            Err(CubeError::UnknownMeasure("nope".into()))
        );
        assert!(aggregate(&table, &CubeQuery::sum(&["year"], "percentage").filter("nope", "x"))
            .is_err());
    }

    #[test]
    fn non_numeric_measures_are_skipped() {
        let mut table = figure3_table();
        table.rows.push(FactRow {
            dimensions: vec!["United States".into(), "2007".into(), "China".into()],
            measures: vec!["n/a".into()],
        });
        let result = aggregate(&table, &CubeQuery::sum(&["year"], "percentage")).unwrap();
        assert!(
            result.cell(&["2007"]).is_none(),
            "rows without numeric measures contribute nothing"
        );
    }
}
