//! Facts, dimensions and the registry SEDA maintains (Sec. 7).
//!
//! "SEDA maintains a set of facts F and a set of dimensions D known to the
//! system. … The set of facts F is defined as a nested relation with schema
//! `<name, ContextList>` where ContextList has schema `<context, key>`."  The
//! context list may contain several paths because heterogeneous corpora spell
//! the same concept differently (the paper's example: `GDP` before 2005,
//! `GDP_ppp` afterwards).

use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, PathId};

use crate::key::RelativeKey;

/// One `(context, key)` entry of a fact's or dimension's context list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextEntry {
    /// Root-to-leaf path (in `/a/b/c` notation) where instances of this fact
    /// or dimension are found.
    pub context: String,
    /// Relative key associated with that context.
    pub key: RelativeKey,
}

impl ContextEntry {
    /// Convenience constructor.
    pub fn new(context: impl Into<String>, key: RelativeKey) -> Self {
        ContextEntry { context: context.into(), key }
    }
}

/// Whether a definition denotes a fact (measure) or a dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemaRole {
    /// A measure to aggregate (e.g. the import trade percentage).
    Fact,
    /// A dimension to group by (e.g. country, year, import country).
    Dimension,
}

/// Definition of one fact or dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaDef {
    /// Unique name (e.g. `Import-trade-percentage`, `country`, `year`).
    pub name: String,
    /// Fact vs dimension.
    pub role: SchemaRole,
    /// Context list: every path where instances are found, with its key.
    pub contexts: Vec<ContextEntry>,
}

impl SchemaDef {
    /// Creates a fact definition.
    pub fn fact(name: impl Into<String>, contexts: Vec<ContextEntry>) -> Self {
        SchemaDef { name: name.into(), role: SchemaRole::Fact, contexts }
    }

    /// Creates a dimension definition.
    pub fn dimension(name: impl Into<String>, contexts: Vec<ContextEntry>) -> Self {
        SchemaDef { name: name.into(), role: SchemaRole::Dimension, contexts }
    }

    /// The context paths of this definition resolved against a collection
    /// (unknown paths — contexts that do not occur in the data — are skipped).
    pub fn context_paths(&self, collection: &Collection) -> Vec<PathId> {
        self.contexts
            .iter()
            .filter_map(|c| collection.paths().get_str(collection.symbols(), &c.context))
            .collect()
    }

    /// The key associated with a specific context path, if any.
    pub fn key_for_context(&self, collection: &Collection, path: PathId) -> Option<&RelativeKey> {
        let rendered = collection.path_string(path);
        self.contexts.iter().find(|c| c.context == rendered).map(|c| &c.key)
    }

    /// Union of all absolute key paths across the context list (used by the
    /// augmentation step).
    pub fn absolute_key_paths(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .contexts
            .iter()
            .flat_map(|c| c.key.absolute_paths().into_iter().map(str::to_string))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// The registry of facts and dimensions known to the system.  "These sets are
/// initially provided by a system administrator and are expanded by users
/// during query processing."
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Registry {
    defs: Vec<SchemaDef>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds a definition; replaces any existing definition with the same name.
    pub fn add(&mut self, def: SchemaDef) {
        self.defs.retain(|d| d.name != def.name);
        self.defs.push(def);
    }

    /// All definitions.
    pub fn defs(&self) -> &[SchemaDef] {
        &self.defs
    }

    /// All fact definitions.
    pub fn facts(&self) -> impl Iterator<Item = &SchemaDef> {
        self.defs.iter().filter(|d| d.role == SchemaRole::Fact)
    }

    /// All dimension definitions.
    pub fn dimensions(&self) -> impl Iterator<Item = &SchemaDef> {
        self.defs.iter().filter(|d| d.role == SchemaRole::Dimension)
    }

    /// Finds a definition by name.
    pub fn get(&self, name: &str) -> Option<&SchemaDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The registry of Figure 3(b): the `country`, `year` and
    /// `Import-country` dimensions and the `GDP` and
    /// `Import-trade-percentage` facts over the World-Factbook-style schema.
    /// Used by examples, tests and the Query 1 reproduction.
    pub fn factbook_defaults() -> Self {
        let country_key = RelativeKey::parse(&["/country/name", "/country/year"]);
        let mut registry = Registry::new();
        registry.add(SchemaDef::dimension(
            "country",
            vec![ContextEntry::new("/country/name", country_key.clone())],
        ));
        registry.add(SchemaDef::dimension(
            "year",
            vec![ContextEntry::new("/country/year", country_key.clone())],
        ));
        registry.add(SchemaDef::dimension(
            "import-country",
            vec![ContextEntry::new(
                "/country/economy/import_partners/item/trade_country",
                RelativeKey::parse(&["/country/name", "/country/year", "."]),
            )],
        ));
        registry.add(SchemaDef::dimension(
            "export-country",
            vec![ContextEntry::new(
                "/country/economy/export_partners/item/trade_country",
                RelativeKey::parse(&["/country/name", "/country/year", "."]),
            )],
        ));
        registry.add(SchemaDef::fact(
            "GDP",
            vec![
                ContextEntry::new("/country/economy/GDP", country_key.clone()),
                ContextEntry::new("/country/economy/GDP_ppp", country_key),
            ],
        ));
        registry.add(SchemaDef::fact(
            "import-trade-percentage",
            vec![ContextEntry::new(
                "/country/economy/import_partners/item/percentage",
                RelativeKey::parse(&["/country/name", "/country/year", "../trade_country"]),
            )],
        ));
        registry.add(SchemaDef::fact(
            "export-trade-percentage",
            vec![ContextEntry::new(
                "/country/economy/export_partners/item/percentage",
                RelativeKey::parse(&["/country/name", "/country/year", "../trade_country"]),
            )],
        ));
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_xmlstore::parse_collection;

    #[test]
    fn factbook_defaults_cover_figure_3() {
        let r = Registry::factbook_defaults();
        assert!(r.get("country").is_some());
        assert!(r.get("year").is_some());
        assert!(r.get("import-country").is_some());
        assert!(r.get("import-trade-percentage").is_some());
        let gdp = r.get("GDP").unwrap();
        assert_eq!(gdp.role, SchemaRole::Fact);
        assert_eq!(gdp.contexts.len(), 2, "GDP spans both schema-evolution spellings");
        assert_eq!(r.facts().count(), 3);
        assert_eq!(r.dimensions().count(), 4);
    }

    #[test]
    fn add_replaces_same_name() {
        let mut r = Registry::new();
        r.add(SchemaDef::fact("m", vec![]));
        r.add(SchemaDef::dimension("m", vec![]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.get("m").unwrap().role, SchemaRole::Dimension);
    }

    #[test]
    fn context_paths_skip_unknown_paths() {
        let c = parse_collection(vec![(
            "us.xml",
            "<country><name>US</name><economy><GDP>1</GDP></economy></country>",
        )])
        .unwrap();
        let gdp = Registry::factbook_defaults().get("GDP").cloned().unwrap();
        // Only the GDP spelling occurs in this collection, not GDP_ppp.
        assert_eq!(gdp.context_paths(&c).len(), 1);
    }

    #[test]
    fn key_for_context_finds_the_right_entry() {
        let c = parse_collection(vec![(
            "us.xml",
            r#"<country><name>US</name><year>2006</year>
                 <economy><import_partners><item>
                   <trade_country>China</trade_country><percentage>15</percentage>
                 </item></import_partners></economy></country>"#,
        )])
        .unwrap();
        let reg = Registry::factbook_defaults();
        let fact = reg.get("import-trade-percentage").unwrap();
        let path = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/percentage")
            .unwrap();
        let key = fact.key_for_context(&c, path).unwrap();
        assert_eq!(key.len(), 3);
        assert!(fact.key_for_context(&c, seda_xmlstore::PathId(0)).is_none());
    }

    #[test]
    fn absolute_key_paths_deduplicate() {
        let reg = Registry::factbook_defaults();
        let fact = reg.get("GDP").unwrap();
        assert_eq!(fact.absolute_key_paths(), vec!["/country/name", "/country/year"]);
    }
}
