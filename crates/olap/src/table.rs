//! Tabular building blocks: the full query result R(q), fact tables and
//! dimension tables.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, NodeId, PathId};

/// The full (non-top-k) result of a SEDA query, as described in Sec. 1/7:
/// "two columns for each query term: the first one contains the Dewey ID XML
/// node reference, and the other one contains the full root-to-leaf path of
/// the node."  Here the node reference carries the document and ordinal (from
/// which the Dewey id is recoverable) and the path is the interned context.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryResultTable {
    /// Human-readable label per query term (e.g. the term's textual form).
    pub column_names: Vec<String>,
    /// One row per result tuple; entry `i` holds `(node, context)` for query
    /// term `i`.
    pub rows: Vec<Vec<(NodeId, PathId)>>,
}

impl QueryResultTable {
    /// Creates an empty table with the given column labels.
    pub fn new(column_names: Vec<String>) -> Self {
        QueryResultTable { column_names, rows: Vec::new() }
    }

    /// Number of result tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of query-term columns.
    pub fn width(&self) -> usize {
        self.column_names.len()
    }

    /// Appends a tuple; panics if its arity differs from the column count.
    pub fn push_row(&mut self, row: Vec<(NodeId, PathId)>) {
        assert_eq!(row.len(), self.width(), "row arity must match column count");
        self.rows.push(row);
    }

    /// The set of distinct context paths appearing in column `i` — the
    /// π_cpi(R) the matching step compares against fact/dimension context
    /// lists.
    pub fn column_paths(&self, column: usize) -> BTreeSet<PathId> {
        self.rows.iter().map(|r| r[column].1).collect()
    }

    /// The nodes of column `i`.
    pub fn column_nodes(&self, column: usize) -> Vec<NodeId> {
        self.rows.iter().map(|r| r[column].0).collect()
    }
}

/// A dimension table of the derived star schema: the dimension name and its
/// distinct member values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimensionTable {
    /// Dimension name (e.g. `country`, `year`, `import-country`).
    pub name: String,
    /// Distinct member values, sorted.
    pub values: Vec<String>,
}

impl DimensionTable {
    /// Builds a dimension table from an iterator of values.
    pub fn from_values(name: impl Into<String>, values: impl IntoIterator<Item = String>) -> Self {
        let mut values: Vec<String> = values.into_iter().collect();
        values.sort();
        values.dedup();
        DimensionTable { name: name.into(), values }
    }

    /// Number of distinct members.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the dimension has no members.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A fact table of the derived star schema.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FactTable {
    /// Name of the fact (or of the merged facts) this table holds.
    pub name: String,
    /// Names of the dimension (key) columns.
    pub dimension_columns: Vec<String>,
    /// Names of the measure columns.
    pub measure_columns: Vec<String>,
    /// Rows: dimension values followed by measure values, as strings.
    pub rows: Vec<FactRow>,
}

/// One row of a fact table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactRow {
    /// Dimension values, aligned with `dimension_columns`.
    pub dimensions: Vec<String>,
    /// Measure values, aligned with `measure_columns` (kept as strings;
    /// [`FactRow::numeric_measure`] parses them on demand).
    pub measures: Vec<String>,
}

impl FactRow {
    /// Parses measure `i` as a number, tolerating `%`, `,` and unit suffixes
    /// such as `12.31T` / `924.4B` / `63.1M` (scaled to their numeric value).
    pub fn numeric_measure(&self, index: usize) -> Option<f64> {
        parse_numeric(self.measures.get(index)?)
    }
}

/// Parses a Factbook-style numeric string.
pub fn parse_numeric(raw: &str) -> Option<f64> {
    let cleaned: String = raw.trim().trim_end_matches('%').replace(',', "").trim().to_string();
    if cleaned.is_empty() {
        return None;
    }
    let (number_part, multiplier) = match cleaned.chars().last() {
        Some('T') | Some('t') => (&cleaned[..cleaned.len() - 1], 1e12),
        Some('B') | Some('b') => (&cleaned[..cleaned.len() - 1], 1e9),
        Some('M') | Some('m') => (&cleaned[..cleaned.len() - 1], 1e6),
        Some('K') | Some('k') => (&cleaned[..cleaned.len() - 1], 1e3),
        _ => (cleaned.as_str(), 1.0),
    };
    number_part.trim().parse::<f64>().ok().map(|v| v * multiplier)
}

impl FactTable {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the fact table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a dimension column by name.
    pub fn dimension_index(&self, name: &str) -> Option<usize> {
        self.dimension_columns.iter().position(|c| c == name)
    }

    /// Index of a measure column by name.
    pub fn measure_index(&self, name: &str) -> Option<usize> {
        self.measure_columns.iter().position(|c| c == name)
    }

    /// True when the dimension columns form a primary key (no two rows share
    /// all dimension values) — the property the paper's year-augmentation
    /// restores for the Query 1 fact table.
    pub fn dimensions_form_key(&self) -> bool {
        let mut seen = BTreeSet::new();
        for row in &self.rows {
            if !seen.insert(row.dimensions.clone()) {
                return false;
            }
        }
        true
    }

    /// Derives the dimension tables of this fact table (one per dimension
    /// column).
    pub fn dimension_tables(&self) -> Vec<DimensionTable> {
        self.dimension_columns
            .iter()
            .enumerate()
            .map(|(i, name)| {
                DimensionTable::from_values(
                    name.clone(),
                    self.rows.iter().map(|r| r.dimensions[i].clone()),
                )
            })
            .collect()
    }
}

/// A derived star schema: fact tables plus their dimension tables, ready to be
/// handed to an OLAP engine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StarSchema {
    /// Fact tables (one per fact, after merging facts with identical keys).
    pub fact_tables: Vec<FactTable>,
    /// Dimension tables referenced by the fact tables.
    pub dimension_tables: Vec<DimensionTable>,
}

impl StarSchema {
    /// Finds a fact table by name.
    pub fn fact(&self, name: &str) -> Option<&FactTable> {
        self.fact_tables.iter().find(|f| f.name == name)
    }

    /// Finds a dimension table by name.
    pub fn dimension(&self, name: &str) -> Option<&DimensionTable> {
        self.dimension_tables.iter().find(|d| d.name == name)
    }
}

/// Renders a query-result row for diagnostics.
pub fn describe_row(collection: &Collection, row: &[(NodeId, PathId)]) -> String {
    row.iter()
        .map(|(node, path)| {
            format!(
                "{}={:?}",
                collection.path_string(*path),
                collection.content(*node).unwrap_or_default()
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_xmlstore::DocId;

    fn node(n: u32) -> NodeId {
        NodeId::new(DocId(0), n)
    }

    #[test]
    fn query_result_table_tracks_columns_and_paths() {
        let mut t = QueryResultTable::new(vec!["us".into(), "partner".into()]);
        t.push_row(vec![(node(1), PathId(0)), (node(2), PathId(1))]);
        t.push_row(vec![(node(3), PathId(0)), (node(4), PathId(2))]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.width(), 2);
        assert_eq!(t.column_paths(0).len(), 1);
        assert_eq!(t.column_paths(1).len(), 2);
        assert_eq!(t.column_nodes(1), vec![node(2), node(4)]);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn mismatched_row_arity_panics() {
        let mut t = QueryResultTable::new(vec!["a".into()]);
        t.push_row(vec![(node(1), PathId(0)), (node(2), PathId(1))]);
    }

    #[test]
    fn dimension_table_deduplicates_and_sorts() {
        let d = DimensionTable::from_values(
            "country",
            ["China", "Canada", "China"].iter().map(|s| s.to_string()),
        );
        assert_eq!(d.values, vec!["Canada", "China"]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn numeric_parsing_handles_factbook_notation() {
        assert_eq!(parse_numeric("15"), Some(15.0));
        assert_eq!(parse_numeric("16.9%"), Some(16.9));
        assert_eq!(parse_numeric("12.31T"), Some(12.31e12));
        assert_eq!(parse_numeric("924.4B"), Some(924.4e9));
        assert_eq!(parse_numeric("1,234"), Some(1234.0));
        assert_eq!(parse_numeric("63.1M"), Some(63.1e6));
        assert_eq!(parse_numeric("not a number"), None);
        assert_eq!(parse_numeric(""), None);
    }

    #[test]
    fn fact_table_key_detection() {
        let table = FactTable {
            name: "percentage".into(),
            dimension_columns: vec!["country".into(), "import-country".into()],
            measure_columns: vec!["percentage".into()],
            rows: vec![
                FactRow {
                    dimensions: vec!["United States".into(), "China".into()],
                    measures: vec!["12.5".into()],
                },
                FactRow {
                    dimensions: vec!["United States".into(), "China".into()],
                    measures: vec!["13.8".into()],
                },
            ],
        };
        // Without the year dimension the rows collide — the paper's example of
        // "China 12.5%" vs "China 13.8%".
        assert!(!table.dimensions_form_key());
        let mut with_year = table.clone();
        with_year.dimension_columns.push("year".into());
        with_year.rows[0].dimensions.push("2004".into());
        with_year.rows[1].dimensions.push("2005".into());
        assert!(with_year.dimensions_form_key());
        assert_eq!(with_year.dimension_tables().len(), 3);
        assert_eq!(with_year.rows[0].numeric_measure(0), Some(12.5));
    }

    #[test]
    fn star_schema_lookup() {
        let schema = StarSchema {
            fact_tables: vec![FactTable { name: "f".into(), ..FactTable::default() }],
            dimension_tables: vec![DimensionTable::from_values("d", vec![])],
        };
        assert!(schema.fact("f").is_some());
        assert!(schema.fact("g").is_none());
        assert!(schema.dimension("d").is_some());
    }
}
