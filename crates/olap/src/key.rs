//! Relative XML keys (Sec. 7, after Buneman et al.).
//!
//! SEDA requires every dimension (and fact) to have a key so aggregates are
//! well defined.  A relative key for a node `n` is a list of path expressions;
//! each is either *absolute* (starts at the document root, e.g.
//! `/country/year`) or *relative* (starts at `n`, e.g. `../trade_country` or
//! `.`).  The key of the `percentage` fact in the paper is
//! `(/country, /country/year, ../trade_country)`: for every percentage node
//! the key collects the country, the year and the sibling trade country.

use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, NodeId, RelativeStep};

/// One component of a relative key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyPart {
    /// Absolute path expression, evaluated from the document root.
    Absolute(String),
    /// Relative path expression, evaluated from the keyed node.
    Relative(String),
}

impl KeyPart {
    /// Parses a textual component: expressions starting with `/` are
    /// absolute, everything else (`.`, `..`, `../x`) is relative.
    pub fn parse(expr: &str) -> Self {
        if expr.starts_with('/') {
            KeyPart::Absolute(expr.to_string())
        } else {
            KeyPart::Relative(expr.to_string())
        }
    }

    /// The textual expression.
    pub fn expression(&self) -> &str {
        match self {
            KeyPart::Absolute(e) | KeyPart::Relative(e) => e,
        }
    }
}

/// A relative key: an ordered list of key parts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelativeKey {
    parts: Vec<KeyPart>,
}

/// The values a key evaluates to for one node, one string per key part.
pub type KeyValues = Vec<String>;

/// Problems detected while evaluating or verifying a key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeyViolation {
    /// A key part evaluated to no node for the given keyed node.
    MissingComponent {
        /// The offending expression.
        expression: String,
        /// The keyed node.
        node: NodeId,
    },
    /// A key part evaluated to more than one node.
    AmbiguousComponent {
        /// The offending expression.
        expression: String,
        /// The keyed node.
        node: NodeId,
        /// How many nodes it evaluated to.
        matches: usize,
    },
    /// Two distinct keyed nodes produced identical key values.
    DuplicateKey {
        /// The duplicated key values.
        values: KeyValues,
    },
}

impl std::fmt::Display for KeyViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyViolation::MissingComponent { expression, node } => {
                write!(f, "key component {expression:?} evaluated to no node for {node:?}")
            }
            KeyViolation::AmbiguousComponent { expression, node, matches } => {
                write!(
                    f,
                    "key component {expression:?} evaluated to {matches} nodes for {node:?} \
                     (expected exactly one)"
                )
            }
            KeyViolation::DuplicateKey { values } => {
                write!(f, "two distinct nodes produced the same key values {values:?}")
            }
        }
    }
}

impl std::error::Error for KeyViolation {}

impl RelativeKey {
    /// Builds a key from textual component expressions, e.g.
    /// `["/country", "/country/year", "../trade_country"]`.
    pub fn parse(parts: &[&str]) -> Self {
        RelativeKey { parts: parts.iter().map(|p| KeyPart::parse(p)).collect() }
    }

    /// The components of the key.
    pub fn parts(&self) -> &[KeyPart] {
        &self.parts
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when the key has no components.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The absolute components of the key (used by the augmentation step to
    /// add missing columns such as `/country/year`).
    pub fn absolute_paths(&self) -> Vec<&str> {
        self.parts
            .iter()
            .filter_map(|p| match p {
                KeyPart::Absolute(e) => Some(e.as_str()),
                KeyPart::Relative(_) => None,
            })
            .collect()
    }

    /// Evaluates the key for one node, returning the key values (one per
    /// part) or the first violation encountered.
    pub fn evaluate(
        &self,
        collection: &Collection,
        node: NodeId,
    ) -> Result<KeyValues, KeyViolation> {
        let document = match collection.document(node.doc) {
            Ok(d) => d,
            Err(_) => {
                return Err(KeyViolation::MissingComponent {
                    expression: "<document>".to_string(),
                    node,
                })
            }
        };
        let mut values = Vec::with_capacity(self.parts.len());
        for part in &self.parts {
            let matches: Vec<u32> = match part {
                KeyPart::Absolute(expr) => {
                    match collection.paths().get_str(collection.symbols(), expr) {
                        Some(path) => document.nodes_with_path(path),
                        None => Vec::new(),
                    }
                }
                KeyPart::Relative(expr) => {
                    let steps = RelativeStep::parse_expr(expr);
                    document.eval_relative_steps(node.node, &steps, collection.symbols())
                }
            };
            match matches.len() {
                0 => {
                    return Err(KeyViolation::MissingComponent {
                        expression: part.expression().to_string(),
                        node,
                    })
                }
                1 => values.push(document.content(matches[0])),
                n => {
                    return Err(KeyViolation::AmbiguousComponent {
                        expression: part.expression().to_string(),
                        node,
                        matches: n,
                    })
                }
            }
        }
        Ok(values)
    }

    /// Verifies that the key uniquely identifies every node in `nodes`
    /// ("the system automatically verifies the keys by computing them for
    /// every cni in R(q) and checking their uniqueness").  Returns all
    /// violations found; an empty vector means the key is valid.
    pub fn verify(&self, collection: &Collection, nodes: &[NodeId]) -> Vec<KeyViolation> {
        let mut violations = Vec::new();
        let mut seen: std::collections::HashMap<KeyValues, NodeId> =
            std::collections::HashMap::new();
        for &node in nodes {
            match self.evaluate(collection, node) {
                Ok(values) => {
                    if let Some(&previous) = seen.get(&values) {
                        if previous != node {
                            violations.push(KeyViolation::DuplicateKey { values: values.clone() });
                        }
                    } else {
                        seen.insert(values, node);
                    }
                }
                Err(v) => violations.push(v),
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_xmlstore::parse_collection;

    fn us_doc() -> Collection {
        parse_collection(vec![(
            "us.xml",
            r#"<country><name>United States</name><year>2006</year>
                 <economy><import_partners>
                   <item><trade_country>China</trade_country><percentage>15</percentage></item>
                   <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                 </import_partners></economy></country>"#,
        )])
        .unwrap()
    }

    fn percentage_nodes(c: &Collection) -> Vec<NodeId> {
        let p = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/percentage")
            .unwrap();
        c.nodes_with_path(p)
    }

    #[test]
    fn paper_key_for_percentage_fact_evaluates() {
        let c = us_doc();
        let key = RelativeKey::parse(&["/country/name", "/country/year", "../trade_country"]);
        let nodes = percentage_nodes(&c);
        let v0 = key.evaluate(&c, nodes[0]).unwrap();
        assert_eq!(v0, vec!["United States", "2006", "China"]);
        let v1 = key.evaluate(&c, nodes[1]).unwrap();
        assert_eq!(v1, vec!["United States", "2006", "Canada"]);
        assert!(key.verify(&c, &nodes).is_empty(), "the key uniquely identifies both percentages");
    }

    #[test]
    fn dropping_the_relative_part_makes_the_key_ambiguous_across_nodes() {
        let c = us_doc();
        // Without ../trade_country the two percentage nodes collide: this is
        // exactly the paper's argument for the year/trade_country key columns.
        let key = RelativeKey::parse(&["/country/name", "/country/year"]);
        let nodes = percentage_nodes(&c);
        let violations = key.verify(&c, &nodes);
        assert!(violations.iter().any(|v| matches!(v, KeyViolation::DuplicateKey { .. })));
    }

    #[test]
    fn missing_and_ambiguous_components_are_reported() {
        let c = us_doc();
        let nodes = percentage_nodes(&c);
        let missing = RelativeKey::parse(&["/country/population"]);
        assert!(matches!(
            missing.evaluate(&c, nodes[0]),
            Err(KeyViolation::MissingComponent { .. })
        ));
        // /country/economy/import_partners/item is ambiguous at document level
        // (two items exist).
        let ambiguous = RelativeKey::parse(&["/country/economy/import_partners/item"]);
        assert!(matches!(
            ambiguous.evaluate(&c, nodes[0]),
            Err(KeyViolation::AmbiguousComponent { matches: 2, .. })
        ));
    }

    #[test]
    fn self_relative_component_keys_on_own_content() {
        let c = us_doc();
        let tc_path = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/trade_country")
            .unwrap();
        let nodes = c.nodes_with_path(tc_path);
        let key = RelativeKey::parse(&["/country/name", "/country/year", "."]);
        assert!(key.verify(&c, &nodes).is_empty());
        let values = key.evaluate(&c, nodes[0]).unwrap();
        assert_eq!(values[2], "China");
    }

    #[test]
    fn key_part_parsing_distinguishes_absolute_and_relative() {
        assert_eq!(KeyPart::parse("/country"), KeyPart::Absolute("/country".into()));
        assert_eq!(
            KeyPart::parse("../trade_country"),
            KeyPart::Relative("../trade_country".into())
        );
        assert_eq!(KeyPart::parse("."), KeyPart::Relative(".".into()));
        let key = RelativeKey::parse(&["/country", "/country/year", "../trade_country"]);
        assert_eq!(key.len(), 3);
        assert_eq!(key.absolute_paths(), vec!["/country", "/country/year"]);
    }
}
