//! # seda-olap
//!
//! The OLAP side of SEDA (Sec. 7): relative XML keys, the fact/dimension
//! registry, matching of query-result columns to facts and dimensions,
//! key-column augmentation, extraction of fact and dimension tables (the
//! derived star schema), and a small in-memory cube engine providing the
//! aggregation functionality the paper delegates to an off-the-shelf OLAP
//! tool.
//!
//! ```
//! use seda_olap::{aggregate, CubeQuery, FactRow, FactTable};
//!
//! let table = FactTable {
//!     name: "pct".into(),
//!     dimension_columns: vec!["country".into()],
//!     measure_columns: vec!["pct".into()],
//!     rows: vec![FactRow { dimensions: vec!["China".into()], measures: vec!["15".into()] }],
//! };
//! let cube = aggregate(&table, &CubeQuery::sum(&["country"], "pct")).unwrap();
//! assert_eq!(cube.cell(&["China"]).unwrap().value, 15.0);
//! ```

pub mod builder;
pub mod cube;
pub mod key;
pub mod schema;
pub mod table;

pub use builder::{
    define_from_column, match_result, merge_fact_tables, BuildOptions, ColumnMatch,
    MatchingOutcome, StarSchemaBuild, StarSchemaBuilder,
};
pub use cube::{aggregate, rollup, AggFn, CubeCell, CubeError, CubeQuery, CubeResult};
pub use key::{KeyPart, KeyValues, KeyViolation, RelativeKey};
pub use schema::{ContextEntry, Registry, SchemaDef, SchemaRole};
pub use table::{
    describe_row, parse_numeric, DimensionTable, FactRow, FactTable, QueryResultTable, StarSchema,
};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::cube::{aggregate, AggFn, CubeQuery};
    use crate::table::{FactRow, FactTable};

    fn table_from(rows: &[(u8, u8, f64)]) -> FactTable {
        FactTable {
            name: "m".into(),
            dimension_columns: vec!["a".into(), "b".into()],
            measure_columns: vec!["m".into()],
            rows: rows
                .iter()
                .map(|(a, b, v)| FactRow {
                    dimensions: vec![format!("a{a}"), format!("b{b}")],
                    measures: vec![format!("{v}")],
                })
                .collect(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Group-by sums partition the grand total: summing the per-group sums
        /// equals the ungrouped sum, for any grouping dimension.
        #[test]
        fn group_sums_partition_the_total(rows in proptest::collection::vec((0u8..4, 0u8..4, -100.0f64..100.0), 1..30)) {
            let table = table_from(&rows);
            let total = aggregate(&table, &CubeQuery::sum(&[], "m")).unwrap().cells[0].value;
            for dim in ["a", "b"] {
                let grouped = aggregate(&table, &CubeQuery::sum(&[dim], "m")).unwrap();
                let sum: f64 = grouped.cells.iter().map(|c| c.value).sum();
                prop_assert!((sum - total).abs() < 1e-6);
            }
        }

        /// Count cells always sum to the number of rows, and min <= avg <= max
        /// within every group.
        #[test]
        fn count_and_ordering_invariants(rows in proptest::collection::vec((0u8..4, 0u8..4, -100.0f64..100.0), 1..30)) {
            let table = table_from(&rows);
            let counts = aggregate(&table, &CubeQuery::sum(&["a"], "m").with_agg(AggFn::Count)).unwrap();
            let total: f64 = counts.cells.iter().map(|c| c.value).sum();
            prop_assert_eq!(total as usize, rows.len());
            let avg = aggregate(&table, &CubeQuery::sum(&["a"], "m").with_agg(AggFn::Avg)).unwrap();
            let min = aggregate(&table, &CubeQuery::sum(&["a"], "m").with_agg(AggFn::Min)).unwrap();
            let max = aggregate(&table, &CubeQuery::sum(&["a"], "m").with_agg(AggFn::Max)).unwrap();
            for cell in &avg.cells {
                let coord: Vec<&str> = cell.coordinates.iter().map(String::as_str).collect();
                let lo = min.cell(&coord).unwrap().value;
                let hi = max.cell(&coord).unwrap().value;
                prop_assert!(lo <= cell.value + 1e-9 && cell.value <= hi + 1e-9);
            }
        }

        /// Slicing on a dimension value never yields more cells than the
        /// unsliced aggregation, and every sliced cell exists unsliced.
        #[test]
        fn slicing_is_a_restriction(rows in proptest::collection::vec((0u8..4, 0u8..4, 0.0f64..100.0), 1..30), pick in 0u8..4) {
            let table = table_from(&rows);
            let all = aggregate(&table, &CubeQuery::sum(&["b"], "m")).unwrap();
            let sliced = aggregate(&table, &CubeQuery::sum(&["b"], "m").filter("a", &format!("a{pick}"))).unwrap();
            prop_assert!(sliced.len() <= all.len());
            for cell in &sliced.cells {
                let coord: Vec<&str> = cell.coordinates.iter().map(String::as_str).collect();
                prop_assert!(all.cell(&coord).is_some());
            }
        }
    }
}
