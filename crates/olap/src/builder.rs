//! Deriving a star schema from a query result (Sec. 7, steps 1–3).
//!
//! * **Step 1 — Matching**: each `(node, path)` column of the full result
//!   R(q) is matched against the registry: a column matches a fact/dimension
//!   when the set of paths in the column is a subset of the definition's
//!   context list.  Partial intersections produce warnings.
//! * **Step 2 — Augmentation**: the user may add or remove facts/dimensions;
//!   the result is then extended with any missing key columns (the paper's
//!   example: the `/country/year` column is added so the percentage fact table
//!   has a primary key).
//! * **Step 3 — Extraction**: fact and dimension tables are materialised by
//!   evaluating the relative keys of every fact instance; fact tables with
//!   identical dimension columns are merged.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, NodeId};

use crate::key::{KeyPart, KeyViolation, RelativeKey};
use crate::schema::{Registry, SchemaDef, SchemaRole};
use crate::table::{DimensionTable, FactRow, FactTable, QueryResultTable, StarSchema};

/// How a result column relates to the registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ColumnMatch {
    /// Column index in R(q).
    pub column: usize,
    /// Definitions (by name) whose context list covers every path of the
    /// column — complete matches.
    pub matched: Vec<String>,
    /// Definitions that cover some but not all paths of the column; SEDA
    /// "issues a warning message to the user" for these.
    pub partial: Vec<String>,
}

/// Outcome of the matching step.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchingOutcome {
    /// Per-column matches.
    pub columns: Vec<ColumnMatch>,
    /// Names of matched facts (`F_q`).
    pub facts: Vec<String>,
    /// Names of matched dimensions (`D_q`).
    pub dimensions: Vec<String>,
}

/// Matches every column of the result against the registry.
pub fn match_result(
    collection: &Collection,
    result: &QueryResultTable,
    registry: &Registry,
) -> MatchingOutcome {
    let mut outcome = MatchingOutcome::default();
    for column in 0..result.width() {
        let paths = result.column_paths(column);
        let mut cm = ColumnMatch { column, ..ColumnMatch::default() };
        if paths.is_empty() {
            outcome.columns.push(cm);
            continue;
        }
        for def in registry.defs() {
            let def_paths: BTreeSet<_> = def.context_paths(collection).into_iter().collect();
            if def_paths.is_empty() {
                continue;
            }
            let common = paths.intersection(&def_paths).count();
            if common == paths.len() {
                cm.matched.push(def.name.clone());
                match def.role {
                    SchemaRole::Fact => {
                        if !outcome.facts.contains(&def.name) {
                            outcome.facts.push(def.name.clone());
                        }
                    }
                    SchemaRole::Dimension => {
                        if !outcome.dimensions.contains(&def.name) {
                            outcome.dimensions.push(def.name.clone());
                        }
                    }
                }
            } else if common > 0 {
                cm.partial.push(def.name.clone());
            }
        }
        outcome.columns.push(cm);
    }
    outcome
}

/// Options of the augmentation step: the user may add facts/dimensions the
/// matching step did not find and remove ones it did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BuildOptions {
    /// Names of registry definitions to add to the final sets.
    pub add: Vec<String>,
    /// Names to remove from the final sets.
    pub remove: Vec<String>,
}

/// Result of building a star schema.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StarSchemaBuild {
    /// The matching-step outcome (before augmentation).
    pub matching: MatchingOutcome,
    /// Final fact names used for extraction.
    pub final_facts: Vec<String>,
    /// Final dimension names used for extraction.
    pub final_dimensions: Vec<String>,
    /// The derived star schema.
    pub schema: StarSchema,
    /// Human-readable warnings (partial matches, key violations, …).
    pub warnings: Vec<String>,
}

/// Derives the star schema for a query result.
pub struct StarSchemaBuilder<'a> {
    collection: &'a Collection,
    registry: &'a Registry,
}

impl<'a> StarSchemaBuilder<'a> {
    /// Creates a builder over a collection and a fact/dimension registry.
    pub fn new(collection: &'a Collection, registry: &'a Registry) -> Self {
        StarSchemaBuilder { collection, registry }
    }

    /// Runs matching, augmentation and extraction for the given result.
    pub fn build(&self, result: &QueryResultTable, options: &BuildOptions) -> StarSchemaBuild {
        let matching = match_result(self.collection, result, self.registry);
        let mut warnings = Vec::new();
        for cm in &matching.columns {
            for name in &cm.partial {
                warnings.push(format!(
                    "column {} only partially matches the context list of {:?}; \
                     check the chosen contexts",
                    cm.column, name
                ));
            }
        }

        // Augmentation of the fact/dimension sets.
        let mut final_facts = matching.facts.clone();
        let mut final_dimensions = matching.dimensions.clone();
        for name in &options.add {
            match self.registry.get(name) {
                Some(def) => match def.role {
                    SchemaRole::Fact => {
                        if !final_facts.contains(name) {
                            final_facts.push(name.clone());
                        }
                    }
                    SchemaRole::Dimension => {
                        if !final_dimensions.contains(name) {
                            final_dimensions.push(name.clone());
                        }
                    }
                },
                None => warnings.push(format!("unknown fact/dimension {name:?} requested")),
            }
        }
        final_facts.retain(|f| !options.remove.contains(f));
        final_dimensions.retain(|d| !options.remove.contains(d));

        // Extraction.
        let mut fact_tables = Vec::new();
        let mut dimension_values: Vec<(String, Vec<String>)> = Vec::new();
        for fact_name in &final_facts {
            let Some(def) = self.registry.get(fact_name) else { continue };
            match self.extract_fact_table(result, &matching, def, &mut warnings) {
                Some(table) => {
                    // Record dimension member values.
                    for (i, dim) in table.dimension_columns.iter().enumerate() {
                        dimension_values.push((
                            dim.clone(),
                            table.rows.iter().map(|r| r.dimensions[i].clone()).collect(),
                        ));
                    }
                    fact_tables.push(table);
                }
                None => warnings.push(format!("no instances found for fact {fact_name:?}")),
            }
        }

        // Dimension tables: those referenced by fact tables plus any matched
        // dimension columns of the result itself.
        for dim_name in &final_dimensions {
            if dimension_values.iter().any(|(n, _)| n == dim_name) {
                continue;
            }
            if let Some(values) = self.dimension_values_from_result(result, &matching, dim_name) {
                dimension_values.push((dim_name.clone(), values));
            }
        }
        // Ensure every dimension column of every fact table has a dimension
        // table, and add explicitly requested dimensions.
        let mut dimension_tables: Vec<DimensionTable> = Vec::new();
        for (name, values) in dimension_values {
            match dimension_tables.iter_mut().find(|d| d.name == name) {
                Some(existing) => {
                    let mut merged = existing.values.clone();
                    merged.extend(values);
                    *existing = DimensionTable::from_values(name, merged);
                }
                None => dimension_tables.push(DimensionTable::from_values(name, values)),
            }
        }

        let fact_tables = merge_fact_tables(fact_tables);

        StarSchemaBuild {
            matching,
            final_facts,
            final_dimensions,
            schema: StarSchema { fact_tables, dimension_tables },
            warnings,
        }
    }

    /// Fact instances for a fact definition: nodes of the result column
    /// matched to the fact, or — for user-added facts with no matching
    /// column — every instance of the fact's contexts in the documents that
    /// appear in the result.
    fn fact_instances(
        &self,
        result: &QueryResultTable,
        matching: &MatchingOutcome,
        def: &SchemaDef,
    ) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = Vec::new();
        let matched_columns: Vec<usize> = matching
            .columns
            .iter()
            .filter(|cm| cm.matched.contains(&def.name))
            .map(|cm| cm.column)
            .collect();
        if !matched_columns.is_empty() {
            for column in matched_columns {
                nodes.extend(result.column_nodes(column));
            }
        } else {
            let docs: BTreeSet<_> =
                result.rows.iter().flat_map(|r| r.iter().map(|(n, _)| n.doc)).collect();
            for path in def.context_paths(self.collection) {
                for node in self.collection.nodes_with_path(path) {
                    if docs.contains(&node.doc) {
                        nodes.push(node);
                    }
                }
            }
        }
        nodes.sort();
        nodes.dedup();
        nodes
    }

    /// Column name for a key part: the name of the dimension whose context
    /// covers the contexts this part resolves to, falling back to the
    /// expression itself.
    fn dimension_name_for_key_part(&self, part: &KeyPart, sample: Option<NodeId>) -> String {
        let context = match part {
            KeyPart::Absolute(expr) => Some(expr.clone()),
            KeyPart::Relative(expr) => sample.and_then(|node| {
                let document = self.collection.document(node.doc).ok()?;
                let steps = seda_xmlstore::RelativeStep::parse_expr(expr);
                let targets =
                    document.eval_relative_steps(node.node, &steps, self.collection.symbols());
                targets
                    .first()
                    .map(|&t| self.collection.path_string(document.node_unchecked(t).path))
            }),
        };
        if let Some(context) = context {
            for def in self.registry.dimensions() {
                if def.contexts.iter().any(|c| c.context == context) {
                    return def.name.clone();
                }
            }
            return context;
        }
        part.expression().to_string()
    }

    fn extract_fact_table(
        &self,
        result: &QueryResultTable,
        matching: &MatchingOutcome,
        def: &SchemaDef,
        warnings: &mut Vec<String>,
    ) -> Option<FactTable> {
        let instances = self.fact_instances(result, matching, def);
        if instances.is_empty() {
            return None;
        }
        // Determine the key to use from the first instance's context.
        let first_context = self.collection.context(instances[0]).ok()?;
        let key: &RelativeKey = def
            .key_for_context(self.collection, first_context)
            .or_else(|| def.contexts.first().map(|c| &c.key))?;

        let dimension_columns: Vec<String> = key
            .parts()
            .iter()
            .map(|p| self.dimension_name_for_key_part(p, instances.first().copied()))
            .collect();

        let mut rows = Vec::new();
        for &node in &instances {
            match key.evaluate(self.collection, node) {
                Ok(values) => rows.push(FactRow {
                    dimensions: values,
                    measures: vec![self.collection.content(node).unwrap_or_default()],
                }),
                Err(violation) => warnings.push(format!(
                    "key violation while extracting fact {:?}: {violation:?}",
                    def.name
                )),
            }
        }
        if rows.is_empty() {
            return None;
        }
        rows.sort_by(|a, b| a.dimensions.cmp(&b.dimensions).then(a.measures.cmp(&b.measures)));
        rows.dedup();
        Some(FactTable {
            name: def.name.clone(),
            dimension_columns,
            measure_columns: vec![def.name.clone()],
            rows,
        })
    }

    fn dimension_values_from_result(
        &self,
        result: &QueryResultTable,
        matching: &MatchingOutcome,
        dim_name: &str,
    ) -> Option<Vec<String>> {
        let columns: Vec<usize> = matching
            .columns
            .iter()
            .filter(|cm| cm.matched.contains(&dim_name.to_string()))
            .map(|cm| cm.column)
            .collect();
        if columns.is_empty() {
            return None;
        }
        let mut values = Vec::new();
        for column in columns {
            for node in result.column_nodes(column) {
                values.push(self.collection.content(node).unwrap_or_default());
            }
        }
        Some(values)
    }
}

/// Merges fact tables that share the same dimension columns ("as an
/// optimization, we merge fact tables if they have the same keys"): rows with
/// identical dimension values are combined, measures become additional
/// columns; missing measures are left empty.
pub fn merge_fact_tables(tables: Vec<FactTable>) -> Vec<FactTable> {
    use std::collections::BTreeMap;
    let mut by_key: BTreeMap<Vec<String>, Vec<FactTable>> = BTreeMap::new();
    for t in tables {
        by_key.entry(t.dimension_columns.clone()).or_default().push(t);
    }
    let mut out = Vec::new();
    for (dims, group) in by_key {
        if group.len() == 1 {
            out.extend(group);
            continue;
        }
        let measure_columns: Vec<String> =
            group.iter().flat_map(|t| t.measure_columns.clone()).collect();
        let name = group.iter().map(|t| t.name.clone()).collect::<Vec<_>>().join("+");
        let mut rows_by_dims: BTreeMap<Vec<String>, Vec<String>> = BTreeMap::new();
        let mut offset = 0usize;
        for table in &group {
            for row in &table.rows {
                let entry = rows_by_dims
                    .entry(row.dimensions.clone())
                    .or_insert_with(|| vec![String::new(); measure_columns.len()]);
                for (i, m) in row.measures.iter().enumerate() {
                    entry[offset + i] = m.clone();
                }
            }
            offset += table.measure_columns.len();
        }
        let rows = rows_by_dims
            .into_iter()
            .map(|(dimensions, measures)| FactRow { dimensions, measures })
            .collect();
        out.push(FactTable { name, dimension_columns: dims, measure_columns, rows });
    }
    out
}

/// Defines a new fact or dimension from a result column, verifying the key
/// ("the system automatically verifies the keys … and checking their
/// uniqueness").  On success the definition can be added to the registry.
pub fn define_from_column(
    collection: &Collection,
    result: &QueryResultTable,
    column: usize,
    name: &str,
    role: SchemaRole,
    key: RelativeKey,
) -> Result<SchemaDef, Vec<KeyViolation>> {
    let nodes = result.column_nodes(column);
    let violations = key.verify(collection, &nodes);
    if !violations.is_empty() {
        return Err(violations);
    }
    let contexts = result
        .column_paths(column)
        .into_iter()
        .map(|p| crate::schema::ContextEntry::new(collection.path_string(p), key.clone()))
        .collect();
    Ok(match role {
        SchemaRole::Fact => SchemaDef::fact(name, contexts),
        SchemaRole::Dimension => SchemaDef::dimension(name, contexts),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_xmlstore::{parse_collection, PathId};

    /// Two US documents (2004, 2005) with the Figure 3(c) import partners.
    fn us_collection() -> Collection {
        parse_collection(vec![
            (
                "us2004.xml",
                r#"<country><name>United States</name><year>2004</year>
                     <economy><GDP>11.6T</GDP><import_partners>
                       <item><trade_country>China</trade_country><percentage>12.5</percentage></item>
                       <item><trade_country>Mexico</trade_country><percentage>10.7</percentage></item>
                     </import_partners></economy></country>"#,
            ),
            (
                "us2005.xml",
                r#"<country><name>United States</name><year>2005</year>
                     <economy><GDP_ppp>12.0T</GDP_ppp><import_partners>
                       <item><trade_country>China</trade_country><percentage>13.8</percentage></item>
                       <item><trade_country>Mexico</trade_country><percentage>10.3</percentage></item>
                     </import_partners></economy></country>"#,
            ),
        ])
        .unwrap()
    }

    /// Builds the R(q) of Query 1 over the two US documents: one row per
    /// (name, trade_country, percentage) triple within the same item.
    fn query1_result(c: &Collection) -> QueryResultTable {
        let name_path = c.paths().get_str(c.symbols(), "/country/name").unwrap();
        let tc_path = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/trade_country")
            .unwrap();
        let pct_path = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/percentage")
            .unwrap();
        let mut table = QueryResultTable::new(vec![
            "united states".into(),
            "trade_country".into(),
            "percentage".into(),
        ]);
        for doc in c.documents() {
            let name = doc.nodes_with_path(name_path)[0];
            for tc in doc.nodes_with_path(tc_path) {
                let item = doc.parent(tc).unwrap();
                let pct = *doc
                    .children(item)
                    .iter()
                    .find(|&&ch| doc.node_unchecked(ch).path == pct_path)
                    .unwrap();
                table.push_row(vec![
                    (seda_xmlstore::NodeId::new(doc.id, name), name_path),
                    (seda_xmlstore::NodeId::new(doc.id, tc), tc_path),
                    (seda_xmlstore::NodeId::new(doc.id, pct), pct_path),
                ]);
            }
        }
        table
    }

    #[test]
    fn matching_identifies_figure_3_facts_and_dimensions() {
        let c = us_collection();
        let registry = Registry::factbook_defaults();
        let result = query1_result(&c);
        let matching = match_result(&c, &result, &registry);
        assert!(matching.dimensions.contains(&"country".to_string()));
        assert!(matching.dimensions.contains(&"import-country".to_string()));
        assert!(matching.facts.contains(&"import-trade-percentage".to_string()));
        assert_eq!(matching.columns.len(), 3);
        assert!(matching.columns[0].matched.contains(&"country".to_string()));
    }

    #[test]
    fn extraction_reproduces_the_figure_3_fact_table() {
        let c = us_collection();
        let registry = Registry::factbook_defaults();
        let result = query1_result(&c);
        let build = StarSchemaBuilder::new(&c, &registry).build(&result, &BuildOptions::default());
        let fact = build.schema.fact("import-trade-percentage").expect("fact table exists");
        // Columns: country, year, import-country — year added automatically
        // because it is part of the fact's key even though it was not queried.
        assert_eq!(fact.dimension_columns, vec!["country", "year", "import-country"]);
        assert_eq!(fact.len(), 4);
        assert!(fact.dimensions_form_key(), "year augmentation restores the primary key");
        let rendered: Vec<(String, String, String, String)> = fact
            .rows
            .iter()
            .map(|r| {
                (
                    r.dimensions[0].clone(),
                    r.dimensions[1].clone(),
                    r.dimensions[2].clone(),
                    r.measures[0].clone(),
                )
            })
            .collect();
        assert!(rendered.contains(&(
            "United States".into(),
            "2004".into(),
            "China".into(),
            "12.5".into()
        )));
        assert!(rendered.contains(&(
            "United States".into(),
            "2005".into(),
            "Mexico".into(),
            "10.3".into()
        )));
        // Dimension tables exist for every fact-table dimension column.
        for dim in &fact.dimension_columns {
            assert!(build.schema.dimension(dim).is_some(), "missing dimension table {dim}");
        }
        assert_eq!(
            build.schema.dimension("import-country").unwrap().values,
            vec!["China", "Mexico"]
        );
    }

    #[test]
    fn augmentation_adds_and_removes_definitions() {
        let c = us_collection();
        let registry = Registry::factbook_defaults();
        let result = query1_result(&c);
        let builder = StarSchemaBuilder::new(&c, &registry);
        // Add the GDP fact even though no column matched it; remove the
        // percentage fact.
        let build = builder.build(
            &result,
            &BuildOptions {
                add: vec!["GDP".into()],
                remove: vec!["import-trade-percentage".into()],
            },
        );
        assert!(build.final_facts.contains(&"GDP".to_string()));
        assert!(!build.final_facts.contains(&"import-trade-percentage".to_string()));
        let gdp = build.schema.fact("GDP").expect("GDP fact table");
        assert_eq!(gdp.len(), 2, "one GDP value per US document, across both spellings");
        assert!(build.schema.fact("import-trade-percentage").is_none());
    }

    #[test]
    fn unknown_additions_produce_warnings() {
        let c = us_collection();
        let registry = Registry::factbook_defaults();
        let result = query1_result(&c);
        let build = StarSchemaBuilder::new(&c, &registry)
            .build(&result, &BuildOptions { add: vec!["no-such-def".into()], remove: vec![] });
        assert!(build.warnings.iter().any(|w| w.contains("no-such-def")));
    }

    #[test]
    fn merge_fact_tables_combines_same_key_tables() {
        let a = FactTable {
            name: "gdp".into(),
            dimension_columns: vec!["country".into(), "year".into()],
            measure_columns: vec!["gdp".into()],
            rows: vec![FactRow {
                dimensions: vec!["US".into(), "2004".into()],
                measures: vec!["11.6".into()],
            }],
        };
        let b = FactTable {
            name: "population".into(),
            dimension_columns: vec!["country".into(), "year".into()],
            measure_columns: vec!["population".into()],
            rows: vec![FactRow {
                dimensions: vec!["US".into(), "2004".into()],
                measures: vec!["293M".into()],
            }],
        };
        let merged = merge_fact_tables(vec![a, b]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].measure_columns, vec!["gdp", "population"]);
        assert_eq!(merged[0].rows[0].measures, vec!["11.6", "293M"]);
        // Tables with different keys stay separate.
        let c = FactTable {
            name: "pct".into(),
            dimension_columns: vec!["country".into()],
            measure_columns: vec!["pct".into()],
            rows: vec![],
        };
        let d = FactTable {
            name: "gdp".into(),
            dimension_columns: vec!["country".into(), "year".into()],
            measure_columns: vec!["gdp".into()],
            rows: vec![],
        };
        assert_eq!(merge_fact_tables(vec![c, d]).len(), 2);
    }

    #[test]
    fn define_from_column_verifies_keys() {
        let c = us_collection();
        let result = query1_result(&c);
        // A good key for the percentage column.
        let good = RelativeKey::parse(&["/country/name", "/country/year", "../trade_country"]);
        let def = define_from_column(&c, &result, 2, "pct", SchemaRole::Fact, good).unwrap();
        assert_eq!(def.role, SchemaRole::Fact);
        assert_eq!(def.contexts.len(), 1);
        // A key that is not unique is rejected.
        let bad = RelativeKey::parse(&["/country/name"]);
        assert!(define_from_column(&c, &result, 2, "pct", SchemaRole::Fact, bad).is_err());
    }

    #[test]
    fn empty_result_produces_empty_schema() {
        let c = us_collection();
        let registry = Registry::factbook_defaults();
        let empty = QueryResultTable::new(vec!["a".into()]);
        let build = StarSchemaBuilder::new(&c, &registry).build(&empty, &BuildOptions::default());
        assert!(build.schema.fact_tables.is_empty());
        assert!(build.matching.facts.is_empty());
        let _ = PathId(0);
    }
}
