//! RecipeML-like corpus generator.
//!
//! Table 1 of the paper reports 10988 RecipeML documents collapsing to just 3
//! dataguides: the corpus is extremely regular, with three structural
//! variants.  The generator reproduces that: all documents are rooted at
//! `recipeml` and come in exactly three shapes (plain recipe, menu of recipes,
//! and nutrition-labelled recipe) that share too few paths to merge at the
//! paper's 40% threshold.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, DocumentBuilder, Result};

use crate::names;

/// Which of the three structural variants a document uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecipeShape {
    /// `recipeml/recipe/head + ingredients + directions`.
    Plain,
    /// `recipeml/menu/...` — a menu grouping several dishes.
    Menu,
    /// `recipeml/nutrition_label/...` — nutrition-first documents.
    Nutrition,
}

/// Configuration of the RecipeML-like generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecipeMlConfig {
    /// Number of recipe documents.
    pub recipes: usize,
    /// Fractions (out of 100) of documents using the Menu and Nutrition
    /// shapes; the rest are Plain.
    pub menu_percent: u8,
    /// See `menu_percent`.
    pub nutrition_percent: u8,
    /// RNG seed.
    pub seed: u64,
}

impl RecipeMlConfig {
    /// Paper-scale configuration: 10988 documents.
    pub fn paper() -> Self {
        RecipeMlConfig { recipes: 10_988, menu_percent: 8, nutrition_percent: 12, seed: 0x4EC1 }
    }

    /// Small configuration for tests.
    pub fn small() -> Self {
        RecipeMlConfig { recipes: 200, menu_percent: 10, nutrition_percent: 15, seed: 31 }
    }

    /// Number of documents this configuration will produce.
    pub fn document_count(&self) -> usize {
        self.recipes
    }

    /// Shape of the `i`-th document (deterministic).
    pub fn shape_of(&self, i: usize) -> RecipeShape {
        let bucket = (i * 37) % 100;
        if bucket < self.menu_percent as usize {
            RecipeShape::Menu
        } else if bucket < (self.menu_percent + self.nutrition_percent) as usize {
            RecipeShape::Nutrition
        } else {
            RecipeShape::Plain
        }
    }
}

impl Default for RecipeMlConfig {
    fn default() -> Self {
        RecipeMlConfig::paper()
    }
}

/// Generates a RecipeML-like collection.
pub fn generate(config: &RecipeMlConfig) -> Result<Collection> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut collection = Collection::new();
    for i in 0..config.recipes {
        let shape = config.shape_of(i);
        let uri = format!("recipeml/{i}.xml");
        collection.add_document(uri, |b| match shape {
            RecipeShape::Plain => build_plain(b, i, &mut rng),
            RecipeShape::Menu => build_menu(b, i, &mut rng),
            RecipeShape::Nutrition => build_nutrition(b, i, &mut rng),
        })?;
    }
    Ok(collection)
}

fn build_plain(b: &mut DocumentBuilder<'_>, i: usize, rng: &mut StdRng) -> Result<()> {
    b.start_element("recipeml")?;
    b.start_element("recipe")?;
    b.start_element("head")?;
    b.leaf("title", names::pick(names::RECIPES, i))?;
    b.start_element("categories")?;
    b.leaf("cat", ["main dish", "dessert", "appetizer", "soup"][i % 4])?;
    b.end_element()?;
    b.leaf("yield", &format!("{}", 2 + i % 8))?;
    b.end_element()?;
    b.start_element("ingredients")?;
    let n = 3 + i % 5;
    for j in 0..n {
        b.start_element("ing")?;
        b.start_element("amt")?;
        b.leaf("qty", &format!("{}", 1 + rng.gen_range(0..4)))?;
        b.leaf("unit", names::pick(names::UNITS, i + j))?;
        b.end_element()?;
        b.leaf("item", names::pick(names::INGREDIENTS, i * 3 + j))?;
        b.end_element()?;
    }
    b.end_element()?;
    b.start_element("directions")?;
    for s in 0..(2 + i % 4) {
        b.leaf("step", &format!("Step {}: combine and cook.", s + 1))?;
    }
    b.end_element()?;
    b.end_element()?;
    b.end_element()?;
    Ok(())
}

fn build_menu(b: &mut DocumentBuilder<'_>, i: usize, _rng: &mut StdRng) -> Result<()> {
    b.start_element("recipeml")?;
    b.start_element("menu")?;
    b.leaf("menu_title", &format!("Menu {}", i % 53))?;
    b.leaf("description", "A themed multi-course menu.")?;
    for j in 0..3usize {
        b.start_element("dish")?;
        b.leaf("dish_name", names::pick(names::RECIPES, i + j * 11))?;
        b.leaf("course", ["starter", "main", "dessert"][j])?;
        b.leaf("serves", &format!("{}", 2 + (i + j) % 6))?;
        b.end_element()?;
    }
    b.end_element()?;
    b.end_element()?;
    Ok(())
}

fn build_nutrition(b: &mut DocumentBuilder<'_>, i: usize, _rng: &mut StdRng) -> Result<()> {
    b.start_element("recipeml")?;
    b.start_element("nutrition_label")?;
    b.leaf("label_title", names::pick(names::RECIPES, i))?;
    b.leaf("serving_size", &format!("{} g", 100 + (i * 13) % 400))?;
    b.leaf("calories", &format!("{}", 80 + (i * 29) % 900))?;
    b.leaf("fat", &format!("{} g", (i * 7) % 60))?;
    b.leaf("carbohydrates", &format!("{} g", (i * 11) % 120))?;
    b.leaf("protein", &format!("{} g", (i * 5) % 70))?;
    b.leaf("sodium", &format!("{} mg", (i * 17) % 2400))?;
    b.end_element()?;
    b.end_element()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn document_count_matches_config() {
        let config = RecipeMlConfig::small();
        let c = generate(&config).unwrap();
        assert_eq!(c.len(), config.document_count());
    }

    #[test]
    fn paper_config_matches_table1() {
        assert_eq!(RecipeMlConfig::paper().document_count(), 10_988);
    }

    #[test]
    fn exactly_three_structural_shapes() {
        let c = generate(&RecipeMlConfig::small()).unwrap();
        let mut shapes: HashSet<Vec<_>> = HashSet::new();
        for doc in c.documents() {
            let mut paths = doc.distinct_paths();
            paths.sort_unstable();
            shapes.insert(paths);
        }
        // Plain documents differ only in how many ingredients/steps they have,
        // not in their path sets; so exactly three shapes exist.
        assert_eq!(shapes.len(), 3);
    }

    #[test]
    fn shape_assignment_covers_all_three() {
        let config = RecipeMlConfig::small();
        let mut seen = HashSet::new();
        for i in 0..config.recipes {
            seen.insert(format!("{:?}", config.shape_of(i)));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn shapes_share_only_the_root() {
        let config = RecipeMlConfig::small();
        let c = generate(&config).unwrap();
        // Find one doc of each shape and check pairwise overlap is low.
        let mut by_shape: Vec<Option<HashSet<_>>> = vec![None, None, None];
        for (i, doc) in c.documents().enumerate() {
            let slot = match config.shape_of(i) {
                RecipeShape::Plain => 0,
                RecipeShape::Menu => 1,
                RecipeShape::Nutrition => 2,
            };
            if by_shape[slot].is_none() {
                by_shape[slot] = Some(doc.distinct_paths().into_iter().collect());
            }
        }
        let sets: Vec<_> = by_shape.into_iter().flatten().collect();
        assert_eq!(sets.len(), 3);
        for a in 0..3 {
            for b in (a + 1)..3 {
                let common = sets[a].intersection(&sets[b]).count();
                let overlap = common as f64 / sets[a].len().min(sets[b].len()) as f64;
                assert!(overlap < 0.4, "shapes {a} and {b} overlap {overlap}");
            }
        }
    }
}
