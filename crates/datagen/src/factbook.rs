//! World-Factbook-like corpus generator.
//!
//! The paper's running example combines six annual releases of the CIA World
//! Factbook (2002–2007) with the Mondial data set.  The real Factbook is not
//! redistributable, so this generator produces a corpus with the same
//! *structural* properties the paper relies on:
//!
//! * one document per (country, year) — 267 countries × 6 years ≈ 1600
//!   documents at paper scale,
//! * schema evolution across years (documents before 2005 report `GDP`,
//!   later documents report `GDP_ppp`; `literacy`, `internet_hosts`, … appear
//!   only in later years),
//! * many optional sections and elements, producing a long tail of rare
//!   root-to-leaf paths (the paper reports 1984 distinct paths, `/country` in
//!   1577 of 1600 documents, and a refugees path in only 186 documents),
//! * country names appearing in many different contexts (the paper reports 27
//!   distinct paths matching the content "United States"),
//! * the exact import-partner facts of Figure 1/3 for the United States in
//!   2004–2006, so the worked Query 1 example reproduces verbatim.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, DocumentBuilder, Result};

use crate::names;

/// Configuration of the Factbook-like generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FactbookConfig {
    /// Number of countries/territories (one document per country per year).
    pub countries: usize,
    /// Years covered; the schema evolves across them.
    pub years: Vec<u16>,
    /// RNG seed; the corpus is fully determined by the configuration.
    pub seed: u64,
    /// Size of the pool of rare "indicator" fields that create the long tail
    /// of distinct paths.
    pub rare_field_pool: usize,
    /// Fraction of documents rooted at `territory` instead of `country`
    /// (models the handful of Factbook entries that are not countries; this is
    /// why `/country` occurs in 1577 of 1600 documents rather than all).
    pub territory_fraction: f64,
    /// Probability scale for optional sections (1.0 = paper-like).
    pub optional_scale: f64,
}

impl FactbookConfig {
    /// Paper-scale configuration: ~1600 documents over 2002–2007.
    pub fn paper() -> Self {
        FactbookConfig {
            countries: 267,
            years: vec![2002, 2003, 2004, 2005, 2006, 2007],
            seed: 0x5EDA_2009,
            rare_field_pool: 1900,
            territory_fraction: 0.015,
            optional_scale: 1.0,
        }
    }

    /// Small configuration for unit/integration tests: ~90 documents.
    pub fn small() -> Self {
        FactbookConfig {
            countries: 30,
            years: vec![2004, 2005, 2006],
            seed: 7,
            rare_field_pool: 120,
            territory_fraction: 0.02,
            optional_scale: 1.0,
        }
    }

    /// Tiny configuration for doc-tests and micro benches: ~12 documents.
    pub fn tiny() -> Self {
        FactbookConfig {
            countries: 6,
            years: vec![2005, 2006],
            seed: 3,
            rare_field_pool: 20,
            territory_fraction: 0.0,
            optional_scale: 1.0,
        }
    }

    /// Number of documents this configuration will produce.
    pub fn document_count(&self) -> usize {
        self.countries * self.years.len()
    }
}

impl Default for FactbookConfig {
    fn default() -> Self {
        FactbookConfig::paper()
    }
}

/// The import-partner facts of Figure 3(c) for the United States, used
/// verbatim so Query 1 reproduces the paper's fact table.
pub const US_IMPORT_PARTNERS: &[(u16, &str, &str)] = &[
    (2004, "China", "12.5"),
    (2004, "Mexico", "10.7"),
    (2005, "China", "13.8"),
    (2005, "Mexico", "10.3"),
    (2006, "China", "15"),
    (2006, "Canada", "16.9"),
];

/// Export partner used in Figure 2(b): Mexico exports 70.6% to the United
/// States (2003), plus the Figure 1 US export to Canada.
pub const FIXED_EXPORT_PARTNERS: &[(&str, u16, &str, &str)] = &[
    ("Mexico", 2003, "United States", "70.6"),
    ("Mexico", 2005, "United States", "82.2"),
    ("United States", 2006, "Canada", "23.4"),
];

/// Generates a Factbook-like collection.
pub fn generate(config: &FactbookConfig) -> Result<Collection> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut collection = Collection::new();
    let n_countries = config.countries.min(names::COUNTRIES.len());

    let mut doc_index = 0usize;
    for year in &config.years {
        for country_idx in 0..n_countries {
            let country = names::COUNTRIES[country_idx];
            let is_territory = country != "United States"
                && rng.gen_bool(config.territory_fraction.clamp(0.0, 1.0));
            let uri = format!("factbook/{year}/{}.xml", country.replace(' ', "_").to_lowercase());
            let params =
                DocParams { country, country_idx, year: *year, is_territory, doc_index, config };
            collection.add_document(uri, |b| build_country_doc(b, &params, &mut rng))?;
            doc_index += 1;
        }
    }
    Ok(collection)
}

struct DocParams<'a> {
    country: &'a str,
    country_idx: usize,
    year: u16,
    is_territory: bool,
    doc_index: usize,
    config: &'a FactbookConfig,
}

fn opt(rng: &mut StdRng, probability: f64, scale: f64) -> bool {
    rng.gen_bool((probability * scale).clamp(0.0, 1.0))
}

fn build_country_doc(
    b: &mut DocumentBuilder<'_>,
    p: &DocParams<'_>,
    rng: &mut StdRng,
) -> Result<()> {
    let scale = p.config.optional_scale;
    let root = if p.is_territory { "territory" } else { "country" };
    b.start_element(root)?;
    b.attribute("id", &format!("{}-{}", p.country.replace(' ', "_").to_lowercase(), p.year))?;
    b.leaf("name", p.country)?;
    b.leaf("year", &p.year.to_string())?;

    build_geography(b, p, rng, scale)?;
    build_people(b, p, rng, scale)?;
    build_economy(b, p, rng, scale)?;
    build_government(b, p, rng, scale)?;
    if p.year >= 2003 && opt(rng, 0.7, scale) {
        build_communications(b, p, rng, scale)?;
    }
    if opt(rng, 0.35, scale) {
        build_transnational_issues(b, p, rng, scale)?;
    }
    build_rare_fields(b, p)?;

    b.end_element()?;
    Ok(())
}

fn build_geography(
    b: &mut DocumentBuilder<'_>,
    p: &DocParams<'_>,
    rng: &mut StdRng,
    scale: f64,
) -> Result<()> {
    b.start_element("geography")?;
    b.leaf("location", names::pick(names::REGIONS, p.country_idx))?;
    b.start_element("area")?;
    let total = 1000 + (p.country_idx as u64 * 9371) % 9_000_000;
    b.leaf("total", &total.to_string())?;
    b.leaf("land", &((total as f64 * 0.93) as u64).to_string())?;
    if opt(rng, 0.8, scale) {
        b.leaf("water", &((total as f64 * 0.07) as u64).to_string())?;
    }
    b.end_element()?;
    if opt(rng, 0.85, scale) {
        b.leaf("climate", names::pick(names::CLIMATES, p.country_idx + p.year as usize))?;
    }
    if opt(rng, 0.8, scale) {
        b.leaf("terrain", names::pick(names::TERRAINS, p.country_idx * 3))?;
    }
    if opt(rng, 0.7, scale) {
        b.start_element("natural_resources")?;
        for i in 0..(1 + p.country_idx % 4) {
            b.leaf("resource", names::pick(names::RESOURCES, p.country_idx + i))?;
        }
        b.end_element()?;
    }
    if opt(rng, 0.75, scale) {
        b.start_element("neighbors")?;
        let n = 1 + p.country_idx % 5;
        for i in 1..=n {
            b.leaf("neighbor", names::pick(names::COUNTRIES, p.country_idx + i * 17))?;
        }
        b.end_element()?;
    }
    if p.year >= 2004 && opt(rng, 0.6, scale) {
        b.leaf("coastline", &format!("{} km", (p.country_idx * 137) % 20_000))?;
    }
    if p.year >= 2006 && opt(rng, 0.4, scale) {
        b.start_element("elevation")?;
        b.leaf("highest_point", &format!("{} m", 200 + (p.country_idx * 53) % 8000))?;
        b.leaf("lowest_point", "0 m")?;
        b.end_element()?;
    }
    b.end_element()?;
    Ok(())
}

fn build_people(
    b: &mut DocumentBuilder<'_>,
    p: &DocParams<'_>,
    rng: &mut StdRng,
    scale: f64,
) -> Result<()> {
    b.start_element("people")?;
    let population = 50_000
        + (p.country_idx as u64 * 4_816_031) % 1_300_000_000
        + (p.year as u64 - 2000) * 120_000;
    b.leaf("population", &population.to_string())?;
    if opt(rng, 0.8, scale) {
        b.leaf("life_expectancy", &format!("{:.1}", 55.0 + (p.country_idx % 30) as f64))?;
    }
    if opt(rng, 0.75, scale) {
        b.start_element("languages")?;
        for i in 0..(1 + p.country_idx % 3) {
            b.leaf("language", names::pick(names::LANGUAGES, p.country_idx + i * 7))?;
        }
        b.end_element()?;
    }
    if opt(rng, 0.6, scale) {
        b.start_element("religions")?;
        for i in 0..(1 + p.country_idx % 2) {
            b.leaf("religion", names::pick(names::RELIGIONS, p.country_idx + i * 3))?;
        }
        b.end_element()?;
    }
    if opt(rng, 0.5, scale) {
        b.start_element("age_structure")?;
        b.leaf("under_15", &format!("{}%", 15 + p.country_idx % 25))?;
        b.leaf("working_age", &format!("{}%", 55 + p.country_idx % 12))?;
        b.leaf("over_65", &format!("{}%", 4 + p.country_idx % 20))?;
        b.end_element()?;
    }
    // Schema evolution: literacy reported from 2005 onwards.
    if p.year >= 2005 && opt(rng, 0.7, scale) {
        b.leaf("literacy", &format!("{}%", 60 + p.country_idx % 40))?;
    }
    if p.year >= 2006 && opt(rng, 0.35, scale) {
        b.start_element("migration")?;
        b.leaf("net_migration_rate", &format!("{:.1}", (p.country_idx % 10) as f64 - 3.0))?;
        b.leaf("destination_country", names::pick(names::COUNTRIES, p.country_idx * 31 + 1))?;
        b.end_element()?;
    }
    b.end_element()?;
    Ok(())
}

fn fixed_us_gdp(year: u16) -> Option<&'static str> {
    // Figure 2(a): the 2002 US document reports GDP 10.082T; Figure 1 shows
    // GDP_ppp 12.31T for 2006.
    match year {
        2002 => Some("10.082T"),
        2006 => Some("12.31T"),
        _ => None,
    }
}

fn build_economy(
    b: &mut DocumentBuilder<'_>,
    p: &DocParams<'_>,
    rng: &mut StdRng,
    scale: f64,
) -> Result<()> {
    b.start_element("economy")?;
    // Schema evolution (Sec. 7): documents created before 2005 use `GDP`,
    // documents from 2005 onwards use `GDP_ppp`.
    let gdp_value = fixed_us_gdp(p.year)
        .filter(|_| p.country == "United States")
        .map(str::to_string)
        .unwrap_or_else(|| {
            let billions =
                1.0 + (p.country_idx as f64 * 37.3) % 12_000.0 + (p.year as f64 - 2002.0) * 13.0;
            if billions >= 1000.0 {
                format!("{:.3}T", billions / 1000.0)
            } else {
                format!("{:.1}B", billions)
            }
        });
    if p.year < 2005 {
        b.leaf("GDP", &gdp_value)?;
    } else {
        b.leaf("GDP_ppp", &gdp_value)?;
    }
    if opt(rng, 0.75, scale) {
        b.leaf("GDP_growth", &format!("{:.1}%", (p.country_idx % 90) as f64 / 10.0 - 1.0))?;
    }
    if opt(rng, 0.6, scale) {
        b.leaf("GDP_per_capita", &format!("{}", 500 + (p.country_idx * 311) % 60_000))?;
    }
    if opt(rng, 0.65, scale) {
        b.leaf("inflation", &format!("{:.1}%", (p.country_idx % 120) as f64 / 10.0))?;
    }
    if opt(rng, 0.5, scale) {
        b.leaf("labor_force", &format!("{}", 10_000 + (p.country_idx * 77_321) % 700_000_000))?;
    }
    if p.year >= 2004 && opt(rng, 0.45, scale) {
        b.leaf("unemployment", &format!("{:.1}%", (p.country_idx % 200) as f64 / 10.0))?;
    }
    if opt(rng, 0.55, scale) {
        b.start_element("industries")?;
        for i in 0..(1 + p.country_idx % 4) {
            b.leaf("industry", names::pick(names::INDUSTRIES, p.country_idx + i * 5))?;
        }
        b.end_element()?;
    }

    build_trade_partners(b, p, rng, scale, "import_partners")?;
    build_trade_partners(b, p, rng, scale, "export_partners")?;

    if opt(rng, 0.5, scale) {
        b.start_element("exports")?;
        b.leaf("value", &format!("{:.1}B", (p.country_idx as f64 * 5.3) % 900.0))?;
        b.start_element("commodities")?;
        for i in 0..(1 + p.country_idx % 3) {
            b.leaf("commodity", names::pick(names::COMMODITIES, p.country_idx + i * 11))?;
        }
        b.end_element()?;
        b.end_element()?;
    }
    if opt(rng, 0.5, scale) {
        b.start_element("imports")?;
        b.leaf("value", &format!("{:.1}B", (p.country_idx as f64 * 4.1) % 800.0))?;
        b.start_element("commodities")?;
        for i in 0..(1 + p.country_idx % 3) {
            b.leaf("commodity", names::pick(names::COMMODITIES, p.country_idx * 2 + i * 13))?;
        }
        b.end_element()?;
        b.end_element()?;
    }
    if opt(rng, 0.6, scale) {
        b.leaf("currency", &format!("{} unit", names::pick(names::COUNTRIES, p.country_idx)))?;
    }
    if p.year >= 2005 && opt(rng, 0.3, scale) {
        b.start_element("aid")?;
        b.leaf("donor", names::pick(names::COUNTRIES, p.country_idx * 13 + 2))?;
        b.leaf("amount", &format!("{:.1}M", (p.country_idx as f64 * 1.7) % 500.0))?;
        b.end_element()?;
    }
    b.end_element()?;
    Ok(())
}

fn build_trade_partners(
    b: &mut DocumentBuilder<'_>,
    p: &DocParams<'_>,
    rng: &mut StdRng,
    scale: f64,
    section: &str,
) -> Result<()> {
    // Fixed facts for the worked example (Figures 1, 2 and 3 of the paper).
    let mut fixed: Vec<(&str, &str)> = Vec::new();
    if section == "import_partners" && p.country == "United States" {
        for &(year, partner, pct) in US_IMPORT_PARTNERS {
            if year == p.year {
                fixed.push((partner, pct));
            }
        }
    }
    if section == "export_partners" {
        for &(country, year, partner, pct) in FIXED_EXPORT_PARTNERS {
            if country == p.country && year == p.year {
                fixed.push((partner, pct));
            }
        }
    }

    let include_random = opt(rng, 0.8, scale);
    if fixed.is_empty() && !include_random {
        return Ok(());
    }
    b.start_element(section)?;
    for (partner, pct) in &fixed {
        b.start_element("item")?;
        b.leaf("trade_country", partner)?;
        b.leaf("percentage", pct)?;
        b.end_element()?;
    }
    if include_random {
        let n = 1 + rng.gen_range(0..4usize);
        for i in 0..n {
            let partner_idx = (p.country_idx + i * 29 + p.year as usize) % names::COUNTRIES.len();
            let partner = names::COUNTRIES[partner_idx];
            if partner == p.country || fixed.iter().any(|(f, _)| *f == partner) {
                continue;
            }
            b.start_element("item")?;
            b.leaf("trade_country", partner)?;
            b.leaf("percentage", &format!("{:.1}", 2.0 + rng.gen_range(0.0..25.0)))?;
            b.end_element()?;
        }
    }
    b.end_element()?;
    Ok(())
}

fn build_government(
    b: &mut DocumentBuilder<'_>,
    p: &DocParams<'_>,
    rng: &mut StdRng,
    scale: f64,
) -> Result<()> {
    b.start_element("government")?;
    b.leaf("capital", &format!("{} City", p.country))?;
    if opt(rng, 0.7, scale) {
        b.leaf(
            "government_type",
            ["republic", "monarchy", "federation", "parliamentary democracy"][p.country_idx % 4],
        )?;
    }
    if opt(rng, 0.5, scale) {
        b.leaf("independence", &format!("{}", 1700 + (p.country_idx * 7) % 300))?;
    }
    if opt(rng, 0.4, scale) {
        b.leaf("constitution", &format!("adopted {}", 1800 + (p.country_idx * 3) % 220))?;
    }
    if p.year >= 2004 && opt(rng, 0.45, scale) {
        b.start_element("diplomatic_representation")?;
        b.leaf("from_country", names::pick(names::COUNTRIES, p.country_idx * 19 + 3))?;
        b.leaf("ambassador", &format!("Ambassador {}", p.country_idx))?;
        b.end_element()?;
    }
    b.end_element()?;
    Ok(())
}

fn build_communications(
    b: &mut DocumentBuilder<'_>,
    p: &DocParams<'_>,
    rng: &mut StdRng,
    scale: f64,
) -> Result<()> {
    b.start_element("communications")?;
    if opt(rng, 0.8, scale) {
        b.leaf("telephones", &format!("{}", 1000 + (p.country_idx * 53_123) % 300_000_000))?;
    }
    if opt(rng, 0.7, scale) {
        b.leaf("internet_users", &format!("{}", 500 + (p.country_idx * 91_001) % 200_000_000))?;
    }
    if p.year >= 2005 && opt(rng, 0.5, scale) {
        b.leaf("internet_hosts", &format!("{}", 10 + (p.country_idx * 7_013) % 50_000_000))?;
    }
    if p.year >= 2006 && opt(rng, 0.3, scale) {
        b.leaf("broadcast_media", "state and private broadcasters")?;
    }
    b.end_element()?;
    Ok(())
}

fn build_transnational_issues(
    b: &mut DocumentBuilder<'_>,
    p: &DocParams<'_>,
    rng: &mut StdRng,
    scale: f64,
) -> Result<()> {
    b.start_element("transnational_issues")?;
    if opt(rng, 0.7, scale) {
        b.leaf(
            "disputes",
            &format!(
                "boundary dispute with {}",
                names::pick(names::COUNTRIES, p.country_idx * 11 + 5)
            ),
        )?;
    }
    // The refugees path occurs in roughly 186 of 1600 documents in the paper;
    // the transnational_issues section itself appears in ~35% of documents and
    // refugees in ~33% of those, giving ~11.6% of all documents.
    if opt(rng, 0.33, scale) {
        b.start_element("refugees")?;
        b.leaf("country_of_origin", names::pick(names::COUNTRIES, p.country_idx * 23 + 9))?;
        b.leaf("number", &format!("{}", 100 + (p.country_idx * 977) % 2_000_000))?;
        b.end_element()?;
    }
    if opt(rng, 0.25, scale) {
        b.leaf("trafficking", "transit point for illicit goods")?;
    }
    b.end_element()?;
    Ok(())
}

/// Places rare "indicator" fields deterministically so the corpus exhibits a
/// long tail of distinct paths: indicator `i` occurs in documents `j` with
/// `(j + 7 i) mod (i + 2) == 0`, i.e. roughly `N/(i+2)` documents.
fn build_rare_fields(b: &mut DocumentBuilder<'_>, p: &DocParams<'_>) -> Result<()> {
    let pool = p.config.rare_field_pool;
    if pool == 0 {
        return Ok(());
    }
    let sections = ["economy_indicators", "social_indicators", "environment_indicators"];
    let mut opened: Option<usize> = None;
    for i in 0..pool {
        let modulus = i + 2;
        if (p.doc_index + 7 * i).is_multiple_of(modulus) {
            let section = i % sections.len();
            match opened {
                Some(current) if current == section => {}
                Some(_) => {
                    b.end_element()?;
                    b.start_element(sections[section])?;
                    opened = Some(section);
                }
                None => {
                    b.start_element(sections[section])?;
                    opened = Some(section);
                }
            }
            b.leaf(&format!("indicator_{i:04}"), &format!("{}", (p.doc_index * 31 + i) % 10_000))?;
        }
    }
    if opened.is_some() {
        b.end_element()?;
    }
    Ok(())
}

impl FactbookConfig {
    /// Convenience constructor used by tests and benches that want a corpus
    /// with paper-like proportions but custom size.
    pub fn paper_scaled(countries: usize, years: usize) -> Self {
        let mut config = FactbookConfig::paper();
        config.countries = countries;
        let all_years = vec![2002, 2003, 2004, 2005, 2006, 2007];
        config.years = all_years.into_iter().take(years.max(1)).collect();
        config.rare_field_pool = (countries * years * 12 / 10).max(20);
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_corpus_has_expected_document_count() {
        let config = FactbookConfig::small();
        let c = generate(&config).unwrap();
        assert_eq!(c.len(), config.document_count());
    }

    #[test]
    fn generation_is_deterministic() {
        let config = FactbookConfig::tiny();
        let a = generate(&config).unwrap();
        let b = generate(&config).unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.distinct_path_count(), b.distinct_path_count());
        assert_eq!(a.total_nodes(), b.total_nodes());
    }

    #[test]
    fn schema_evolution_gdp_vs_gdp_ppp() {
        let c = generate(&FactbookConfig::small()).unwrap();
        let gdp = c.paths().get_str(c.symbols(), "/country/economy/GDP");
        let gdp_ppp = c.paths().get_str(c.symbols(), "/country/economy/GDP_ppp");
        assert!(gdp.is_some(), "pre-2005 documents must use GDP");
        assert!(gdp_ppp.is_some(), "2005+ documents must use GDP_ppp");
        // Every GDP node must be in a pre-2005 document, every GDP_ppp node in
        // a 2005+ document.
        for node in c.nodes_with_path(gdp.unwrap()) {
            let doc = c.document(node.doc).unwrap();
            let year_path = c.paths().get_str(c.symbols(), "/country/year").unwrap();
            let year_node = doc.nodes_with_path(year_path)[0];
            let year: u16 = doc.content(year_node).parse().unwrap();
            assert!(year < 2005, "GDP found in year {year}");
        }
    }

    #[test]
    fn query1_fixed_facts_are_present() {
        let c = generate(&FactbookConfig::small()).unwrap();
        let tc_path = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/trade_country")
            .unwrap();
        let nodes = c.nodes_with_path(tc_path);
        let mut china_with_15 = false;
        for node in nodes {
            if c.content(node).unwrap() == "China" {
                let doc = c.document(node.doc).unwrap();
                let parent = doc.parent(node.node).unwrap();
                let item_content = doc.content(parent);
                if item_content.contains("15") {
                    china_with_15 = true;
                }
            }
        }
        assert!(china_with_15, "US 2006 must import 15% from China (Fig. 3)");
    }

    #[test]
    fn united_states_appears_in_many_contexts() {
        let c = generate(&FactbookConfig::small()).unwrap();
        let mut contexts = std::collections::HashSet::new();
        for doc in c.documents() {
            for (ordinal, node) in doc.iter() {
                if node.is_leaf() && doc.content(ordinal).contains("United States") {
                    contexts.insert(node.path);
                }
            }
        }
        assert!(
            contexts.len() >= 5,
            "expected the US to occur in several contexts, got {}",
            contexts.len()
        );
    }

    #[test]
    fn rare_fields_produce_long_tail_of_paths() {
        let config = FactbookConfig::small();
        let c = generate(&config).unwrap();
        // Base schema is ~75 paths; rare indicators push it well beyond.
        assert!(c.distinct_path_count() > 100, "distinct paths = {}", c.distinct_path_count());
        // And the frequency distribution has a long tail: some path occurs in
        // only one document.
        let freq = c.path_document_frequency();
        assert!(freq.values().any(|&f| f == 1));
        // while /country occurs in almost all documents.
        let country = c.paths().get_str(c.symbols(), "/country").unwrap();
        assert!(freq[&country] as f64 >= 0.9 * c.len() as f64);
    }

    #[test]
    fn refugees_path_is_rare_but_present() {
        let c = generate(&FactbookConfig::paper_scaled(200, 6)).unwrap();
        let refugees = c
            .paths()
            .get_str(c.symbols(), "/country/transnational_issues/refugees/country_of_origin");
        assert!(refugees.is_some());
        let freq = c.path_document_frequency();
        let f = freq[&refugees.unwrap()];
        let total = c.len();
        // ~11-12% of documents in the paper (186/1600); allow a generous band.
        assert!(
            f * 100 / total >= 4 && f * 100 / total <= 25,
            "refugees path in {f}/{total} documents"
        );
    }

    #[test]
    fn territory_documents_exist_at_paper_scale_fraction() {
        let mut config = FactbookConfig::small();
        config.territory_fraction = 0.2;
        config.seed = 11;
        let c = generate(&config).unwrap();
        let territory = c.paths().get_str(c.symbols(), "/territory");
        assert!(territory.is_some(), "some documents must be rooted at territory");
        let country = c.paths().get_str(c.symbols(), "/country").unwrap();
        let freq = c.path_document_frequency();
        assert!(freq[&country] < c.len(), "/country must not occur in every document");
    }
}
