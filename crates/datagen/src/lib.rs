//! # seda-datagen
//!
//! Synthetic XML corpus generators standing in for the four data sets the SEDA
//! paper evaluates on (Table 1 and the running World Factbook example):
//!
//! | Data set              | Paper documents | Generator |
//! |-----------------------|-----------------|-----------|
//! | World Factbook 2002-07| 1600            | [`factbook`] |
//! | Mondial               | 5563            | [`mondial`] |
//! | Google Base snapshot  | 10000           | [`googlebase`] |
//! | RecipeML              | 10988           | [`recipeml`] |
//!
//! The real corpora are not redistributable; the generators reproduce their
//! *structural* statistics (document counts, schema evolution, optional
//! elements, flat vs deep shapes, ID/IDREF links), which is what the paper's
//! dataguide, context-summary and cube experiments depend on.  Every generator
//! is deterministic given its configuration.
//!
//! ```
//! use seda_datagen::{factbook, FactbookConfig};
//! let collection = factbook::generate(&FactbookConfig::tiny()).unwrap();
//! assert_eq!(collection.len(), FactbookConfig::tiny().document_count());
//! ```

pub mod factbook;
pub mod googlebase;
pub mod mondial;
pub mod names;
pub mod recipeml;

pub use factbook::FactbookConfig;
pub use googlebase::GoogleBaseConfig;
pub use mondial::MondialConfig;
pub use recipeml::RecipeMlConfig;

use seda_xmlstore::{Collection, Result};
use serde::{Deserialize, Serialize};

/// Identifies one of the four paper data sets; used by benches and the
/// Table 1 harness to iterate over all of them uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Google Base snapshot (flat, regular).
    GoogleBase,
    /// Mondial geography (many small documents, few shapes, IDREF links).
    Mondial,
    /// RecipeML (extremely regular, three shapes).
    RecipeMl,
    /// World Factbook 2002-2007 (heterogeneous, schema evolution, long tail).
    WorldFactbook,
}

impl Dataset {
    /// All four data sets in the order they appear in Table 1.
    pub const ALL: [Dataset; 4] =
        [Dataset::GoogleBase, Dataset::Mondial, Dataset::RecipeMl, Dataset::WorldFactbook];

    /// Human-readable name matching Table 1.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::GoogleBase => "Google Base snapshot",
            Dataset::Mondial => "Mondial",
            Dataset::RecipeMl => "RecipeML",
            Dataset::WorldFactbook => "World Factbook 2007",
        }
    }

    /// Number of documents the paper reports for this data set in Table 1.
    pub fn paper_document_count(self) -> usize {
        match self {
            Dataset::GoogleBase => 10_000,
            Dataset::Mondial => 5_563,
            Dataset::RecipeMl => 10_988,
            Dataset::WorldFactbook => 1_600,
        }
    }

    /// Number of dataguides the paper reports at the 40% overlap threshold.
    pub fn paper_dataguide_count(self) -> usize {
        match self {
            Dataset::GoogleBase => 88,
            Dataset::Mondial => 86,
            Dataset::RecipeMl => 3,
            Dataset::WorldFactbook => 500,
        }
    }

    /// Generates the data set at paper scale.
    pub fn generate_paper_scale(self) -> Result<Collection> {
        match self {
            Dataset::GoogleBase => googlebase::generate(&GoogleBaseConfig::paper()),
            Dataset::Mondial => mondial::generate(&MondialConfig::paper()),
            Dataset::RecipeMl => recipeml::generate(&RecipeMlConfig::paper()),
            Dataset::WorldFactbook => factbook::generate(&FactbookConfig::paper()),
        }
    }

    /// Generates a small version of the data set suitable for tests.
    pub fn generate_small(self) -> Result<Collection> {
        match self {
            Dataset::GoogleBase => googlebase::generate(&GoogleBaseConfig::small()),
            Dataset::Mondial => mondial::generate(&MondialConfig::small()),
            Dataset::RecipeMl => recipeml::generate(&RecipeMlConfig::small()),
            Dataset::WorldFactbook => factbook::generate(&FactbookConfig::small()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_document_counts_match_table1() {
        assert_eq!(Dataset::GoogleBase.paper_document_count(), 10_000);
        assert_eq!(Dataset::Mondial.paper_document_count(), 5_563);
        assert_eq!(Dataset::RecipeMl.paper_document_count(), 10_988);
        assert_eq!(Dataset::WorldFactbook.paper_document_count(), 1_600);
    }

    #[test]
    fn paper_scale_configs_agree_with_table1_counts() {
        assert_eq!(GoogleBaseConfig::paper().document_count(), 10_000);
        assert_eq!(MondialConfig::paper().document_count(), 5_563);
        assert_eq!(RecipeMlConfig::paper().document_count(), 10_988);
        // 267 countries x 6 years = 1602 ~ paper's 1600.
        let fb = FactbookConfig::paper().document_count();
        assert!((1590..=1610).contains(&fb), "factbook paper scale = {fb}");
    }

    #[test]
    fn small_generators_all_work() {
        for ds in Dataset::ALL {
            let c = ds.generate_small().unwrap();
            assert!(!c.is_empty(), "{} produced an empty collection", ds.name());
            assert!(c.distinct_path_count() > 1);
        }
    }

    #[test]
    fn dataset_names_are_stable() {
        let names: Vec<&str> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec!["Google Base snapshot", "Mondial", "RecipeML", "World Factbook 2007"]
        );
    }
}
