//! Mondial-like corpus generator.
//!
//! Mondial is a compilation of geographical web sources: countries, cities,
//! provinces, seas, rivers and international organizations, densely linked by
//! ID/IDREF references (Figure 1 of the paper shows `bordering` edges between
//! seas and countries and a `trade partner` relationship).  The paper reports
//! 5563 Mondial documents collapsing to 86 dataguides at a 40% overlap
//! threshold: many documents, few structural shapes.
//!
//! The generator emits one document per geographic entity.  Every document
//! carries an `id` attribute; references to other entities use attributes
//! whose name ends in `_idref`, which is the convention `seda-datagraph`
//! recognises when building IDREF edges.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, Result};

use crate::names;

/// Configuration of the Mondial-like generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MondialConfig {
    /// Number of country documents.
    pub countries: usize,
    /// Number of province documents.
    pub provinces: usize,
    /// Number of city documents.
    pub cities: usize,
    /// Number of sea documents.
    pub seas: usize,
    /// Number of river documents.
    pub rivers: usize,
    /// Number of organization documents.
    pub organizations: usize,
    /// Number of miscellaneous physical-feature documents (islands, lakes,
    /// mountains, deserts), split evenly across the four kinds.
    pub features: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MondialConfig {
    /// Paper-scale configuration: 5563 documents.
    pub fn paper() -> Self {
        MondialConfig {
            countries: 240,
            provinces: 1450,
            cities: 3100,
            seas: 43,
            rivers: 150,
            organizations: 80,
            features: 500,
            seed: 0x0D1A_2009,
        }
    }

    /// Small configuration for tests (~170 documents).
    pub fn small() -> Self {
        MondialConfig {
            countries: 20,
            provinces: 40,
            cities: 80,
            seas: 8,
            rivers: 10,
            organizations: 6,
            features: 8,
            seed: 17,
        }
    }

    /// Number of documents this configuration will produce.
    pub fn document_count(&self) -> usize {
        self.countries
            + self.provinces
            + self.cities
            + self.seas
            + self.rivers
            + self.organizations
            + self.features
    }
}

impl Default for MondialConfig {
    fn default() -> Self {
        MondialConfig::paper()
    }
}

fn country_id(idx: usize) -> String {
    format!("cty-{idx:04}")
}

fn city_id(idx: usize) -> String {
    format!("city-{idx:05}")
}

fn org_id(idx: usize) -> String {
    format!("org-{idx:03}")
}

fn sea_id(idx: usize) -> String {
    format!("sea-{idx:03}")
}

/// Generates a Mondial-like collection.
pub fn generate(config: &MondialConfig) -> Result<Collection> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut collection = Collection::new();
    let n_countries = config.countries.min(names::COUNTRIES.len()).max(1);

    // Countries.
    for i in 0..config.countries {
        let name = names::pick(names::COUNTRIES, i);
        let has_coast = i % 3 != 0;
        let org_memberships = 1 + i % 3;
        let capital = city_id(i % config.cities.max(1));
        let uri = format!("mondial/country/{i}.xml");
        collection.add_document(uri, |b| {
            b.start_element("country")?;
            b.attribute("id", &country_id(i))?;
            b.attribute("capital_idref", &capital)?;
            b.leaf("name", name)?;
            b.leaf("area", &format!("{}", 1000 + (i * 7919) % 9_000_000))?;
            b.leaf("population", &format!("{}", 40_000 + (i * 5_000_017) % 1_200_000_000))?;
            if has_coast {
                b.start_element("borders")?;
                let k = 1 + i % 4;
                for j in 1..=k {
                    b.start_element("bordering")?;
                    b.attribute("sea_idref", &sea_id((i + j) % config.seas.max(1)))?;
                    b.end_element()?;
                }
                b.end_element()?;
            }
            b.start_element("memberships")?;
            for j in 0..org_memberships {
                b.start_element("member_of")?;
                b.attribute(
                    "organization_idref",
                    &org_id((i + j * 13) % config.organizations.max(1)),
                )?;
                b.end_element()?;
            }
            b.end_element()?;
            if i % 5 == 0 {
                b.leaf("gdp_total", &format!("{}", 500 + (i * 331) % 15_000))?;
            }
            if i % 7 == 0 {
                b.leaf("inflation", &format!("{:.1}", (i % 80) as f64 / 10.0))?;
            }
            b.end_element()?;
            Ok(())
        })?;
    }

    // Provinces.
    for i in 0..config.provinces {
        let parent = i % n_countries;
        let uri = format!("mondial/province/{i}.xml");
        collection.add_document(uri, |b| {
            b.start_element("province")?;
            b.attribute("id", &format!("prov-{i:05}"))?;
            b.attribute("country_idref", &country_id(parent))?;
            b.leaf("name", &format!("{} Province {}", names::pick(names::COUNTRIES, parent), i))?;
            b.leaf("area", &format!("{}", 100 + (i * 797) % 500_000))?;
            b.leaf("population", &format!("{}", 5_000 + (i * 40_013) % 40_000_000))?;
            if i % 4 == 0 {
                b.attribute("capital_idref", &city_id(i % config.cities.max(1)))?;
            }
            b.end_element()?;
            Ok(())
        })?;
    }

    // Cities.
    for i in 0..config.cities {
        let country = i % n_countries;
        let uri = format!("mondial/city/{i}.xml");
        let is_coastal = rng.gen_bool(0.25);
        collection.add_document(uri, |b| {
            b.start_element("city")?;
            b.attribute("id", &city_id(i))?;
            b.attribute("country_idref", &country_id(country))?;
            b.leaf("name", &format!("{} City {}", names::pick(names::COUNTRIES, country), i))?;
            b.leaf("population", &format!("{}", 1_000 + (i * 9_377) % 25_000_000))?;
            if i % 3 == 0 {
                b.start_element("location")?;
                b.leaf("latitude", &format!("{:.2}", (i % 180) as f64 - 90.0))?;
                b.leaf("longitude", &format!("{:.2}", (i % 360) as f64 - 180.0))?;
                b.end_element()?;
            }
            if is_coastal {
                b.start_element("located_at")?;
                b.attribute("sea_idref", &sea_id(i % config.seas.max(1)))?;
                b.end_element()?;
            }
            b.end_element()?;
            Ok(())
        })?;
    }

    // Seas: Figure 1 shows seas with `bordering` relationships to countries.
    for i in 0..config.seas {
        let uri = format!("mondial/sea/{i}.xml");
        collection.add_document(uri, |b| {
            b.start_element("sea")?;
            b.attribute("id", &sea_id(i))?;
            b.leaf("name", names::pick(names::SEAS, i))?;
            b.leaf("depth", &format!("{}", 200 + (i * 731) % 11_000))?;
            b.start_element("bordering_countries")?;
            let k = 2 + i % 4;
            for j in 0..k {
                b.start_element("bordering")?;
                b.attribute(
                    "country_idref",
                    &country_id((i * 5 + j * 3) % config.countries.max(1)),
                )?;
                b.end_element()?;
            }
            b.end_element()?;
            b.end_element()?;
            Ok(())
        })?;
    }

    // Rivers.
    for i in 0..config.rivers {
        let uri = format!("mondial/river/{i}.xml");
        collection.add_document(uri, |b| {
            b.start_element("river")?;
            b.attribute("id", &format!("river-{i:04}"))?;
            b.leaf("name", names::pick(names::RIVERS, i))?;
            b.leaf("length", &format!("{}", 100 + (i * 631) % 7_000))?;
            b.start_element("flows_through")?;
            b.attribute("country_idref", &country_id(i % config.countries.max(1)))?;
            b.end_element()?;
            if i % 2 == 0 {
                b.start_element("mouth")?;
                b.attribute("sea_idref", &sea_id(i % config.seas.max(1)))?;
                b.end_element()?;
            }
            b.end_element()?;
            Ok(())
        })?;
    }

    // Organizations.
    for i in 0..config.organizations {
        let uri = format!("mondial/organization/{i}.xml");
        collection.add_document(uri, |b| {
            b.start_element("organization")?;
            b.attribute("id", &org_id(i))?;
            b.leaf("name", names::pick(names::ORGANIZATIONS, i))?;
            b.leaf("established", &format!("{}", 1919 + (i * 7) % 90))?;
            b.start_element("headquarters")?;
            b.attribute("city_idref", &city_id(i % config.cities.max(1)))?;
            b.end_element()?;
            b.end_element()?;
            Ok(())
        })?;
    }

    // Miscellaneous physical features: four shapes.
    let kinds = ["island", "lake", "mountain", "desert"];
    for i in 0..config.features {
        let kind = kinds[i % kinds.len()];
        let uri = format!("mondial/{kind}/{i}.xml");
        collection.add_document(uri, |b| {
            b.start_element(kind)?;
            b.attribute("id", &format!("{kind}-{i:04}"))?;
            b.leaf("name", &format!("{} {}", names::pick(names::COUNTRIES, i * 3), kind))?;
            match kind {
                "island" => {
                    b.leaf("area", &format!("{}", 10 + (i * 97) % 100_000))?;
                    b.start_element("in_sea")?;
                    b.attribute("sea_idref", &sea_id(i % config.seas.max(1)))?;
                    b.end_element()?;
                }
                "lake" => {
                    b.leaf("area", &format!("{}", 5 + (i * 53) % 50_000))?;
                    b.leaf("depth", &format!("{}", 3 + (i * 17) % 1600))?;
                }
                "mountain" => {
                    b.leaf("height", &format!("{}", 800 + (i * 211) % 8000))?;
                }
                _ => {
                    b.leaf("area", &format!("{}", 1000 + (i * 307) % 9_000_000))?;
                }
            }
            b.start_element("located_in")?;
            b.attribute("country_idref", &country_id(i % config.countries.max(1)))?;
            b.end_element()?;
            b.end_element()?;
            Ok(())
        })?;
    }

    Ok(collection)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_count_matches_config() {
        let config = MondialConfig::small();
        let c = generate(&config).unwrap();
        assert_eq!(c.len(), config.document_count());
    }

    #[test]
    fn paper_config_matches_table1_document_count() {
        assert_eq!(MondialConfig::paper().document_count(), 5563);
    }

    #[test]
    fn few_distinct_shapes() {
        let c = generate(&MondialConfig::small()).unwrap();
        // Mondial is structurally regular: the number of distinct paths is
        // small compared to the number of documents.
        assert!(c.distinct_path_count() < 100, "paths = {}", c.distinct_path_count());
        assert!(c.distinct_path_count() < c.len(), "far fewer shapes than documents");
    }

    #[test]
    fn idref_attributes_follow_naming_convention() {
        let c = generate(&MondialConfig::small()).unwrap();
        let sea_ref = c.paths().get_str(c.symbols(), "/country/borders/bordering/sea_idref");
        assert!(sea_ref.is_some(), "country documents must reference seas by idref");
        let country_ref = c.paths().get_str(c.symbols(), "/city/country_idref");
        assert!(country_ref.is_some(), "city documents must reference their country");
    }

    #[test]
    fn ids_are_unique_across_documents_of_a_kind() {
        let c = generate(&MondialConfig::small()).unwrap();
        let id_path = c.paths().get_str(c.symbols(), "/country/id").unwrap();
        let mut seen = std::collections::HashSet::new();
        for node in c.nodes_with_path(id_path) {
            assert!(seen.insert(c.content(node).unwrap()), "duplicate country id");
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&MondialConfig::small()).unwrap();
        let b = generate(&MondialConfig::small()).unwrap();
        assert_eq!(a.total_nodes(), b.total_nodes());
        assert_eq!(a.distinct_path_count(), b.distinct_path_count());
    }
}
