//! Google-Base-like corpus generator.
//!
//! The paper's Table 1 uses a snapshot of 10000 Google Base items that
//! collapses to 88 dataguides at a 40% overlap threshold: the data is flat and
//! regular, with essentially one schema per product category.  The generator
//! reproduces that shape: every document is a flat `<item>` with a handful of
//! shared fields plus category-specific attribute fields, so documents of the
//! same category have identical path sets and documents of different
//! categories overlap below the merge threshold.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use seda_xmlstore::{Collection, Result};

use crate::names;

/// Configuration of the Google-Base-like generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoogleBaseConfig {
    /// Number of item documents.
    pub items: usize,
    /// Number of product categories (each category is one flat schema).
    pub categories: usize,
    /// Number of category-specific attribute fields per category.
    pub attributes_per_category: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GoogleBaseConfig {
    /// Paper-scale configuration: 10000 items across 88 categories.
    pub fn paper() -> Self {
        GoogleBaseConfig {
            items: 10_000,
            categories: 88,
            attributes_per_category: 10,
            seed: 0x6B05,
        }
    }

    /// Small configuration for tests: 300 items across 12 categories.
    pub fn small() -> Self {
        GoogleBaseConfig { items: 300, categories: 12, attributes_per_category: 10, seed: 23 }
    }

    /// Number of documents this configuration will produce.
    pub fn document_count(&self) -> usize {
        self.items
    }
}

impl Default for GoogleBaseConfig {
    fn default() -> Self {
        GoogleBaseConfig::paper()
    }
}

/// Generates a Google-Base-like collection.
pub fn generate(config: &GoogleBaseConfig) -> Result<Collection> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut collection = Collection::new();
    let categories = config.categories.min(names::PRODUCT_CATEGORIES.len()).max(1);

    for i in 0..config.items {
        let category_idx = i % categories;
        let category = names::PRODUCT_CATEGORIES[category_idx];
        let category_token = category.replace(' ', "_");
        let uri = format!("googlebase/{category_token}/{i}.xml");
        let price = 1.0 + rng.gen_range(0.0..2500.0);
        collection.add_document(uri, |b| {
            b.start_element("item")?;
            b.attribute("id", &format!("gb-{i:06}"))?;
            b.leaf("title", &format!("{} model {}", category, i % 997))?;
            b.leaf("category", category)?;
            b.leaf("price", &format!("{price:.2}"))?;
            b.leaf("condition", if i % 7 == 0 { "used" } else { "new" })?;
            // Category-specific attributes: names are prefixed with the
            // category so that different categories share few paths, exactly
            // like heterogeneous Google Base item types.
            for j in 0..config.attributes_per_category {
                let attr = names::PRODUCT_ATTRIBUTES[j % names::PRODUCT_ATTRIBUTES.len()];
                b.leaf(
                    &format!("{category_token}_{attr}"),
                    &format!("{}", (i * 31 + j * 7) % 10_000),
                )?;
            }
            b.end_element()?;
            Ok(())
        })?;
    }
    Ok(collection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn document_count_matches_config() {
        let config = GoogleBaseConfig::small();
        let c = generate(&config).unwrap();
        assert_eq!(c.len(), config.document_count());
    }

    #[test]
    fn paper_config_matches_table1() {
        let p = GoogleBaseConfig::paper();
        assert_eq!(p.document_count(), 10_000);
        assert_eq!(p.categories, 88);
    }

    #[test]
    fn one_distinct_path_set_per_category() {
        let config = GoogleBaseConfig::small();
        let c = generate(&config).unwrap();
        let mut shapes: HashSet<Vec<_>> = HashSet::new();
        for doc in c.documents() {
            shapes.insert(doc.distinct_paths());
        }
        assert_eq!(shapes.len(), config.categories, "one structural shape per category");
    }

    #[test]
    fn categories_share_only_the_common_fields() {
        let config = GoogleBaseConfig::small();
        let c = generate(&config).unwrap();
        let docs: Vec<_> = c.documents().take(2).collect();
        let a: HashSet<_> = docs[0].distinct_paths().into_iter().collect();
        let b: HashSet<_> = docs[1].distinct_paths().into_iter().collect();
        let common = a.intersection(&b).count();
        // /item, /item/id, title, category, price, condition = 6 shared paths.
        assert_eq!(common, 6);
        let overlap = common as f64 / a.len().max(b.len()) as f64;
        assert!(overlap < 0.6, "categories must not overlap heavily, got {overlap}");
    }

    #[test]
    fn items_are_flat() {
        let c = generate(&GoogleBaseConfig::small()).unwrap();
        for doc in c.documents().take(10) {
            for (_, node) in doc.iter() {
                assert!(node.dewey.depth() <= 2, "Google Base items are flat documents");
            }
        }
    }
}
