//! Name pools shared by the synthetic corpus generators.
//!
//! The generators are deterministic given a seed; the pools below give the
//! corpora realistic-looking vocabulary (country names, commodities, recipe
//! ingredients, product categories) without shipping any of the original data.

/// Country and territory names used by the Factbook- and Mondial-like
/// generators.  "United States" and its Figure 1/3 trade partners are listed
/// first so the worked example of the paper is always present.
pub const COUNTRIES: &[&str] = &[
    "United States",
    "China",
    "Canada",
    "Mexico",
    "Germany",
    "Japan",
    "United Kingdom",
    "France",
    "India",
    "Italy",
    "Brazil",
    "South Korea",
    "Russia",
    "Australia",
    "Spain",
    "Indonesia",
    "Netherlands",
    "Saudi Arabia",
    "Turkey",
    "Switzerland",
    "Poland",
    "Belgium",
    "Sweden",
    "Ireland",
    "Thailand",
    "Nigeria",
    "Austria",
    "Israel",
    "Norway",
    "Argentina",
    "Philippines",
    "Egypt",
    "Denmark",
    "Malaysia",
    "Singapore",
    "Vietnam",
    "Bangladesh",
    "South Africa",
    "Colombia",
    "Chile",
    "Finland",
    "Romania",
    "Czechia",
    "Portugal",
    "New Zealand",
    "Peru",
    "Greece",
    "Iraq",
    "Ukraine",
    "Hungary",
    "Morocco",
    "Kuwait",
    "Slovakia",
    "Ecuador",
    "Kenya",
    "Ethiopia",
    "Sri Lanka",
    "Dominican Republic",
    "Guatemala",
    "Oman",
    "Myanmar",
    "Luxembourg",
    "Panama",
    "Ghana",
    "Bulgaria",
    "Croatia",
    "Tanzania",
    "Belarus",
    "Costa Rica",
    "Uruguay",
    "Lithuania",
    "Serbia",
    "Slovenia",
    "Uzbekistan",
    "Azerbaijan",
    "Jordan",
    "Tunisia",
    "Cameroon",
    "Bolivia",
    "Paraguay",
    "Latvia",
    "Estonia",
    "Nepal",
    "Cambodia",
    "Iceland",
    "Senegal",
    "Honduras",
    "Zimbabwe",
    "Zambia",
    "Bosnia",
    "Botswana",
    "Albania",
    "Malta",
    "Mongolia",
    "Armenia",
    "Georgia",
    "Jamaica",
    "Namibia",
    "Macedonia",
    "Moldova",
    "Madagascar",
    "Mali",
    "Mozambique",
    "Laos",
    "Kyrgyzstan",
    "Tajikistan",
    "Haiti",
    "Rwanda",
    "Benin",
    "Niger",
    "Guinea",
    "Chad",
    "Somalia",
    "Togo",
    "Eritrea",
    "Fiji",
    "Bhutan",
    "Maldives",
    "Belize",
    "Vanuatu",
    "Samoa",
    "Tonga",
    "Kiribati",
    "Palau",
    "Nauru",
    "Tuvalu",
    "Andorra",
    "Monaco",
    "Liechtenstein",
    "San Marino",
    "Qatar",
    "Bahrain",
    "Cyprus",
    "Lebanon",
    "Syria",
    "Yemen",
    "Afghanistan",
    "Pakistan",
    "Iran",
    "Algeria",
    "Libya",
    "Sudan",
    "Angola",
    "Gabon",
    "Congo",
    "Uganda",
    "Malawi",
    "Lesotho",
    "Swaziland",
    "Gambia",
    "Liberia",
    "Mauritania",
    "Mauritius",
    "Seychelles",
    "Comoros",
    "Djibouti",
    "Burundi",
    "Barbados",
    "Bahamas",
    "Grenada",
    "Dominica",
    "Suriname",
    "Guyana",
    "Nicaragua",
    "El Salvador",
    "Trinidad",
    "Cuba",
    "North Korea",
    "Taiwan",
    "Hong Kong",
    "Macau",
    "Greenland",
    "Bermuda",
    "Gibraltar",
    "Aruba",
    "Curacao",
    "Martinique",
    "Guadeloupe",
    "Reunion",
    "Mayotte",
    "New Caledonia",
    "French Polynesia",
    "Guam",
    "Puerto Rico",
    "American Samoa",
    "Cook Islands",
    "Niue",
    "Tokelau",
    "Pitcairn",
    "Falkland Islands",
    "Saint Helena",
    "Montserrat",
    "Anguilla",
    "Cayman Islands",
    "Turks and Caicos",
    "British Virgin Islands",
    "US Virgin Islands",
    "Northern Mariana Islands",
    "Marshall Islands",
    "Micronesia",
    "Solomon Islands",
    "Papua New Guinea",
    "Timor-Leste",
    "Brunei",
    "Cape Verde",
    "Sao Tome",
    "Equatorial Guinea",
    "Guinea-Bissau",
    "Sierra Leone",
    "Ivory Coast",
    "Burkina Faso",
    "Central African Republic",
    "South Sudan",
    "Western Sahara",
    "Kosovo",
    "Montenegro",
    "Vatican City",
    "Antarctica",
    "Svalbard",
    "Faroe Islands",
    "Isle of Man",
    "Jersey",
    "Guernsey",
    "Saint Lucia",
    "Saint Vincent",
    "Saint Kitts",
    "Antigua",
    "Wallis and Futuna",
    "Norfolk Island",
    "Christmas Island",
    "Cocos Islands",
    "Akrotiri",
    "Dhekelia",
    "Jan Mayen",
    "Bouvet Island",
    "Heard Island",
    "Clipperton Island",
    "Coral Sea Islands",
    "Ashmore and Cartier",
    "Navassa Island",
    "Wake Island",
    "Midway Islands",
    "Johnston Atoll",
    "Baker Island",
    "Howland Island",
    "Jarvis Island",
    "Kingman Reef",
    "Palmyra Atoll",
    "Paracel Islands",
    "Spratly Islands",
    "Gaza Strip",
    "West Bank",
    "Turkmenistan",
    "Kazakhstan",
    "Slovak Republic",
    "Channel Islands",
    "Saint Pierre",
    "Sint Maarten",
    "Bonaire",
    "Saba",
    "Sint Eustatius",
    "Saint Barthelemy",
    "Saint Martin",
    "Aland Islands",
    "Galapagos",
    "Zanzibar",
    "Sardinia",
    "Sicily",
    "Corsica",
    "Crete",
    "Balearic Islands",
    "Canary Islands",
    "Madeira",
    "Azores",
    "Hainan",
    "Okinawa",
    "Hokkaido",
    "Tasmania",
    "Patagonia",
    "Yukon",
    "Nunavut",
    "Alaska",
    "Hawaii",
    "Scotland",
    "Wales",
    "Northern Ireland",
    "England",
    "Catalonia",
    "Bavaria",
    "Flanders",
    "Wallonia",
    "Quebec",
    "Ontario",
];

/// Seas and oceans used by the Mondial-like generator (Fig. 1 of the paper
/// shows `sea` nodes such as "Pacific Ocean" and "China sea").
pub const SEAS: &[&str] = &[
    "Pacific Ocean",
    "Atlantic Ocean",
    "Indian Ocean",
    "Arctic Ocean",
    "China Sea",
    "Mediterranean Sea",
    "Caribbean Sea",
    "Baltic Sea",
    "North Sea",
    "Black Sea",
    "Red Sea",
    "Caspian Sea",
    "Bering Sea",
    "Coral Sea",
    "Tasman Sea",
    "Sea of Japan",
    "Yellow Sea",
    "Arabian Sea",
    "Bay of Bengal",
    "Gulf of Mexico",
    "Persian Gulf",
    "Adriatic Sea",
    "Aegean Sea",
    "Andaman Sea",
    "Barents Sea",
    "Beaufort Sea",
    "Celebes Sea",
    "Chukchi Sea",
    "East Siberian Sea",
    "Greenland Sea",
    "Hudson Bay",
    "Ionian Sea",
    "Irish Sea",
    "Java Sea",
    "Kara Sea",
    "Labrador Sea",
    "Laptev Sea",
    "Norwegian Sea",
    "Philippine Sea",
    "Ross Sea",
    "Sargasso Sea",
    "Scotia Sea",
    "Sea of Okhotsk",
    "Solomon Sea",
    "South China Sea",
    "Sulu Sea",
    "Timor Sea",
    "Weddell Sea",
];

/// Rivers for the Mondial-like generator.
pub const RIVERS: &[&str] = &[
    "Amazon", "Nile", "Yangtze", "Mississippi", "Yenisei", "Yellow River", "Ob", "Parana",
    "Congo River", "Amur", "Lena", "Mekong", "Mackenzie", "Niger River", "Murray", "Tocantins",
    "Volga", "Indus", "Euphrates", "Madeira", "Purus", "Yukon River", "Rio Grande", "Brahmaputra",
    "Danube", "Zambezi", "Tigris", "Orinoco", "Ganges", "Salween", "Vilyuy", "Colorado",
];

/// International organizations for the Mondial-like generator.
pub const ORGANIZATIONS: &[&str] = &[
    "United Nations",
    "World Trade Organization",
    "European Union",
    "African Union",
    "NATO",
    "OPEC",
    "ASEAN",
    "Mercosur",
    "Arab League",
    "Commonwealth of Nations",
    "OECD",
    "World Health Organization",
    "International Monetary Fund",
    "World Bank",
    "Interpol",
    "Caricom",
    "Organization of American States",
    "Pacific Islands Forum",
    "Gulf Cooperation Council",
    "Shanghai Cooperation Organisation",
];

/// Commodity names for import/export listings.
pub const COMMODITIES: &[&str] = &[
    "machinery", "crude oil", "electronics", "vehicles", "pharmaceuticals", "textiles", "grain",
    "steel", "aluminum", "coffee", "natural gas", "coal", "timber", "fish", "plastics",
    "chemicals", "aircraft", "semiconductors", "copper", "gold", "diamonds", "cotton", "sugar",
    "beef", "soybeans", "wine", "cheese", "rubber", "paper", "cement",
];

/// Industry names for the economy section.
pub const INDUSTRIES: &[&str] = &[
    "petroleum", "steel", "motor vehicles", "aerospace", "telecommunications", "chemicals",
    "electronics", "food processing", "consumer goods", "lumber", "mining", "textiles",
    "shipbuilding", "tourism", "banking", "software", "pharmaceuticals", "agriculture",
    "fishing", "construction",
];

/// Language names for the people section.
pub const LANGUAGES: &[&str] = &[
    "English", "Mandarin", "Spanish", "Hindi", "Arabic", "Portuguese", "Bengali", "Russian",
    "Japanese", "German", "French", "Italian", "Korean", "Turkish", "Vietnamese", "Tamil",
    "Urdu", "Swahili", "Dutch", "Polish", "Thai", "Greek", "Czech", "Swedish", "Hungarian",
];

/// Religion names for the people section.
pub const RELIGIONS: &[&str] = &[
    "Christian", "Muslim", "Hindu", "Buddhist", "Jewish", "Sikh", "folk religion", "unaffiliated",
];

/// Climate descriptions for the geography section.
pub const CLIMATES: &[&str] = &[
    "temperate", "tropical", "arid", "continental", "polar", "mediterranean", "subtropical",
    "oceanic", "monsoon", "alpine",
];

/// Terrain descriptions for the geography section.
pub const TERRAINS: &[&str] = &[
    "mountains", "plains", "plateau", "desert", "rainforest", "tundra", "rolling hills",
    "coastal lowlands", "islands", "river valleys",
];

/// Natural resources for the geography section.
pub const RESOURCES: &[&str] = &[
    "coal", "petroleum", "natural gas", "iron ore", "copper", "gold", "uranium", "bauxite",
    "timber", "fish", "arable land", "hydropower", "rare earth elements", "nickel", "zinc",
    "phosphates", "diamonds", "silver", "lithium", "cobalt",
];

/// Continents / regions.
pub const REGIONS: &[&str] = &[
    "North America",
    "South America",
    "Europe",
    "Asia",
    "Africa",
    "Oceania",
    "Middle East",
    "Central America",
    "Caribbean",
    "Central Asia",
];

/// Google-Base-like product categories.  Each category becomes one flat,
/// regular schema variant (the paper reports a reduction from 10000 documents
/// to 88 dataguides, i.e. roughly one dataguide per category).
pub const PRODUCT_CATEGORIES: &[&str] = &[
    "laptops", "phones", "cameras", "televisions", "headphones", "monitors", "printers",
    "tablets", "keyboards", "mice", "routers", "speakers", "watches", "bicycles", "tents",
    "backpacks", "shoes", "jackets", "jeans", "shirts", "dresses", "sofas", "tables", "chairs",
    "lamps", "rugs", "mattresses", "blenders", "toasters", "microwaves", "refrigerators",
    "dishwashers", "vacuums", "drills", "saws", "hammers", "ladders", "paints", "books",
    "board games", "puzzles", "dolls", "action figures", "guitars", "keyboards_music", "drums",
    "violins", "basketballs", "soccer balls", "tennis rackets", "golf clubs", "skis",
    "snowboards", "kayaks", "surfboards", "fishing rods", "grills", "patio sets", "planters",
    "mowers", "trimmers", "car tires", "car batteries", "motor oil", "wipers", "car seats",
    "strollers", "cribs", "diapers", "dog food", "cat food", "bird cages", "aquariums",
    "vitamins", "protein powder", "yoga mats", "dumbbells", "treadmills", "perfume", "shampoo",
    "toothbrushes", "razors", "coffee makers", "espresso machines", "kettles", "cookware",
    "knives", "cutting boards",
];

/// Attribute names that vary per Google-Base category.
pub const PRODUCT_ATTRIBUTES: &[&str] = &[
    "brand", "model", "color", "weight", "condition", "price", "quantity", "upc", "mpn",
    "size", "material", "warranty", "rating", "shipping_weight", "country_of_origin",
];

/// Recipe names for the RecipeML-like generator.
pub const RECIPES: &[&str] = &[
    "Pancakes", "Chicken Curry", "Beef Stew", "Vegetable Soup", "Apple Pie", "Chocolate Cake",
    "Caesar Salad", "Spaghetti Carbonara", "Fish Tacos", "Pad Thai", "Lasagna", "Banana Bread",
    "French Onion Soup", "Ratatouille", "Paella", "Goulash", "Falafel", "Hummus", "Sushi Rolls",
    "Pho", "Ramen", "Burritos", "Enchiladas", "Pot Roast", "Meatloaf", "Clam Chowder",
    "Shepherds Pie", "Quiche Lorraine", "Crepes", "Waffles", "Brownies", "Cheesecake",
    "Tiramisu", "Gazpacho", "Minestrone", "Risotto", "Gnocchi", "Pierogi", "Moussaka",
    "Baklava", "Churros", "Empanadas", "Samosas", "Biryani", "Tandoori Chicken", "Jambalaya",
    "Gumbo", "Cornbread", "Biscuits", "Granola",
];

/// Ingredients for the RecipeML-like generator.
pub const INGREDIENTS: &[&str] = &[
    "flour", "sugar", "salt", "butter", "eggs", "milk", "olive oil", "onion", "garlic",
    "tomato", "chicken", "beef", "pork", "rice", "pasta", "potato", "carrot", "celery",
    "pepper", "basil", "oregano", "thyme", "cumin", "paprika", "cinnamon", "vanilla",
    "chocolate", "cream", "cheese", "lemon", "lime", "ginger", "soy sauce", "vinegar",
    "honey", "yeast", "baking powder", "cilantro", "parsley", "mushroom",
];

/// Units of measure for recipe ingredient quantities.
pub const UNITS: &[&str] = &["cup", "tablespoon", "teaspoon", "gram", "ounce", "pound", "ml", "piece"];

/// Deterministic pseudo-random helper: picks an element of `pool` by index.
pub fn pick<'a>(pool: &'a [&'a str], index: usize) -> &'a str {
    pool[index % pool.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn united_states_and_its_partners_lead_the_country_pool() {
        assert_eq!(COUNTRIES[0], "United States");
        assert!(COUNTRIES.contains(&"China"));
        assert!(COUNTRIES.contains(&"Canada"));
        assert!(COUNTRIES.contains(&"Mexico"));
        assert!(COUNTRIES.contains(&"Philippines"), "Fig. 1 mentions the Philippines");
    }

    #[test]
    fn country_pool_is_large_enough_for_factbook_scale() {
        // 267 countries x 6 years = 1602 documents (paper: 1600).
        assert!(COUNTRIES.len() >= 267, "have {}", COUNTRIES.len());
    }

    #[test]
    fn country_names_are_unique() {
        let mut sorted: Vec<&str> = COUNTRIES.to_vec();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len(), "duplicate country names in pool");
    }

    #[test]
    fn product_categories_match_google_base_dataguide_scale() {
        // Paper: 10000 Google Base documents reduce to 88 dataguides; the
        // number of categories bounds the number of dataguides.
        assert!(PRODUCT_CATEGORIES.len() >= 80 && PRODUCT_CATEGORIES.len() <= 96);
    }

    #[test]
    fn pick_wraps_around() {
        assert_eq!(pick(UNITS, 0), "cup");
        assert_eq!(pick(UNITS, UNITS.len()), "cup");
        assert_eq!(pick(UNITS, 1), "tablespoon");
    }

    #[test]
    fn seas_include_figure_1_examples() {
        assert!(SEAS.contains(&"Pacific Ocean"));
        assert!(SEAS.contains(&"China Sea"));
    }
}
