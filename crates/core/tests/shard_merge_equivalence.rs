//! Property tests for the shard → merge build lifecycle: merging
//! per-document shards of a randomly generated multi-document collection must
//! produce byte-for-byte the same substrates as the sequential single-pass
//! build — identical `NodeIndex` and `ContextIndex` postings (for both
//! `CountStorage` designs), identical `DataGraph` edges, and identical
//! `DataGuideSet` contents and Table-1 statistics.

use proptest::prelude::*;

use seda_core::{EngineConfig, SedaEngine};
use seda_datagraph::{DataGraph, GraphConfig, ValueKeySpec};
use seda_dataguide::DataGuideSet;
use seda_olap::Registry;
use seda_textindex::{ContextIndex, CountStorage, NodeIndex};
use seda_xmlstore::{Collection, DocId};

/// Builds a heterogeneous collection from a compact random description: each
/// document picks one of six shapes, gets a couple of keyword-bearing leaves,
/// and some documents carry id / idref attributes so the data graph has
/// cross-document edges to resolve at merge time.
fn random_collection(docs: &[(u8, String, String)]) -> Collection {
    let mut collection = Collection::new();
    for (i, (shape, word_a, word_b)) in docs.iter().enumerate() {
        let shape = shape % 6;
        collection
            .add_document(format!("doc{i}.xml"), |b| {
                b.start_element(&format!("shape{shape}"))?;
                b.attribute("id", &format!("node-{i}"))?;
                if i > 0 {
                    // Reference some earlier document to exercise IDREF
                    // resolution across shard boundaries.
                    b.start_element("link")?;
                    b.attribute("target_idref", &format!("node-{}", i / 2))?;
                    b.end_element()?;
                }
                b.leaf("title", word_a)?;
                for f in 0..(shape + 1) {
                    b.leaf(&format!("field_{shape}_{f}"), word_b)?;
                }
                if shape % 2 == 0 {
                    b.start_element("nested")?;
                    b.leaf("inner", &format!("{word_a} {word_b}"))?;
                    b.end_element()?;
                }
                b.end_element()?;
                Ok(())
            })
            .expect("document builds");
    }
    collection
}

fn arb_docs() -> impl Strategy<Value = Vec<(u8, String, String)>> {
    proptest::collection::vec((0u8..6, "[a-z]{1,8}", "[a-z]{1,8}"), 1..16)
}

fn graph_config() -> GraphConfig {
    // A value key linking titles to nested inner text exercises the
    // cross-document value join in the merge phase.
    GraphConfig::with_value_keys(vec![ValueKeySpec::new("/shape0/title", "/shape2/title")])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `NodeIndex::merge` over per-document shards equals the sequential
    /// build, posting for posting.
    #[test]
    fn node_index_merge_equals_sequential(docs in arb_docs()) {
        let c = random_collection(&docs);
        let sequential = NodeIndex::build(&c);
        let mut shards: Vec<_> = c.documents().map(NodeIndex::build_shard).collect();
        shards.reverse();
        let merged = NodeIndex::merge(shards);
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(merged.indexed_node_count(), sequential.indexed_node_count());
    }

    /// `ContextIndex::merge` equals the sequential build for both count
    /// storage designs.
    #[test]
    fn context_index_merge_equals_sequential(docs in arb_docs()) {
        let c = random_collection(&docs);
        for storage in [CountStorage::DocumentStore, CountStorage::PostingLists] {
            let sequential = ContextIndex::build(&c, storage);
            let mut shards: Vec<_> =
                c.documents().map(|d| ContextIndex::build_shard(d, storage)).collect();
            shards.reverse();
            let merged = ContextIndex::merge(&c, storage, shards);
            prop_assert_eq!(&merged, &sequential);
            prop_assert_eq!(merged.count_entries(), sequential.count_entries());
        }
    }

    /// `DataGraph::merge` resolves IDREF and value-key edges identically to
    /// the sequential two-pass build.
    #[test]
    fn data_graph_merge_equals_sequential(docs in arb_docs()) {
        let c = random_collection(&docs);
        let config = graph_config();
        let sequential = DataGraph::build(&c, &config);
        let mut shards: Vec<_> = c
            .documents()
            .map(|d| DataGraph::build_shard(&c, d.id, &config))
            .collect();
        shards.reverse();
        let merged = DataGraph::merge(&c, shards);
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(merged.edges(), sequential.edges());
    }

    /// `DataGuideSet::merge` over arbitrary shard partitions reproduces the
    /// sequential greedy merge exactly — same guides, same assignment, same
    /// Table-1 statistics.
    #[test]
    fn dataguide_merge_equals_sequential(docs in arb_docs(), split in 1usize..8) {
        let c = random_collection(&docs);
        let sequential = DataGuideSet::build(&c, 0.4).unwrap();
        // Partition documents round-robin into `split` shards so shard
        // boundaries cut across document order.
        let mut partitions: Vec<Vec<DocId>> = vec![Vec::new(); split];
        for (i, doc) in c.documents().enumerate() {
            partitions[i % split].push(doc.id);
        }
        let shards: Vec<_> = partitions
            .into_iter()
            .filter(|p| !p.is_empty())
            .map(|p| DataGuideSet::build_shard(&c, p).unwrap())
            .collect();
        let merged = DataGuideSet::merge(0.4, shards);
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(merged.stats(c.len()), sequential.stats(c.len()));
    }

    /// The full engine built in parallel answers queries identically to the
    /// sequential engine: same substrates, same context summaries, same
    /// dataguide statistics.
    #[test]
    fn parallel_engine_equals_sequential(docs in arb_docs(), threads in 2usize..6) {
        let c = random_collection(&docs);
        let sequential = SedaEngine::build(
            c.clone(),
            Registry::new(),
            EngineConfig { graph: graph_config(), ..EngineConfig::default() },
        )
        .unwrap();
        let parallel = SedaEngine::build(
            c,
            Registry::new(),
            EngineConfig { graph: graph_config(), parallelism: threads, ..EngineConfig::default() },
        )
        .unwrap();

        // Equivalence alone could hold for two equally-corrupt engines: both
        // variants must also pass the full structural audit.
        prop_assert!(sequential.verify().is_ok(), "sequential engine fails audit");
        prop_assert!(parallel.verify().is_ok(), "parallel engine fails audit");

        prop_assert_eq!(parallel.node_index(), sequential.node_index());
        prop_assert_eq!(parallel.context_index(), sequential.context_index());
        prop_assert_eq!(parallel.graph(), sequential.graph());
        prop_assert_eq!(parallel.guides(), sequential.guides());
        prop_assert_eq!(parallel.guide_links(), sequential.guide_links());
        prop_assert_eq!(parallel.dataguide_stats(), sequential.dataguide_stats());

        let query = seda_core::SedaQuery::parse("(title, *)").unwrap();
        let seq_summary = sequential.context_summary(&query);
        let par_summary = parallel.context_summary(&query);
        prop_assert_eq!(seq_summary.buckets.len(), par_summary.buckets.len());
        for (a, b) in seq_summary.buckets.iter().zip(par_summary.buckets.iter()) {
            prop_assert_eq!(&a.entries, &b.entries);
        }
    }
}
