//! Serialisation round-trips of the facade's request types.
//!
//! `Statement` and `SedaRequest` derive the workspace's `Serialize` /
//! `Deserialize` markers, but the offline serde stand-in has no data format;
//! the canonical wire form is the textual front-end, so the round-trip under
//! test is `parse ∘ render = id` — fixed cases here, property-generated
//! requests in the companion proptest module below.

use proptest::prelude::*;

use seda_core::{ContextSpec, SedaQuery, SedaRequest, Statement};
use seda_olap::AggFn;

#[test]
fn fixed_statement_round_trips() {
    let cases = [
        r#"TOPK 10 FOR (*, "united states") AND (trade_country, *) AND (percentage, *)"#,
        "TOPK 1 FOR (a|b|/c/d, x)",
        "CONTEXTS FOR (name, china OR canada)",
        "CONNECTIONS 25 FOR (name, *) AND (population, (NOT x) AND y)",
        "RESULTS FOR (percentage, *) WITH 0 IN /a/b|/c/d WITH 1 IN /e",
        "TWIG /country/economy//trade_country",
        "CUBE pct BY country AGG sum FOR (name, *)",
        "CUBE pct BY country, year AGG avg MEASURE pct FOR (name, *) WITH 0 IN /x/y",
        "EXPLAIN CUBE pct BY country AGG max FOR (name, *)",
        "EXPLAIN TOPK 3 FOR (tr*de, *)",
    ];
    for text in cases {
        let parsed = SedaRequest::parse(text).unwrap();
        let rendered = parsed.render();
        let reparsed = SedaRequest::parse(&rendered).unwrap();
        assert_eq!(reparsed, parsed, "{text:?} → {rendered:?} must round-trip");
        // Render is canonical: a second render is a fixpoint.
        assert_eq!(reparsed.render(), rendered, "render must be a fixpoint for {text:?}");
    }
}

#[test]
fn statement_accessors_expose_the_shape() {
    let req = SedaRequest::parse("CUBE f BY a, b AGG min MEASURE m FOR (x, *)").unwrap();
    match &req.statement {
        Statement::Cube { fact, group_by, agg, measure } => {
            assert_eq!(fact, "f");
            assert_eq!(group_by, &["a", "b"]);
            assert_eq!(*agg, AggFn::Min);
            assert_eq!(measure.as_deref(), Some("m"));
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(req.statement.name(), "CUBE");
}

// ---- property tests: generated requests survive parse ∘ render ----

/// Words with grammar meaning: boolean operators inside search components,
/// clause keywords at the top level of the request language.  Generated
/// identifiers avoid them — user queries containing them belong in quotes,
/// which the fixed cases cover.
const RESERVED: &[&str] = &[
    "and",
    "or",
    "not",
    "for",
    "with",
    "in",
    "by",
    "agg",
    "measure",
    "explain",
    "topk",
    "contexts",
    "connections",
    "results",
    "twig",
    "cube",
];

fn ident(pattern: &'static str) -> impl Strategy<Value = String> {
    pattern.prop_filter("reserved word", |s: &String| !RESERVED.contains(&s.as_str()))
}

fn tag_strategy() -> impl Strategy<Value = String> {
    ident("[a-z][a-z_]{0,7}")
}

fn context_strategy() -> impl Strategy<Value = ContextSpec> {
    prop_oneof![
        Just(ContextSpec::Any),
        tag_strategy().prop_map(ContextSpec::Tag),
        // Wildcard tags.
        "[a-z]{1,3}\\*[a-z]{0,3}".prop_map(ContextSpec::Tag),
        proptest::collection::vec(ident("[a-z][a-z_]{0,5}"), 1..3)
            .prop_map(|steps| ContextSpec::Path(format!("/{}", steps.join("/")))),
        // Disjunctions built through the normalising constructor, so the
        // generated value is already canonical.
        proptest::collection::vec(
            prop_oneof![
                tag_strategy().prop_map(ContextSpec::Tag),
                proptest::collection::vec(ident("[a-z]{1,5}"), 1..3)
                    .prop_map(|steps| ContextSpec::Path(format!("/{}", steps.join("/")))),
            ],
            2..4
        )
        .prop_map(ContextSpec::disjunction),
    ]
}

fn search_strategy() -> impl Strategy<Value = seda_textindex::FullTextQuery> {
    use seda_textindex::FullTextQuery;
    let leaf = prop_oneof![
        Just(FullTextQuery::Any),
        proptest::collection::vec(ident("[a-z0-9]{1,6}"), 1..4).prop_map(FullTextQuery::Keywords),
        proptest::collection::vec(ident("[a-z0-9]{1,6}"), 1..4).prop_map(FullTextQuery::Phrase),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| FullTextQuery::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| FullTextQuery::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|q| FullTextQuery::Not(Box::new(q))),
        ]
    })
}

fn query_strategy() -> impl Strategy<Value = SedaQuery> {
    proptest::collection::vec(
        (context_strategy(), search_strategy()).prop_map(|(c, s)| seda_core::QueryTerm::new(c, s)),
        1..4,
    )
    .prop_map(SedaQuery::new)
}

fn statement_strategy() -> impl Strategy<Value = Statement> {
    prop_oneof![
        (1usize..100).prop_map(|k| Statement::TopK { k }),
        Just(Statement::ContextSummary),
        (1usize..100).prop_map(|k| Statement::ConnectionSummary { k }),
        Just(Statement::CompleteResults),
        (
            ident("[a-z][a-z-]{0,8}"),
            proptest::collection::vec(ident("[a-z][a-z-]{0,6}"), 1..3),
            prop_oneof![
                Just(AggFn::Sum),
                Just(AggFn::Avg),
                Just(AggFn::Count),
                Just(AggFn::Min),
                Just(AggFn::Max)
            ],
            proptest::option::of(ident("[a-z][a-z-]{0,6}")),
        )
            .prop_map(|(fact, group_by, agg, measure)| Statement::Cube {
                fact,
                group_by,
                agg,
                measure
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every generated request survives `parse(render(request))` exactly.
    #[test]
    fn request_render_parse_fixpoint(
        statement in statement_strategy(),
        query in query_strategy(),
        explain in any::<bool>(),
        selection_paths in proptest::collection::vec(
            proptest::collection::vec("[a-z]{1,5}", 1..3), 0..3),
    ) {
        let mut builder = SedaRequest::builder().statement(statement).query(query);
        if explain {
            builder = builder.explain();
        }
        for (term, steps) in selection_paths.iter().enumerate() {
            builder = builder.select_paths(term, [format!("/{}", steps.join("/"))]);
        }
        let request = builder.build();
        let rendered = request.render();
        let reparsed = SedaRequest::parse(&rendered);
        prop_assert!(reparsed.is_ok(), "render must be parseable: {rendered:?}");
        prop_assert_eq!(reparsed.unwrap(), request, "round-trip failed for {}", rendered);
    }

    /// The textual query language itself is a fixpoint under
    /// `parse ∘ to_string`.
    #[test]
    fn query_render_parse_fixpoint(query in query_strategy()) {
        let rendered = query.to_string();
        let reparsed = SedaQuery::parse(&rendered);
        prop_assert!(reparsed.is_ok(), "render must be parseable: {rendered:?}");
        prop_assert_eq!(reparsed.unwrap(), query, "round-trip failed for {}", rendered);
    }

    /// Twig statements round-trip for arbitrary child/descendant paths.
    #[test]
    fn twig_render_parse_fixpoint(
        steps in proptest::collection::vec(("[a-z]{1,6}", any::<bool>()), 1..4)
    ) {
        let mut path = String::new();
        for (i, (label, descendant)) in steps.iter().enumerate() {
            path.push_str(if *descendant && i > 0 { "//" } else { "/" });
            path.push_str(label);
        }
        let request = SedaRequest::builder().twig(path).build();
        let reparsed = SedaRequest::parse(&request.render()).unwrap();
        prop_assert_eq!(reparsed, request);
    }
}
