//! Deterministic fault injection for robustness tests.
//!
//! The engine's panic-isolation and error-propagation boundaries are only
//! trustworthy if they are exercised, so the query pipeline declares a small
//! catalog of **named fault sites** ([`FAULT_SITES`]) at its riskiest
//! transitions.  Behind the cfg-gated `failpoints` feature, tests arm a site
//! with a `FaultAction` (panic, typed error, or delay); the next time
//! execution reaches the site the action fires exactly once (arming is
//! one-shot) and the site disarms itself.  Without the feature the hooks
//! compile to no-ops, so production builds pay nothing.
//!
//! The sites:
//!
//! * `"parse"` — in [`crate::SedaEngine::build_from_sources`], before the
//!   XML collection is parsed;
//! * `"shard-merge"` — in the sharded engine build, before the per-document
//!   substrate shards are merged;
//! * `"oracle-build"` — before the data graph (and its connectivity oracle)
//!   is built or merged;
//! * `"scratch-lock"` — while the engine's shared query scratch mutex is
//!   held (a panic here poisons the mutex, exercising poison recovery);
//! * `"mid-search"` — inside the engine's term search, before the
//!   Threshold-Algorithm loop runs.
//!
//! Sites on `Result` paths surface `FaultAction::Error` as
//! [`crate::SedaError::Internal`] directly; sites on infallible paths
//! (`"scratch-lock"`, `"mid-search"`) surface both `Error` and `Panic` as a
//! panic, which the facade's `catch_unwind` boundary converts to the same
//! typed `Internal` error — proving the isolation layer, not bypassing it.

/// The catalog of named fault sites, in pipeline order.
pub const FAULT_SITES: &[&str] =
    &["parse", "shard-merge", "oracle-build", "scratch-lock", "mid-search"];

#[cfg(feature = "failpoints")]
mod armed {
    use std::sync::{Mutex, OnceLock, PoisonError};
    use std::time::Duration;

    /// What an armed fault site does when execution reaches it.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultAction {
        /// Panic at the site, exercising the panic-isolation boundaries.
        Panic,
        /// Surface a typed `SedaError::Internal` from the site.
        Error,
        /// Sleep for the given duration before continuing (for deadline
        /// tests).
        Delay(Duration),
    }

    fn registry() -> &'static Mutex<Vec<(&'static str, FaultAction)>> {
        static REGISTRY: OnceLock<Mutex<Vec<(&'static str, FaultAction)>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Arms `site` with `action`.  One-shot: the next time execution reaches
    /// the site, the action fires and the site disarms itself.  Re-arming an
    /// already-armed site replaces its action.
    pub fn arm(site: &'static str, action: FaultAction) {
        let mut armed = registry().lock().unwrap_or_else(PoisonError::into_inner);
        armed.retain(|(s, _)| *s != site);
        armed.push((site, action));
    }

    /// Disarms every site (test teardown).
    pub fn disarm_all() {
        registry().lock().unwrap_or_else(PoisonError::into_inner).clear();
    }

    /// Consumes the arming of `site`, if any.
    pub(super) fn take(site: &str) -> Option<FaultAction> {
        let mut armed = registry().lock().unwrap_or_else(PoisonError::into_inner);
        let index = armed.iter().position(|(s, _)| *s == site)?;
        Some(armed.remove(index).1)
    }
}

#[cfg(feature = "failpoints")]
pub use armed::{arm, disarm_all, FaultAction};

/// Fires `site` on a `Result` path: an armed `Error` returns
/// [`crate::SedaError::Internal`], `Panic` panics, `Delay` sleeps.  A no-op
/// unless the `failpoints` feature is enabled and the site is armed.
pub(crate) fn fire(site: &'static str) -> Result<(), crate::SedaError> {
    #[cfg(feature = "failpoints")]
    if let Some(action) = armed::take(site) {
        match action {
            armed::FaultAction::Panic => panic!("injected fault at site {site:?}"),
            armed::FaultAction::Error => {
                return Err(crate::SedaError::Internal(format!("injected fault at site {site:?}")))
            }
            armed::FaultAction::Delay(d) => std::thread::sleep(d),
        }
    }
    let _ = site;
    Ok(())
}

/// Fires `site` on an infallible path: both armed `Panic` and `Error`
/// panic (the enclosing `catch_unwind` boundary converts the panic to
/// [`crate::SedaError::Internal`]), `Delay` sleeps.  A no-op unless the
/// `failpoints` feature is enabled and the site is armed.
pub(crate) fn fire_unchecked(site: &'static str) {
    #[cfg(feature = "failpoints")]
    if let Some(action) = armed::take(site) {
        match action {
            armed::FaultAction::Panic | armed::FaultAction::Error => {
                panic!("injected fault at site {site:?}")
            }
            armed::FaultAction::Delay(d) => std::thread::sleep(d),
        }
    }
    let _ = site;
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    // The fault registry is process-global, so these tests touch only a
    // site name outside FAULT_SITES to avoid crosstalk with integration
    // suites (which run in their own processes anyway).
    #[test]
    fn arming_is_one_shot_and_rearming_replaces() {
        static SITE: &str = "unit-test-site";
        assert!(fire(SITE).is_ok(), "unarmed site is a no-op");
        arm(SITE, FaultAction::Error);
        arm(SITE, FaultAction::Delay(std::time::Duration::ZERO));
        assert!(fire(SITE).is_ok(), "re-arming replaced the error with a delay");
        assert!(fire(SITE).is_ok(), "arming is consumed by the first fire");
        arm(SITE, FaultAction::Error);
        assert!(matches!(fire(SITE), Err(crate::SedaError::Internal(_))));
        arm(SITE, FaultAction::Error);
        disarm_all();
        assert!(fire(SITE).is_ok());
    }
}
