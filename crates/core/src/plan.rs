//! Query planning: [`SedaRequest`] → [`QueryPlan`].
//!
//! Planning is a three-stage compile.  The **lowering** stage validates a
//! request against an engine (term indices exist, path strings resolve, twig
//! paths compile, limits hold), resolves every context selection down to
//! [`PathId`]s and [`TermInput`]s, and records the execution steps — the
//! typed logical plan.  [`SedaEngine::prepare`] then runs the registered
//! **rewrite passes** of [`crate::optimize`] over it and **compiles** the
//! optimized plan into the [`PlanProgram`] instruction stream the reader's
//! interpreter executes.  [`QueryPlan::explain`] renders the transcript —
//! steps, pass-by-pass rewrite trail and program listing.

use seda_dataguide::Connection;
use seda_olap::BuildOptions;
use seda_topk::{SearchStrategy, TermInput, TopKConfig};
use seda_twigjoin::TwigPattern;
use seda_xmlstore::PathId;

use crate::engine::SedaEngine;
use crate::error::SedaError;
use crate::optimize::{self, PlanProgram};
use crate::query::SedaQuery;
use crate::request::{SedaRequest, Statement};
use crate::summaries::ContextSelections;

/// One step of a [`QueryPlan`], in execution order.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// Resolve the allowed contexts of one query term.
    ResolveContexts {
        /// Term index.
        term: usize,
        /// Canonical label of the term.
        label: String,
        /// Number of allowed paths, or `None` when the term is unrestricted.
        paths: Option<usize>,
    },
    /// Sorted access over the per-term posting lists, feeding the
    /// Threshold-Algorithm rank join.
    ThresholdJoin {
        /// Number of result tuples requested.
        k: usize,
        /// Candidate-tuple bound of the join loop.
        candidate_limit: usize,
    },
    /// Degenerate one-term search rewritten by the optimizer's
    /// single-keyword pass: a direct scan of the sorted posting prefix.
    SingleTermScan {
        /// Number of result tuples requested.
        k: usize,
    },
    /// Build the per-term context buckets from the keyword→path index.
    ContextBuckets {
        /// Number of query terms.
        terms: usize,
    },
    /// Discover pairwise connections between the nodes of the top-k result.
    DiscoverConnections {
        /// Connection-path depth bound.
        max_depth: usize,
    },
    /// Enumerate one concrete context combination per term.
    EnumerateCombinations {
        /// Total number of combinations.
        combinations: usize,
    },
    /// Evaluate same-root combinations as one merged twig pattern.
    TwigEvaluate {
        /// Number of pattern nodes (0 when built per combination).
        pattern_nodes: usize,
        /// Number of output nodes.
        outputs: usize,
    },
    /// Join cross-root combinations through data-graph connectivity.
    GraphJoin {
        /// Connection-path depth bound.
        max_depth: usize,
        /// Row bound of the enumeration.
        limit: usize,
    },
    /// Derive (and instantiate) the star schema from the complete result.
    DeriveStarSchema,
    /// Aggregate one fact table of the derived schema.
    Aggregate {
        /// Fact table name.
        fact: String,
        /// Group-by columns.
        group_by: Vec<String>,
        /// Aggregation function name.
        agg: String,
        /// Measure column.
        measure: String,
    },
}

impl std::fmt::Display for PlanStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanStep::ResolveContexts { term, label, paths } => match paths {
                Some(n) => write!(f, "resolve contexts of term {term} {label}: {n} path(s)"),
                None => write!(f, "resolve contexts of term {term} {label}: unrestricted"),
            },
            PlanStep::ThresholdJoin { k, candidate_limit } => {
                write!(f, "threshold-algorithm rank join: k={k}, candidate limit {candidate_limit}")
            }
            PlanStep::SingleTermScan { k } => {
                write!(f, "single-term sorted-prefix scan: k={k}")
            }
            PlanStep::ContextBuckets { terms } => {
                write!(f, "context buckets from the keyword→path index for {terms} term(s)")
            }
            PlanStep::DiscoverConnections { max_depth } => {
                write!(f, "discover pairwise connections (oracle depth ≤ {max_depth})")
            }
            PlanStep::EnumerateCombinations { combinations } => {
                write!(f, "enumerate {combinations} context combination(s)")
            }
            PlanStep::TwigEvaluate { pattern_nodes, outputs } => {
                if *pattern_nodes == 0 {
                    write!(f, "evaluate same-root combinations as merged twig patterns")
                } else {
                    write!(f, "evaluate twig pattern: {pattern_nodes} node(s), {outputs} output(s)")
                }
            }
            PlanStep::GraphJoin { max_depth, limit } => write!(
                f,
                "join cross-root combinations via graph connectivity \
                 (depth ≤ {max_depth}, ≤ {limit} rows)"
            ),
            PlanStep::DeriveStarSchema => write!(f, "derive and instantiate the star schema"),
            PlanStep::Aggregate { fact, group_by, agg, measure } => write!(
                f,
                "aggregate fact {fact:?}: {agg}({measure}) grouped by [{}]",
                group_by.join(", ")
            ),
        }
    }
}

/// A validated, fully resolved and optimized execution plan for one
/// [`SedaRequest`]: the typed logical plan the lowering produced (statement,
/// resolved term inputs, step list, search configuration), the rewrite trail
/// the optimizer's passes left behind, and the compiled [`PlanProgram`] the
/// reader interprets.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct QueryPlan {
    pub(crate) statement: Statement,
    pub(crate) query: Option<SedaQuery>,
    /// All selections (programmatic ids plus resolved path strings), merged.
    pub(crate) selections: ContextSelections,
    /// Resolved per-term search inputs (empty for statements without a
    /// search phase).
    pub(crate) term_inputs: Vec<TermInput>,
    pub(crate) connections: Vec<Connection>,
    /// Compiled twig pattern of a [`Statement::Twig`] request.
    pub(crate) pattern: Option<TwigPattern>,
    pub(crate) cube_options: BuildOptions,
    pub(crate) steps: Vec<PlanStep>,
    /// Per-plan search configuration; rewrite passes tune it (k is folded in
    /// at lowering, the component-prune pass may clear `prune_components`).
    pub(crate) topk: TopKConfig,
    /// Search strategy the single-keyword pass may rewrite.
    pub(crate) strategy: SearchStrategy,
    /// Per-term `(restricted, total)` postings estimates the pushdown pass
    /// computes and the cost model consumes.
    pub(crate) term_estimates: Vec<(usize, usize)>,
    /// Pass-by-pass rewrite trail, one line per registered pass.
    pub(crate) trail: Vec<String>,
    /// The compiled instruction stream.
    pub(crate) program: PlanProgram,
}

impl QueryPlan {
    /// The statement this plan executes.
    pub fn statement(&self) -> &Statement {
        &self.statement
    }

    /// The execution steps, in order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// The compiled instruction stream the reader's interpreter executes.
    pub fn program(&self) -> &PlanProgram {
        &self.program
    }

    /// The pass-by-pass rewrite trail: one `"<pass>: <what changed>"` line
    /// per registered optimizer pass (`"<pass>: unchanged"` when a pass did
    /// not apply).
    pub fn rewrite_trail(&self) -> &[String] {
        &self.trail
    }

    /// The search configuration this plan executes with, after optimization.
    pub fn search_config(&self) -> &TopKConfig {
        &self.topk
    }

    /// Renders the plan transcript: the statement header, the numbered
    /// execution steps, the optimizer's rewrite trail and the compiled
    /// program listing.
    pub fn explain(&self) -> String {
        let mut out = format!("plan: {}", self.statement.name());
        match &self.query {
            Some(query) => out.push_str(&format!(" over {} term(s): {query}\n", query.len())),
            None => out.push('\n'),
        }
        for (i, step) in self.steps.iter().enumerate() {
            out.push_str(&format!("  {}. {step}\n", i + 1));
        }
        if !self.trail.is_empty() {
            out.push_str("  rewrites:\n");
            for line in &self.trail {
                out.push_str(&format!("    - {line}\n"));
            }
        }
        if !self.program.is_empty() {
            out.push_str("  program:\n");
            out.push_str(&self.program.render());
        }
        out
    }
}

impl SedaEngine {
    /// Resolves a `/a/b/c` path string against the collection.
    pub fn resolve_path(&self, path: &str) -> Result<PathId, SedaError> {
        self.collection()
            .paths()
            .get_str(self.collection().symbols(), path)
            .ok_or_else(|| SedaError::UnknownPath(path.to_string()))
    }

    /// Compiles, validates and optimizes a request into a [`QueryPlan`]:
    /// lowering (validation + context resolution), the registered rewrite
    /// passes of [`crate::optimize`], and compilation into the
    /// [`PlanProgram`] the reader interprets.
    ///
    /// This is the one canonical compile path; [`SedaEngine::plan`] and
    /// [`crate::SedaReader::plan`] are thin deprecated shims over it, and
    /// [`crate::SedaReader::prepare`] wraps its output into a reusable
    /// [`crate::PreparedStatement`].
    ///
    /// Preparing is read-only and touches no scratch state, so it is safe
    /// from any thread.  Errors cover the whole [`SedaError`] taxonomy:
    /// missing query terms, out-of-range term selections, unresolvable
    /// paths, uncompilable twig expressions, and combination counts beyond
    /// the configured limits.
    pub fn prepare(&self, request: &SedaRequest) -> Result<QueryPlan, SedaError> {
        let mut plan = self.lower(request)?;
        plan.trail = optimize::run_passes(&mut plan, self);
        plan.program = optimize::compile(&plan);
        Ok(plan)
    }

    /// Deprecated alias of [`SedaEngine::prepare`], the canonical compile
    /// path.
    #[deprecated(since = "0.1.0", note = "use SedaEngine::prepare")]
    pub fn plan(&self, request: &SedaRequest) -> Result<QueryPlan, SedaError> {
        self.prepare(request)
    }

    /// The lowering stage: validates the request and produces the typed
    /// logical plan (resolved inputs + step list) that the rewrite passes
    /// transform.
    fn lower(&self, request: &SedaRequest) -> Result<QueryPlan, SedaError> {
        let mut steps = Vec::new();
        let statement = request.statement.clone();

        // Twig statements stand alone: no query terms, no selections.
        if let Statement::Twig { path } = &statement {
            let pattern = TwigPattern::parse(path)?;
            // Every step label must exist in the collection's symbol table —
            // a label no document uses cannot match, so a typo anywhere in
            // the path surfaces as UnknownPath naming the offending step
            // rather than as a silently empty result.
            if !self.collection().is_empty() {
                for idx in pattern.node_indices() {
                    let label = &pattern.node(idx).label;
                    if self.collection().symbols().get(label).is_none() {
                        return Err(SedaError::UnknownPath(format!(
                            "{path} (unknown tag {label:?})"
                        )));
                    }
                }
            }
            steps.push(PlanStep::TwigEvaluate {
                pattern_nodes: pattern.len(),
                outputs: pattern.output_nodes().len(),
            });
            return Ok(QueryPlan {
                statement,
                query: None,
                selections: ContextSelections::none(),
                term_inputs: Vec::new(),
                connections: Vec::new(),
                pattern: Some(pattern),
                cube_options: request.cube_options.clone(),
                steps,
                topk: self.config().topk.clone(),
                strategy: SearchStrategy::default(),
                term_estimates: Vec::new(),
                trail: Vec::new(),
                program: PlanProgram::default(),
            });
        }

        let query =
            request.query.clone().ok_or(SedaError::MissingQuery { statement: statement.name() })?;
        if query.is_empty() {
            return Err(SedaError::MissingQuery { statement: statement.name() });
        }

        // Merge programmatic selections with resolved path-string selections
        // (strings win for a term both specify, matching builder order).
        let mut selections = ContextSelections::none();
        for (term, paths) in request.selections.iter() {
            if term >= query.len() {
                return Err(SedaError::UnknownTerm { term, terms: query.len() });
            }
            selections.select(term, paths.to_vec());
        }
        for (term, paths) in &request.path_selections {
            if *term >= query.len() {
                return Err(SedaError::UnknownTerm { term: *term, terms: query.len() });
            }
            let resolved: Vec<PathId> =
                paths.iter().map(|p| self.resolve_path(p)).collect::<Result<_, _>>()?;
            selections.select(*term, resolved);
        }

        let config = self.config();
        let needs_search =
            matches!(statement, Statement::TopK { .. } | Statement::ConnectionSummary { .. });

        // Per-term contexts are resolved exactly once per plan: as search
        // inputs for the top-k statements, as candidate path sets for the
        // complete-result statements, and not at all for CONTEXTS (the
        // bucket computation does its own index probes).
        let term_inputs = if needs_search {
            let inputs = self.term_inputs(&query, &selections);
            for (i, (term, input)) in query.terms.iter().zip(inputs.iter()).enumerate() {
                steps.push(PlanStep::ResolveContexts {
                    term: i,
                    label: term.label(),
                    paths: input.allowed_paths.as_ref().map(Vec::len),
                });
            }
            inputs
        } else {
            Vec::new()
        };

        match &statement {
            Statement::TopK { k } => {
                steps.push(PlanStep::ThresholdJoin {
                    k: *k,
                    candidate_limit: config.topk.candidate_limit,
                });
            }
            Statement::ContextSummary => {
                steps.push(PlanStep::ContextBuckets { terms: query.len() });
            }
            Statement::ConnectionSummary { k } => {
                steps.push(PlanStep::ThresholdJoin {
                    k: *k,
                    candidate_limit: config.topk.candidate_limit,
                });
                steps
                    .push(PlanStep::DiscoverConnections { max_depth: config.connection_max_depth });
            }
            Statement::CompleteResults | Statement::Cube { .. } => {
                let term_paths = self.term_paths(&query, &selections);
                for (i, (term, paths)) in query.terms.iter().zip(term_paths.iter()).enumerate() {
                    steps.push(PlanStep::ResolveContexts {
                        term: i,
                        label: term.label(),
                        paths: Some(paths.len()),
                    });
                }
                let combinations = self.context_combinations_of(&term_paths)?;
                steps.push(PlanStep::EnumerateCombinations { combinations });
                steps.push(PlanStep::TwigEvaluate { pattern_nodes: 0, outputs: 0 });
                steps.push(PlanStep::GraphJoin {
                    max_depth: config.connection_max_depth,
                    limit: config.complete_result_limit,
                });
                if let Statement::Cube { fact, group_by, agg, measure } = &statement {
                    steps.push(PlanStep::DeriveStarSchema);
                    steps.push(PlanStep::Aggregate {
                        fact: fact.clone(),
                        group_by: group_by.clone(),
                        agg: crate::request::agg_name(*agg).to_string(),
                        measure: measure.clone().unwrap_or_else(|| fact.clone()),
                    });
                }
            }
            Statement::Twig { .. } => {
                return Err(SedaError::Internal("twig statements are planned above".to_string()))
            }
        }

        let mut topk = config.topk.clone();
        if let Statement::TopK { k } | Statement::ConnectionSummary { k } = &statement {
            topk.k = *k;
        }
        Ok(QueryPlan {
            statement,
            query: Some(query),
            selections,
            term_inputs,
            connections: request.connections.clone(),
            pattern: None,
            cube_options: request.cube_options.clone(),
            steps,
            topk,
            strategy: SearchStrategy::default(),
            term_estimates: Vec::new(),
            trail: Vec::new(),
            program: PlanProgram::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use seda_olap::Registry;
    use seda_xmlstore::parse_collection;

    fn engine() -> SedaEngine {
        let collection = parse_collection(vec![(
            "us.xml",
            r#"<country><name>United States</name><year>2006</year>
                 <economy><import_partners>
                   <item><trade_country>China</trade_country><percentage>15</percentage></item>
                 </import_partners></economy></country>"#,
        )])
        .unwrap();
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())
            .unwrap()
    }

    #[test]
    fn plans_resolve_contexts_and_explain() {
        let e = engine();
        let req =
            SedaRequest::parse("TOPK 5 FOR (name, *) AND (percentage, *) WITH 0 IN /country/name")
                .unwrap();
        let plan = e.prepare(&req).unwrap();
        assert_eq!(plan.term_inputs.len(), 2);
        assert_eq!(plan.term_inputs[0].allowed_paths.as_ref().map(Vec::len), Some(1));
        let transcript = plan.explain();
        assert!(transcript.contains("plan: TOPK"), "{transcript}");
        assert!(transcript.contains("1. resolve contexts of term 0"), "{transcript}");
        assert!(transcript.contains("threshold-algorithm rank join: k=5"), "{transcript}");
    }

    #[test]
    fn planning_validates_terms_paths_and_twigs() {
        let e = engine();
        let req = SedaRequest::parse("TOPK FOR (name, *) WITH 7 IN /country/name").unwrap();
        assert_eq!(e.prepare(&req).unwrap_err(), SedaError::UnknownTerm { term: 7, terms: 1 });

        let req = SedaRequest::parse("TOPK FOR (name, *) WITH 0 IN /no/such/path").unwrap();
        assert_eq!(e.prepare(&req).unwrap_err(), SedaError::UnknownPath("/no/such/path".into()));

        let req = SedaRequest::builder().contexts().build();
        assert_eq!(e.prepare(&req).unwrap_err(), SedaError::MissingQuery { statement: "CONTEXTS" });

        let req = SedaRequest::parse("TWIG /nowhere/name").unwrap();
        let err = e.prepare(&req).unwrap_err();
        assert!(
            matches!(&err, SedaError::UnknownPath(p) if p.contains("unknown tag \"nowhere\"")),
            "{err}"
        );
        // Unknown labels deeper in the path are caught too, naming the step.
        let req = SedaRequest::parse("TWIG /country/nonexistent_tag").unwrap();
        let err = e.prepare(&req).unwrap_err();
        assert!(
            matches!(&err, SedaError::UnknownPath(p) if p.contains("nonexistent_tag")),
            "{err}"
        );

        let req = SedaRequest::builder().twig("not-a-path").build();
        assert!(matches!(e.prepare(&req).unwrap_err(), SedaError::Twig(_)));
    }

    #[test]
    fn cube_plans_extend_the_complete_result_pipeline() {
        let e = engine();
        let req = SedaRequest::parse(
            "CUBE import-trade-percentage BY import-country FOR \
             (*, \"United States\") AND (trade_country, *) AND (percentage, *)",
        )
        .unwrap();
        let plan = e.prepare(&req).unwrap();
        let transcript = plan.explain();
        assert!(transcript.contains("enumerate"), "{transcript}");
        assert!(transcript.contains("derive and instantiate the star schema"), "{transcript}");
        assert!(
            transcript.contains("sum(import-trade-percentage) grouped by [import-country]"),
            "{transcript}"
        );
    }
}
