//! Scoped worker-pool primitives for the shard-parallel engine build.
//!
//! The build environment has no crates.io access, so instead of `rayon` this
//! module implements the one primitive the orchestrator needs — an
//! order-preserving parallel map over a slice — on `std::thread::scope` with
//! an atomic work counter.  Swapping in `rayon::par_iter` later only changes
//! this file.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for a configured parallelism value:
/// `0` resolves to the machine's available parallelism, anything else is
/// taken literally.
pub fn effective_parallelism(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        configured
    }
}

/// Applies `f` to every item of `items` using up to `threads` worker threads
/// and returns the results in item order.
///
/// Work is handed out through an atomic counter, so long and short items mix
/// freely without a static partition; the output order never depends on
/// scheduling.  With `threads <= 1` (or one item) the map runs inline.
pub fn parallel_map<T, S, F>(items: &[T], threads: usize, f: F) -> Vec<S>
where
    T: Sync,
    S: Send,
    F: Fn(&T) -> S + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<S>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, S)> = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            break;
                        }
                        local.push((index, f(&items[index])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (index, value) in handle.join().expect("shard worker panicked") {
                slots[index] = Some(value);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every shard produced")).collect()
}

/// Like [`parallel_map`], but every worker thread first creates its own
/// state via `init` and threads it through all items it processes.
///
/// This is the primitive behind [`crate::SedaEngine::execute_batch`]: `init`
/// builds one [`crate::SedaReader`] per worker, so concurrent requests reuse
/// per-thread scratch buffers without any shared locking.  With
/// `threads <= 1` (or one item) the map runs inline over a single state.
pub fn parallel_map_with<T, S, C, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<S>
where
    T: Sync,
    S: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, &T) -> S + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<S>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local: Vec<(usize, S)> = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            break;
                        }
                        local.push((index, f(&mut state, &items[index])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (index, value) in handle.join().expect("batch worker panicked") {
                slots[index] = Some(value);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("every item produced")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        assert!(parallel_map(&items, 4, |&x| x).is_empty());
    }

    #[test]
    fn effective_parallelism_resolves_auto() {
        assert!(effective_parallelism(0) >= 1);
        assert_eq!(effective_parallelism(3), 3);
    }

    #[test]
    fn map_with_threads_per_worker_state() {
        let items: Vec<usize> = (0..100).collect();
        // Each worker counts how many items it processed through its own
        // state; results must still be in item order.
        let out = parallel_map_with(
            &items,
            4,
            || 0usize,
            |seen, &x| {
                *seen += 1;
                (x * 2, *seen)
            },
        );
        let values: Vec<usize> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert!(out.iter().all(|&(_, seen)| seen >= 1));
    }

    #[test]
    fn map_with_runs_inline_on_one_thread() {
        let items = vec![1, 2, 3];
        let out = parallel_map_with(
            &items,
            1,
            || 10,
            |acc, &x| {
                *acc += x;
                *acc
            },
        );
        assert_eq!(out, vec![11, 13, 16], "one state threads through all items in order");
    }
}
