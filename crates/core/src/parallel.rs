//! Scoped worker-pool primitives for the shard-parallel engine build.
//!
//! The build environment has no crates.io access, so instead of `rayon` this
//! module implements the one primitive the orchestrator needs — an
//! order-preserving parallel map over a slice — on `std::thread::scope` with
//! an atomic work counter.  Swapping in `rayon::par_iter` later only changes
//! this file.
//!
//! Both maps **contain panics**: a panicking closure never unwinds through
//! the pool or kills the process.  [`parallel_map`] (the engine-build
//! primitive, where a failed shard fails the whole build) reports the first
//! panic as a [`WorkerPanic`] error; [`parallel_map_with`] (the
//! batch-execute primitive, where requests are independent) isolates each
//! item, reporting per-item `Result`s and rebuilding the worker's state via
//! `init` after a panic so one poisoned request cannot corrupt its
//! neighbours' scratch.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A contained panic from a worker closure: which item's closure panicked
/// and the panic payload rendered as text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the item whose closure panicked.
    pub index: usize,
    /// The panic payload (`&str` / `String` payloads verbatim, a placeholder
    /// otherwise).
    pub message: String,
}

/// Renders a `catch_unwind` payload as text.
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Number of worker threads to use for a configured parallelism value:
/// `0` resolves to the machine's available parallelism, anything else is
/// taken literally.
pub fn effective_parallelism(configured: usize) -> usize {
    if configured == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        configured
    }
}

/// Applies `f` to every item of `items` using up to `threads` worker threads
/// and returns the results in item order.
///
/// Work is handed out through an atomic counter, so long and short items mix
/// freely without a static partition; the output order never depends on
/// scheduling.  With `threads <= 1` (or one item) the map runs inline.
///
/// A panicking closure is caught inside its worker and reported as the
/// lowest-indexed [`WorkerPanic`] observed; remaining workers stop handing
/// out work and the process survives.
pub fn parallel_map<T, S, F>(items: &[T], threads: usize, f: F) -> Result<Vec<S>, WorkerPanic>
where
    T: Sync,
    S: Send,
    F: Fn(&T) -> S + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| {
                catch_unwind(AssertUnwindSafe(|| f(item)))
                    .map_err(|payload| WorkerPanic { index, message: panic_message(payload) })
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<S>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    let mut first_panic: Option<WorkerPanic> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, S)> = Vec::new();
                    let mut failure: Option<WorkerPanic> = None;
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&items[index]))) {
                            Ok(value) => local.push((index, value)),
                            Err(payload) => {
                                // Park the counter at the end so every worker
                                // drains instead of mapping doomed items.
                                next.fetch_max(items.len(), Ordering::Relaxed);
                                failure =
                                    Some(WorkerPanic { index, message: panic_message(payload) });
                                break;
                            }
                        }
                    }
                    (local, failure)
                })
            })
            .collect();
        for handle in handles {
            // Workers catch panics themselves, so join only fails on a bug in
            // this module; propagating that panic is the right response.
            #[allow(clippy::expect_used)]
            let (local, failure) = handle
                .join()
                .expect("invariant: workers catch panics as values, the thread never unwinds");
            for (index, value) in local {
                slots[index] = Some(value);
            }
            if let Some(panic) = failure {
                match &first_panic {
                    Some(existing) if existing.index <= panic.index => {}
                    _ => first_panic = Some(panic),
                }
            }
        }
    });
    if let Some(panic) = first_panic {
        return Err(panic);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("invariant: every slot is produced once no worker panicked"))
        .collect())
}

/// Like [`parallel_map`], but every worker thread first creates its own
/// state via `init` and threads it through all items it processes.
///
/// This is the primitive behind [`crate::SedaEngine::execute_batch`]: `init`
/// builds one [`crate::SedaReader`] per worker, so concurrent requests reuse
/// per-thread scratch buffers without any shared locking.  With
/// `threads <= 1` (or one item) the map runs inline over a single state.
///
/// Items are isolated from each other's failures: a panicking closure yields
/// `Err(WorkerPanic)` **for that item only**, the worker discards its
/// (possibly corrupted) state and re-`init`s before the next item, and every
/// other item completes normally.
pub fn parallel_map_with<T, S, C, I, F>(
    items: &[T],
    threads: usize,
    init: I,
    f: F,
) -> Vec<Result<S, WorkerPanic>>
where
    T: Sync,
    S: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, &T) -> S + Sync,
{
    let run_one = |state: &mut Option<C>, index: usize, item: &T| -> Result<S, WorkerPanic> {
        if state.is_none() {
            match catch_unwind(AssertUnwindSafe(&init)) {
                Ok(fresh) => *state = Some(fresh),
                Err(payload) => return Err(WorkerPanic { index, message: panic_message(payload) }),
            }
        }
        let Some(current) = state.as_mut() else {
            return Err(WorkerPanic { index, message: "worker state unavailable".to_string() });
        };
        match catch_unwind(AssertUnwindSafe(|| f(current, item))) {
            Ok(value) => Ok(value),
            Err(payload) => {
                // The closure may have left the state half-updated; drop it
                // and re-init for the next item.
                *state = None;
                Err(WorkerPanic { index, message: panic_message(payload) })
            }
        }
    };

    let threads = threads.min(items.len());
    if threads <= 1 {
        let mut state: Option<C> = None;
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| run_one(&mut state, index, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<S, WorkerPanic>>> =
        std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state: Option<C> = None;
                    let mut local: Vec<(usize, Result<S, WorkerPanic>)> = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            break;
                        }
                        local.push((index, run_one(&mut state, index, &items[index])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // Workers catch panics per item, so join only fails on a bug in
            // this module; propagating that panic is the right response.
            #[allow(clippy::expect_used)]
            for (index, value) in handle
                .join()
                .expect("invariant: workers catch panics as values, the thread never unwinds")
            {
                slots[index] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("invariant: the atomic counter hands out every index exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unwrap_all<S>(results: Vec<Result<S, WorkerPanic>>) -> Vec<S> {
        results.into_iter().map(|r| r.expect("no panic expected")).collect()
    }

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2).unwrap();
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let items = vec![1, 2, 3];
        assert_eq!(parallel_map(&items, 1, |&x| x + 1).unwrap(), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        assert!(parallel_map(&items, 4, |&x| x).unwrap().is_empty());
    }

    #[test]
    fn effective_parallelism_resolves_auto() {
        assert!(effective_parallelism(0) >= 1);
        assert_eq!(effective_parallelism(3), 3);
    }

    #[test]
    fn panicking_item_is_contained_and_reported() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1usize, 4] {
            let err = parallel_map(&items, threads, |&x| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                x
            })
            .unwrap_err();
            assert_eq!(err.index, 7, "threads={threads}");
            assert!(err.message.contains("boom"), "threads={threads}: {}", err.message);
        }
    }

    #[test]
    fn map_with_threads_per_worker_state() {
        let items: Vec<usize> = (0..100).collect();
        // Each worker counts how many items it processed through its own
        // state; results must still be in item order.
        let out = unwrap_all(parallel_map_with(
            &items,
            4,
            || 0usize,
            |seen, &x| {
                *seen += 1;
                (x * 2, *seen)
            },
        ));
        let values: Vec<usize> = out.iter().map(|(v, _)| *v).collect();
        assert_eq!(values, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        assert!(out.iter().all(|&(_, seen)| seen >= 1));
    }

    #[test]
    fn map_with_runs_inline_on_one_thread() {
        let items = vec![1, 2, 3];
        let out = unwrap_all(parallel_map_with(
            &items,
            1,
            || 10,
            |acc, &x| {
                *acc += x;
                *acc
            },
        ));
        assert_eq!(out, vec![11, 13, 16], "one state threads through all items in order");
    }

    #[test]
    fn map_with_isolates_panics_and_reinits_worker_state() {
        let items: Vec<usize> = (0..8).collect();
        for threads in [1usize, 3] {
            let out = parallel_map_with(
                &items,
                threads,
                || 0usize,
                |seen, &x| {
                    *seen += 1;
                    if x == 3 {
                        panic!("item 3 is poison");
                    }
                    (x, *seen)
                },
            );
            for (i, result) in out.iter().enumerate() {
                if i == 3 {
                    let err = result.as_ref().unwrap_err();
                    assert_eq!(err.index, 3);
                    assert!(err.message.contains("poison"));
                } else {
                    let &(x, _) = result.as_ref().expect("other items must succeed");
                    assert_eq!(x, i);
                }
            }
            // The worker that hit the panic rebuilt its state: on the inline
            // path, the item after the poison starts a fresh count.
            if threads == 1 {
                let (_, seen_after) = *out[4].as_ref().unwrap();
                assert_eq!(seen_after, 1, "state is re-initialised after a panic");
            }
        }
    }
}
