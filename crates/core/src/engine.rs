//! The SEDA execution engine (Fig. 4): top-k search unit, context summary
//! generator, connection summary generator, complete result set generator and
//! data cube processor, built over the storage and indexing substrates.
//!
//! # Build lifecycle
//!
//! Every index substrate follows a **shard → merge** lifecycle: a per-document
//! shard phase that parallelises freely (documents share the collection's
//! intern tables, so shards carry globally valid ids) and a merge phase that
//! combines shards deterministically in document order.  [`SedaEngine::build`]
//! orchestrates the fan-out across a scoped worker pool, gated by
//! [`EngineConfig::parallelism`], and records a [`BuildProfile`] with
//! per-substrate shard and merge wall times.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, TryLockError};

use serde::{Deserialize, Serialize};

use seda_datagraph::{is_connected_with, shortest_path_with, DataGraph, GraphConfig};
use seda_dataguide::{
    discover_connections, guide_links, Connection, DataGuideSet, DataGuideStats, GuideLink,
};
use seda_olap::{BuildOptions, QueryResultTable, Registry, StarSchemaBuild, StarSchemaBuilder};
use seda_textindex::{ContextIndex, CountStorage, FullTextQuery, NodeIndex};
use seda_topk::{LimitBreach, MaterializedTerms, SearchLimits, SearchScratch, SearchStrategy};
use seda_topk::{TermInput, TopKConfig, TopKResult, TopKSearcher, TupleScoreCache};
use seda_twigjoin::{evaluate_twig, Axis, TwigPattern};
use seda_xmlstore::{parse_collection, Collection, DocId, NodeId, PathId};

use crate::error::SedaError;
use crate::faults;
use crate::govern::{RequestContext, Stopwatch};
use crate::metrics::{names, MetricsRegistry};
use crate::parallel::{effective_parallelism, panic_message, parallel_map, WorkerPanic};
use crate::query::{ContextSpec, SedaQuery};
use crate::summaries::{ConnectionSummary, ContextBucket, ContextSelections, ContextSummary};
use crate::trace::{span, SpanRecord, Tracer};

/// Lifts a contained build-worker panic into the unified error taxonomy.
impl From<WorkerPanic> for SedaError {
    fn from(p: WorkerPanic) -> Self {
        SedaError::Internal(format!("build worker panicked on document {}: {}", p.index, p.message))
    }
}

/// Runs `f` inside a panic-containment boundary: a panic anywhere below
/// becomes [`SedaError::Internal`] instead of unwinding into the caller.
pub(crate) fn catch_internal<T>(f: impl FnOnce() -> Result<T, SedaError>) -> Result<T, SedaError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(SedaError::Internal(panic_message(payload))),
    }
}

/// Configuration of the engine's indexes and algorithms.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Dataguide merge threshold (the paper uses 40%).
    pub dataguide_threshold: f64,
    /// Top-k search configuration.
    pub topk: TopKConfig,
    /// Data-graph construction configuration (ID/IDREF conventions,
    /// value-based key specs).
    pub graph: GraphConfig,
    /// Count storage of the context index (Fig. 8 design choice).
    pub count_storage: CountStorage,
    /// Maximum number of hops considered when verifying connections in the
    /// complete-result generator.
    pub connection_max_depth: usize,
    /// Upper bound on the number of complete-result tuples materialised by
    /// the fallback graph-enumeration path.
    pub complete_result_limit: usize,
    /// Worker threads for the shard-parallel engine build: `1` (the default)
    /// builds every substrate sequentially, `0` uses the machine's available
    /// parallelism, any other value is taken literally.  The build output is
    /// identical for every setting.
    pub parallelism: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            dataguide_threshold: 0.4,
            topk: TopKConfig::default(),
            graph: GraphConfig::default(),
            count_storage: CountStorage::DocumentStore,
            connection_max_depth: 12,
            complete_result_limit: 500_000,
            parallelism: 1,
        }
    }
}

/// Wall time of one substrate's build, split into its two lifecycle phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Seconds spent building per-document shards (the parallel phase).
    pub shard_secs: f64,
    /// Seconds spent merging shards (the sequential phase).  Zero when the
    /// substrate ran through its sequential entry point, which folds the
    /// merge into the same timed pass.
    pub merge_secs: f64,
}

impl PhaseProfile {
    fn finish_shards(start: Stopwatch) -> (Self, Stopwatch) {
        let (shard_secs, merge_start) = start.split();
        (PhaseProfile { shard_secs, merge_secs: 0.0 }, merge_start)
    }

    fn finish_merge(&mut self, merge_start: Stopwatch) {
        self.merge_secs = merge_start.elapsed_secs();
    }

    /// Total seconds spent on this substrate.
    pub fn total_secs(&self) -> f64 {
        self.shard_secs + self.merge_secs
    }
}

/// Timings and shape of one [`SedaEngine::build`] run, surfaced through
/// `seda-bench` so sequential-vs-parallel speedups are measured rather than
/// asserted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BuildProfile {
    /// Worker threads actually used (after resolving `parallelism == 0` and
    /// clamping to the document count).
    pub parallelism: usize,
    /// Documents in the collection.
    pub documents: usize,
    /// Shards fanned out per substrate: one per document on the parallel
    /// path.  `1` means the sequential entry points ran on the build thread
    /// (internally they still shard per document and merge in order — the
    /// two paths share one implementation), so all time lands in
    /// `shard_secs`.
    pub shards: usize,
    /// Node full-text index build.
    pub node_index: PhaseProfile,
    /// Keyword → context index build.
    pub context_index: PhaseProfile,
    /// Data-graph construction and resolution.
    pub graph: PhaseProfile,
    /// Dataguide computation and threshold merge.
    pub guides: PhaseProfile,
    /// Inter-dataguide link derivation (always sequential).
    pub links_secs: f64,
    /// Bytes held by the precomputed connectivity-oracle labels (see
    /// [`seda_datagraph::ConnectivityIndex::label_bytes`]).
    pub label_bytes: usize,
    /// Milliseconds spent on the post-build structural audit
    /// ([`SedaEngine::verify`]) that every build runs before handing the
    /// engine to the caller.
    pub verify_ms: f64,
    /// End-to-end engine build wall time (includes the post-build audit).
    pub total_secs: f64,
    /// Hierarchical span breakdown of the build (per-substrate shard/merge
    /// phases, link derivation, audit verify), recorded by the build-path
    /// [`crate::Tracer`].
    pub spans: Vec<SpanRecord>,
}

impl BuildProfile {
    /// Seconds spent across all shard phases.
    pub fn shard_secs(&self) -> f64 {
        self.node_index.shard_secs
            + self.context_index.shard_secs
            + self.graph.shard_secs
            + self.guides.shard_secs
    }

    /// Seconds spent across all merge phases.
    pub fn merge_secs(&self) -> f64 {
        self.node_index.merge_secs
            + self.context_index.merge_secs
            + self.graph.merge_secs
            + self.guides.merge_secs
    }

    /// Renders the profile as a small human-readable table.
    pub fn render(&self) -> String {
        let row = |name: &str, p: &PhaseProfile| {
            format!(
                "  {name:<14} {:>9.2}ms shard  {:>9.2}ms merge\n",
                p.shard_secs * 1e3,
                p.merge_secs * 1e3
            )
        };
        let mut out = format!(
            "build profile: {} docs, {} shards, {} thread(s), {:.2}ms total\n",
            self.documents,
            self.shards,
            self.parallelism,
            self.total_secs * 1e3
        );
        out.push_str(&row("node index", &self.node_index));
        out.push_str(&row("context index", &self.context_index));
        out.push_str(&row("data graph", &self.graph));
        out.push_str(&row("dataguides", &self.guides));
        out.push_str(&format!("  {:<14} {:>9.2}ms\n", "guide links", self.links_secs * 1e3));
        out.push_str(&format!("  {:<14} {:>9} bytes\n", "oracle labels", self.label_bytes));
        out.push_str(&format!("  {:<14} {:>9.2}ms\n", "audit", self.verify_ms));
        out
    }
}

/// Work counters and wall time of one top-k query, the read-path counterpart
/// of [`BuildProfile`]: it shows where a query spent its effort (sorted /
/// random accesses of the Threshold Algorithm, label probes of the
/// connectivity-oracle checks) and whether the result is exact or clipped.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryProfile {
    /// The search's work counters (sorted/random accesses, tuples scored and
    /// rejected, label probes, truncation, early termination).
    pub stats: seda_topk::SearchStats,
    /// End-to-end query wall time.
    pub wall_secs: f64,
}

impl QueryProfile {
    /// Renders the profile as a small human-readable line.
    pub fn render(&self) -> String {
        format!(
            "query profile: {:.3}ms wall, {} sorted / {} random accesses, \
             {} tuples scored ({} disconnected, {} truncated), {} label probes{}",
            self.wall_secs * 1e3,
            self.stats.sorted_accesses,
            self.stats.random_accesses,
            self.stats.tuples_scored,
            self.stats.tuples_disconnected,
            self.stats.candidates_truncated,
            self.stats.label_probes,
            if self.stats.early_terminated { ", early-terminated" } else { "" }
        )
    }
}

/// The SEDA engine: owns the collection, every index, the dataguide summary
/// and the fact/dimension registry.
pub struct SedaEngine {
    collection: Collection,
    node_index: NodeIndex,
    context_index: ContextIndex,
    graph: DataGraph,
    guides: DataGuideSet,
    links: Vec<GuideLink>,
    registry: Registry,
    config: EngineConfig,
    profile: BuildProfile,
    /// Prepared-query substrate: the posting-list buffers, candidate arenas
    /// and traversal scratch every top-k query reuses.  Guarded by a mutex so the
    /// engine stays `Sync`; concurrent queries fall back to a fresh scratch
    /// instead of blocking (see [`SedaEngine::top_k`]).
    ///
    /// This mutex backs only the legacy convenience methods.  Queries issued
    /// through a [`crate::SedaReader`] own their scratch and never touch it —
    /// the contention-free path [`SedaEngine::reader`] hands out.
    query_scratch: Mutex<SearchScratch>,
    /// How many queries ran through the shared `query_scratch` (legacy
    /// convenience path).  Reader-handle queries never increment this; the
    /// concurrency tests pin that invariant.
    shared_scratch_queries: AtomicUsize,
    /// Engine-wide metrics: counters, gauges and latency histograms every
    /// governed request records into (see [`crate::metrics`]).
    metrics: MetricsRegistry,
    /// How many shared-scratch queries could not take the cached scratch
    /// (lock contention) and fell back to a fresh allocation.  A *poisoned*
    /// lock does not count: poison is cleared and the cached scratch is
    /// reset in place, so the steady state stays allocation-free even after
    /// a contained panic.
    fresh_scratch_fallbacks: AtomicUsize,
}

impl SedaEngine {
    /// Builds the engine: constructs the data graph, both full-text indexes
    /// and the dataguide summary over the collection.
    ///
    /// With [`EngineConfig::parallelism`] `> 1` (or `0` for auto), each
    /// substrate fans per-document shard builds out across a scoped worker
    /// pool and merges the shards in document order; the resulting engine is
    /// identical to the sequential build.  The timings of both phases are
    /// recorded in [`SedaEngine::build_profile`].
    pub fn build(
        collection: Collection,
        registry: Registry,
        config: EngineConfig,
    ) -> Result<Self, SedaError> {
        catch_internal(|| Self::build_inner(collection, registry, config))
    }

    /// Parses `sources` (name, XML text pairs) into a [`Collection`] and
    /// builds the engine over it — the one-call ingestion entry point.
    ///
    /// Parse failures surface as [`SedaError::Store`]; a panic anywhere in
    /// parsing or building is contained and surfaced as
    /// [`SedaError::Internal`], leaving the caller's process intact.
    pub fn build_from_sources<'a, I>(
        sources: I,
        registry: Registry,
        config: EngineConfig,
    ) -> Result<Self, SedaError>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let sources: Vec<(&str, &str)> = sources.into_iter().collect();
        catch_internal(move || {
            faults::fire("parse")?;
            let collection = parse_collection(sources)?;
            Self::build_inner(collection, registry, config)
        })
    }

    fn build_inner(
        collection: Collection,
        registry: Registry,
        config: EngineConfig,
    ) -> Result<Self, SedaError> {
        let build_start = Stopwatch::start();
        // More workers than documents cannot help; clamping keeps the
        // reported parallelism honest and avoids spawning idle workers for
        // tiny collections.
        let threads = effective_parallelism(config.parallelism).min(collection.len()).max(1);
        let mut profile = BuildProfile {
            parallelism: threads,
            documents: collection.len(),
            ..BuildProfile::default()
        };
        // The build path is always traced: builds are rare and expensive, so
        // the span breakdown is worth its (small, bounded) cost.
        let mut tracer = Tracer::enabled();
        tracer.begin();

        let (graph, node_index, context_index, guides) = if threads <= 1 {
            profile.shards = 1;
            Self::build_substrates_sequential(&collection, &config, &mut profile, &mut tracer)?
        } else {
            profile.shards = collection.len();
            Self::build_substrates_sharded(
                &collection,
                &config,
                threads,
                &mut profile,
                &mut tracer,
            )?
        };

        let links_span = tracer.enter(span::BUILD_LINKS);
        let links_start = Stopwatch::start();
        let links = guide_links(&collection, &graph, &guides);
        profile.links_secs = links_start.elapsed_secs();
        tracer.exit(links_span);
        profile.label_bytes = graph.connectivity().label_bytes();

        let mut engine = SedaEngine {
            collection,
            node_index,
            context_index,
            graph,
            guides,
            links,
            registry,
            config,
            profile,
            query_scratch: Mutex::new(SearchScratch::new()),
            shared_scratch_queries: AtomicUsize::new(0),
            metrics: MetricsRegistry::new(),
            fresh_scratch_fallbacks: AtomicUsize::new(0),
        };
        engine.metrics.gauge(names::ENGINE_DOCUMENTS).set(engine.collection.len() as u64);
        engine.metrics.gauge(names::ORACLE_LABEL_BYTES).set(engine.profile.label_bytes as u64);

        // Post-build audit: a freshly built engine must satisfy every
        // substrate invariant; a violation here means the build itself is
        // broken, which is an internal defect rather than a user error.
        let verify_span = tracer.enter(span::BUILD_VERIFY);
        let verify_start = Stopwatch::start();
        if let Err(violations) = engine.verify() {
            let first = &violations[0];
            return Err(SedaError::Internal(format!(
                "freshly built engine failed its structural audit with {} violation(s); \
                 first: [{}/{}] {}",
                violations.len(),
                first.substrate,
                first.invariant,
                first.detail
            )));
        }
        engine.profile.verify_ms = verify_start.elapsed_secs() * 1e3;
        tracer.exit(verify_span);
        engine.profile.total_secs = build_start.elapsed_secs();
        engine.profile.spans = tracer.take_spans();

        Ok(engine)
    }

    /// Single-pass sequential builds of all four substrates (the
    /// `parallelism == 1` path); all time is accounted to the shard phase.
    fn build_substrates_sequential(
        collection: &Collection,
        config: &EngineConfig,
        profile: &mut BuildProfile,
        tracer: &mut Tracer,
    ) -> Result<(DataGraph, NodeIndex, ContextIndex, DataGuideSet), SedaError> {
        let s = tracer.enter(span::BUILD_GRAPH);
        let t = Stopwatch::start();
        faults::fire("oracle-build")?;
        let graph = DataGraph::build(collection, &config.graph);
        (profile.graph, _) = PhaseProfile::finish_shards(t);
        tracer.exit(s);

        let s = tracer.enter(span::BUILD_NODE_INDEX);
        let t = Stopwatch::start();
        let node_index = NodeIndex::build(collection);
        (profile.node_index, _) = PhaseProfile::finish_shards(t);
        tracer.exit(s);

        let s = tracer.enter(span::BUILD_CONTEXT_INDEX);
        let t = Stopwatch::start();
        let context_index = ContextIndex::build(collection, config.count_storage);
        (profile.context_index, _) = PhaseProfile::finish_shards(t);
        tracer.exit(s);

        let s = tracer.enter(span::BUILD_GUIDES);
        let t = Stopwatch::start();
        let guides = DataGuideSet::build(collection, config.dataguide_threshold)?;
        (profile.guides, _) = PhaseProfile::finish_shards(t);
        tracer.exit(s);

        Ok((graph, node_index, context_index, guides))
    }

    /// Shard-parallel builds of all four substrates: per-document shards are
    /// fanned out across `threads` workers, then merged in document order.
    fn build_substrates_sharded(
        collection: &Collection,
        config: &EngineConfig,
        threads: usize,
        profile: &mut BuildProfile,
        tracer: &mut Tracer,
    ) -> Result<(DataGraph, NodeIndex, ContextIndex, DataGuideSet), SedaError> {
        let docs: Vec<DocId> = collection.documents().map(|d| d.id).collect();

        let outer = tracer.enter(span::BUILD_GRAPH);
        let inner = tracer.enter(span::SHARD);
        let t = Stopwatch::start();
        let shards = parallel_map(&docs, threads, |&doc| {
            DataGraph::build_shard(collection, doc, &config.graph)
        })?;
        let (mut phase, merge_start) = PhaseProfile::finish_shards(t);
        tracer.exit(inner);
        let inner = tracer.enter(span::MERGE);
        faults::fire("oracle-build")?;
        let graph = DataGraph::merge(collection, shards);
        phase.finish_merge(merge_start);
        tracer.exit(inner);
        profile.graph = phase;
        tracer.exit(outer);

        let outer = tracer.enter(span::BUILD_NODE_INDEX);
        let inner = tracer.enter(span::SHARD);
        let t = Stopwatch::start();
        let shards = parallel_map(&docs, threads, |&doc| {
            NodeIndex::build_shard(
                collection
                    .document(doc)
                    .expect("invariant: collection document ids are dense (doc-id-dense)"),
            )
        })?;
        let (mut phase, merge_start) = PhaseProfile::finish_shards(t);
        tracer.exit(inner);
        let inner = tracer.enter(span::MERGE);
        faults::fire("shard-merge")?;
        let node_index = NodeIndex::merge(shards);
        phase.finish_merge(merge_start);
        tracer.exit(inner);
        profile.node_index = phase;
        tracer.exit(outer);

        let outer = tracer.enter(span::BUILD_CONTEXT_INDEX);
        let inner = tracer.enter(span::SHARD);
        let t = Stopwatch::start();
        let shards = parallel_map(&docs, threads, |&doc| {
            ContextIndex::build_shard(
                collection
                    .document(doc)
                    .expect("invariant: collection document ids are dense (doc-id-dense)"),
                config.count_storage,
            )
        })?;
        let (mut phase, merge_start) = PhaseProfile::finish_shards(t);
        tracer.exit(inner);
        let inner = tracer.enter(span::MERGE);
        let context_index = ContextIndex::merge(collection, config.count_storage, shards);
        phase.finish_merge(merge_start);
        tracer.exit(inner);
        profile.context_index = phase;
        tracer.exit(outer);

        let outer = tracer.enter(span::BUILD_GUIDES);
        let inner = tracer.enter(span::SHARD);
        let t = Stopwatch::start();
        let shards =
            parallel_map(&docs, threads, |&doc| DataGuideSet::build_shard(collection, [doc]))?;
        let (mut phase, merge_start) = PhaseProfile::finish_shards(t);
        tracer.exit(inner);
        let inner = tracer.enter(span::MERGE);
        let shards = shards.into_iter().collect::<seda_xmlstore::Result<Vec<_>>>()?;
        let guides = DataGuideSet::merge(config.dataguide_threshold, shards);
        phase.finish_merge(merge_start);
        tracer.exit(inner);
        profile.guides = phase;
        tracer.exit(outer);

        Ok((graph, node_index, context_index, guides))
    }

    /// Timings and shape of the build that produced this engine.
    pub fn build_profile(&self) -> &BuildProfile {
        &self.profile
    }

    /// The engine-wide metrics registry: counters, gauges and latency
    /// histograms recorded by every governed request (see [`crate::metrics`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the metrics registry — corruption-test hook for the
    /// seeded-violation audit tests; not part of the stable API.
    #[doc(hidden)]
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The shared-scratch mutex, for the engine-level audit
    /// ([`SedaEngine::verify`]) to include the cached scratch when idle.
    pub(crate) fn query_scratch_for_audit(&self) -> &Mutex<SearchScratch> {
        &self.query_scratch
    }

    /// Mutable references to every frozen substrate — the corruption-test
    /// access behind the `#[doc(hidden)]` [`SedaEngine::substrates_mut`].
    pub(crate) fn substrate_fields_mut(
        &mut self,
    ) -> (&mut Collection, &mut NodeIndex, &mut ContextIndex, &mut DataGraph, &mut DataGuideSet)
    {
        (
            &mut self.collection,
            &mut self.node_index,
            &mut self.context_index,
            &mut self.graph,
            &mut self.guides,
        )
    }

    /// The underlying collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// The fact/dimension registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the registry (users can define new facts and
    /// dimensions during query processing).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The data graph.
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The merged dataguide summary.
    pub fn guides(&self) -> &DataGuideSet {
        &self.guides
    }

    /// Inter-dataguide links.
    pub fn guide_links(&self) -> &[GuideLink] {
        &self.links
    }

    /// The node full-text index.
    pub fn node_index(&self) -> &NodeIndex {
        &self.node_index
    }

    /// The keyword→path context index.
    pub fn context_index(&self) -> &ContextIndex {
        &self.context_index
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Table 1 statistics of the dataguide summary.
    pub fn dataguide_stats(&self) -> DataGuideStats {
        self.guides.stats(self.collection.len())
    }

    /// Queries that ran through the engine's shared cached scratch (the
    /// legacy convenience path).  Queries issued through [`SedaEngine::reader`]
    /// handles own their scratch and leave this counter untouched.
    pub fn shared_scratch_queries(&self) -> usize {
        self.shared_scratch_queries.load(Ordering::Relaxed)
    }

    /// How many shared-scratch queries lost the `try_lock` race and ran on a
    /// freshly allocated scratch.  Poisoned locks are *recovered* (poison
    /// cleared, scratch reset in place) rather than abandoned, so a contained
    /// panic does not inflate this counter forever after.
    pub fn fresh_scratch_fallbacks(&self) -> usize {
        self.fresh_scratch_fallbacks.load(Ordering::Relaxed)
    }

    /// Takes the engine's shared scratch and runs `f` over it, recovering a
    /// poisoned mutex (a worker panicked while holding it) by clearing the
    /// poison and resetting the scratch in place.  Only lock *contention*
    /// falls back to a fresh allocation.
    fn with_shared_scratch<R>(&self, f: impl FnOnce(&mut SearchScratch) -> R) -> R {
        self.shared_scratch_queries.fetch_add(1, Ordering::Relaxed);
        match self.query_scratch.try_lock() {
            Ok(mut scratch) => {
                faults::fire_unchecked("scratch-lock");
                f(&mut scratch)
            }
            Err(TryLockError::Poisoned(poisoned)) => {
                // A panic was contained while the scratch was held; its
                // buffers may be mid-update, so reset them and clear the
                // poison — the cached scratch stays warm for later queries.
                let mut scratch = poisoned.into_inner();
                *scratch = SearchScratch::new();
                self.query_scratch.clear_poison();
                faults::fire_unchecked("scratch-lock");
                f(&mut scratch)
            }
            Err(TryLockError::WouldBlock) => {
                self.fresh_scratch_fallbacks.fetch_add(1, Ordering::Relaxed);
                self.metrics.counter(names::FRESH_SCRATCH_FALLBACKS_TOTAL, "").inc();
                f(&mut SearchScratch::new())
            }
        }
    }

    /// Resolves the allowed paths of every term, combining the term's own
    /// context spec with any user selection from the context summary.
    pub(crate) fn term_inputs(
        &self,
        query: &SedaQuery,
        selections: &ContextSelections,
    ) -> Vec<TermInput> {
        query
            .terms
            .iter()
            .enumerate()
            .map(|(i, term)| {
                let allowed = match selections.for_term(i) {
                    Some(paths) => Some(paths.to_vec()),
                    None => term.context.allowed_paths(&self.collection),
                };
                match allowed {
                    Some(paths) => TermInput::with_paths(term.search.clone(), paths),
                    None => TermInput::new(term.search.clone()),
                }
            })
            .collect()
    }

    /// Runs the top-k search unit for a query, honouring context selections.
    ///
    /// The query runs through the engine's cached [`SearchScratch`] (posting
    /// lists, candidate arenas, traversal scratch), so steady-state queries do not
    /// allocate; when another query holds the scratch, a fresh one is used
    /// rather than blocking.
    pub fn top_k(&self, query: &SedaQuery, selections: &ContextSelections, k: usize) -> TopKResult {
        self.top_k_profiled(query, selections, k).0
    }

    /// Like [`SedaEngine::top_k`], additionally returning the
    /// [`QueryProfile`] of the run (work counters plus wall time).
    pub fn top_k_profiled(
        &self,
        query: &SedaQuery,
        selections: &ContextSelections,
        k: usize,
    ) -> (TopKResult, QueryProfile) {
        self.with_shared_scratch(|scratch| self.top_k_scratch(query, selections, k, scratch))
    }

    /// The scratch-parameterised top-k search every entry point (legacy
    /// convenience methods, reader handles, the facade executor) funnels
    /// through.
    pub(crate) fn top_k_scratch(
        &self,
        query: &SedaQuery,
        selections: &ContextSelections,
        k: usize,
        scratch: &mut SearchScratch,
    ) -> (TopKResult, QueryProfile) {
        let (result, profile, _) =
            self.top_k_scratch_governed(query, selections, k, &SearchLimits::unlimited(), scratch);
        (result, profile)
    }

    /// [`SedaEngine::top_k_scratch`] under per-request [`SearchLimits`]: the
    /// third element reports the first exhausted resource, if any, and the
    /// returned tuples are the certifiably correct prefix computed before it
    /// ran out.
    pub(crate) fn top_k_scratch_governed(
        &self,
        query: &SedaQuery,
        selections: &ContextSelections,
        k: usize,
        limits: &SearchLimits,
        scratch: &mut SearchScratch,
    ) -> (TopKResult, QueryProfile, Option<LimitBreach>) {
        let terms = self.term_inputs(query, selections);
        self.search_terms_governed(&terms, k, limits, scratch)
    }

    /// Runs the Threshold-Algorithm searcher over pre-resolved term inputs
    /// under per-request [`SearchLimits`] ([`SearchLimits::unlimited`] for
    /// ungoverned callers).  `k == 0` is honoured literally and yields an
    /// empty result.
    pub(crate) fn search_terms_governed(
        &self,
        terms: &[TermInput],
        k: usize,
        limits: &SearchLimits,
        scratch: &mut SearchScratch,
    ) -> (TopKResult, QueryProfile, Option<LimitBreach>) {
        let start = Stopwatch::start();
        faults::fire_unchecked("mid-search");
        let searcher = TopKSearcher::new(&self.collection, &self.node_index, &self.graph);
        let mut config = self.config.topk.clone();
        config.k = k;
        let (result, breach) = searcher.search_governed(terms, &config, limits, scratch);
        let profile = QueryProfile { stats: result.stats.clone(), wall_secs: start.elapsed_secs() };
        (result, profile, breach)
    }

    /// Runs a compiled [`crate::PlanOp::Search`] op: the searcher under the
    /// plan's tuned [`TopKConfig`] and access [`SearchStrategy`], over either
    /// fresh posting lists or a prepared statement's materialized term lists,
    /// with an optional compactness memo shared across executions.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn search_compiled(
        &self,
        terms: &[TermInput],
        config: &TopKConfig,
        limits: &SearchLimits,
        scratch: &mut SearchScratch,
        materialized: Option<&MaterializedTerms>,
        cache: Option<&mut TupleScoreCache>,
        strategy: SearchStrategy,
    ) -> (TopKResult, QueryProfile, Option<LimitBreach>) {
        let start = Stopwatch::start();
        faults::fire_unchecked("mid-search");
        let searcher = TopKSearcher::new(&self.collection, &self.node_index, &self.graph);
        let (result, breach) = match materialized {
            Some(lists) => searcher
                .search_materialized_governed(lists, config, limits, scratch, cache, strategy),
            None => searcher.search_governed_with(terms, config, limits, scratch, cache, strategy),
        };
        let profile = QueryProfile { stats: result.stats.clone(), wall_secs: start.elapsed_secs() };
        (result, profile, breach)
    }

    /// Resolves term inputs into reusable sorted posting lists for a
    /// [`crate::PreparedStatement`] (sorted access without the join).
    pub(crate) fn materialize_search_terms(&self, terms: &[TermInput]) -> MaterializedTerms {
        TopKSearcher::new(&self.collection, &self.node_index, &self.graph).materialize_terms(terms)
    }

    /// Computes the context summary of a query (Sec. 5): one bucket per term
    /// with all distinct paths the term appears in, across the whole
    /// collection, sorted by absolute path frequency.
    pub fn context_summary(&self, query: &SedaQuery) -> ContextSummary {
        let mut buckets = Vec::with_capacity(query.terms.len());
        for (i, term) in query.terms.iter().enumerate() {
            let entries = match &term.context {
                ContextSpec::Any => self.context_index.context_bucket(&term.search),
                ContextSpec::Path(path) => {
                    // Probe with the last tag name of the path in conjunction
                    // with the search query.
                    let tag = path.rsplit('/').next().unwrap_or_default();
                    self.context_index.context_bucket_with_tag(&self.collection, &term.search, tag)
                }
                ContextSpec::Tag(tag) => {
                    if tag.contains('*') {
                        // Wildcard tag: fall back to filtering the plain
                        // bucket by the allowed paths of the spec.
                        let allowed =
                            term.context.allowed_paths(&self.collection).unwrap_or_default();
                        self.context_index
                            .context_bucket(&term.search)
                            .into_iter()
                            .filter(|e| allowed.contains(&e.path))
                            .collect()
                    } else {
                        self.context_index.context_bucket_with_tag(
                            &self.collection,
                            &term.search,
                            tag,
                        )
                    }
                }
                ContextSpec::Disjunction(_) => {
                    let allowed = term.context.allowed_paths(&self.collection);
                    let bucket = self.context_index.context_bucket(&term.search);
                    match allowed {
                        Some(paths) => {
                            bucket.into_iter().filter(|e| paths.contains(&e.path)).collect()
                        }
                        None => bucket,
                    }
                }
            };
            buckets.push(ContextBucket { term: i, label: term.label(), entries });
        }
        ContextSummary { buckets }
    }

    /// Computes the connection summary from a top-k result (Sec. 6): the
    /// pairwise connections between matched nodes, abstracted to context
    /// signatures, most frequent first.
    pub fn connection_summary(&self, top_k: &TopKResult) -> ConnectionSummary {
        let tuples = top_k.node_tuples();
        let connections = discover_connections(
            &self.collection,
            &self.graph,
            &tuples,
            self.config.connection_max_depth,
        );
        ConnectionSummary { connections }
    }

    /// Per-term candidate context paths: the user's selection, the term's own
    /// context spec, or (for fully unrestricted terms) every path the search
    /// component can match.
    pub(crate) fn term_paths(
        &self,
        query: &SedaQuery,
        selections: &ContextSelections,
    ) -> Vec<Vec<PathId>> {
        query
            .terms
            .iter()
            .enumerate()
            .map(|(i, term)| match selections.for_term(i) {
                Some(paths) => paths.to_vec(),
                None => term
                    .context
                    .allowed_paths(&self.collection)
                    .unwrap_or_else(|| self.paths_matching_search(&term.search)),
            })
            .collect()
    }

    /// Number of concrete per-term context combinations the complete-result
    /// generator would enumerate over already-resolved per-term path sets
    /// (callers hold the paths, so they are never resolved twice);
    /// [`SedaError::Limit`] when it exceeds
    /// [`EngineConfig::complete_result_limit`].
    pub(crate) fn context_combinations_of(
        &self,
        term_paths: &[Vec<PathId>],
    ) -> Result<usize, SedaError> {
        if term_paths.iter().any(Vec::is_empty) {
            return Ok(0);
        }
        let mut combinations = 1usize;
        for paths in term_paths {
            combinations = combinations.saturating_mul(paths.len());
        }
        if combinations > self.config.complete_result_limit {
            return Err(SedaError::Limit {
                resource: "context combinations",
                spent: combinations,
                budget: self.config.complete_result_limit,
            });
        }
        Ok(combinations)
    }

    /// Computes the complete (non-top-k) result set R(q) for a refined query
    /// (Sec. 7): every term restricted to its selected contexts, tuples
    /// restricted to the selected connections.
    ///
    /// Fails with [`SedaError::Limit`] instead of silently clipping when the
    /// context combinations or materialised rows would exceed
    /// [`EngineConfig::complete_result_limit`].
    pub fn complete_results(
        &self,
        query: &SedaQuery,
        selections: &ContextSelections,
        connections: &[Connection],
    ) -> Result<QueryResultTable, SedaError> {
        self.with_shared_scratch(|scratch| {
            self.complete_results_scratch(query, selections, connections, scratch)
        })
    }

    /// [`SedaEngine::complete_results`] reusing a caller-owned scratch for
    /// every graph traversal (the reader-handle path).
    pub(crate) fn complete_results_scratch(
        &self,
        query: &SedaQuery,
        selections: &ContextSelections,
        connections: &[Connection],
        scratch: &mut SearchScratch,
    ) -> Result<QueryResultTable, SedaError> {
        let (table, _) = self.complete_results_governed(
            query,
            selections,
            connections,
            scratch,
            &RequestContext::unlimited(),
        )?;
        Ok(table)
    }

    /// [`SedaEngine::complete_results_scratch`] under a per-request
    /// [`RequestContext`]: cancellation, the wall-clock deadline and the
    /// result-row budget are checked between context combinations.  A budget
    /// breach returns the deduplicated rows enumerated so far (clipped to the
    /// row ceiling) together with the breach, leaving the degrade-or-error
    /// decision to the caller; cancellation always errors.
    pub(crate) fn complete_results_governed(
        &self,
        query: &SedaQuery,
        selections: &ContextSelections,
        connections: &[Connection],
        scratch: &mut SearchScratch,
        ctx: &RequestContext,
    ) -> Result<(QueryResultTable, Option<LimitBreach>), SedaError> {
        let column_names = query.terms.iter().map(|t| t.label()).collect();
        let mut table = QueryResultTable::new(column_names);

        let term_paths = self.term_paths(query, selections);
        if self.context_combinations_of(&term_paths)? == 0 {
            return Ok((table, None));
        }

        // Enumerate one concrete context per term (usually a single
        // combination once the user has refined her query) and evaluate a
        // twig per combination; union the rows.
        let mut combination = vec![0usize; term_paths.len()];
        loop {
            ctx.check_cancelled()?;
            if let Some(breach) = ctx.deadline_breach() {
                table.rows.sort();
                table.rows.dedup();
                return Ok((table, Some(breach)));
            }
            let chosen: Vec<PathId> =
                combination.iter().enumerate().map(|(t, &i)| term_paths[t][i]).collect();
            self.evaluate_combination(query, &chosen, connections, &mut table, scratch)?;
            if table.rows.len() > self.config.complete_result_limit {
                // Different combinations may produce overlapping rows, so
                // dedup before concluding the (final) result is over-limit.
                table.rows.sort();
                table.rows.dedup();
                if table.rows.len() > self.config.complete_result_limit {
                    return Err(SedaError::Limit {
                        resource: "complete-result tuples",
                        spent: table.rows.len(),
                        budget: self.config.complete_result_limit,
                    });
                }
            }
            if ctx.row_breach(table.rows.len()).is_some() {
                // Overlapping combinations may shrink below the ceiling once
                // deduplicated; only a post-dedup excess is a real breach.
                table.rows.sort();
                table.rows.dedup();
                if let Some(breach) = ctx.row_breach(table.rows.len()) {
                    table.rows.truncate(breach.budget as usize);
                    return Ok((table, Some(breach)));
                }
            }

            // Advance the mixed-radix counter.
            let mut pos = 0;
            loop {
                if pos == combination.len() {
                    // Deduplicate rows that different combinations may share.
                    table.rows.sort();
                    table.rows.dedup();
                    return Ok((table, None));
                }
                combination[pos] += 1;
                if combination[pos] < term_paths[pos].len() {
                    break;
                }
                combination[pos] = 0;
                pos += 1;
            }
        }
    }

    /// All paths whose nodes can satisfy a search query (used when a term has
    /// neither a context spec nor a selection).
    fn paths_matching_search(&self, search: &FullTextQuery) -> Vec<PathId> {
        self.context_index.context_bucket(search).into_iter().map(|e| e.path).collect()
    }

    /// Evaluates one concrete combination of per-term contexts via a twig
    /// pattern (all contexts in one document tree) and appends the matching
    /// rows to `table`, applying the connection filter.
    fn evaluate_combination(
        &self,
        query: &SedaQuery,
        chosen: &[PathId],
        connections: &[Connection],
        table: &mut QueryResultTable,
        scratch: &mut SearchScratch,
    ) -> Result<(), SedaError> {
        // All chosen contexts must share the same root label to form a single
        // twig; otherwise fall back to graph enumeration.
        let path_strings: Vec<String> =
            chosen.iter().map(|&p| self.collection.path_string(p)).collect();
        let roots: Vec<&str> = path_strings
            .iter()
            .map(|p| p.trim_start_matches('/').split('/').next().unwrap_or_default())
            .collect();
        let same_root = roots.windows(2).all(|w| w[0] == w[1]);

        let rows: Vec<Vec<NodeId>> = if same_root {
            self.twig_rows(query, &path_strings)
        } else {
            self.graph_rows(query, chosen, scratch)?
        };

        for nodes in rows {
            if !connections.is_empty()
                && !self.row_satisfies_connections(&nodes, connections, scratch)
            {
                continue;
            }
            let row: Vec<(NodeId, PathId)> =
                nodes.iter().zip(chosen.iter()).map(|(&n, &p)| (n, p)).collect();
            table.rows.push(row);
        }
        Ok(())
    }

    /// Structural evaluation: builds one twig from the chosen context paths
    /// (shared prefixes merged), attaches the term predicates and returns one
    /// row per twig match, with columns in term order.
    fn twig_rows(&self, query: &SedaQuery, path_strings: &[String]) -> Vec<Vec<NodeId>> {
        // Build the pattern manually so we know which pattern node belongs to
        // which term.
        let root_label = path_strings[0].trim_start_matches('/').split('/').next().unwrap_or("");
        if root_label.is_empty() {
            return Vec::new();
        }
        let mut pattern = TwigPattern::with_root(root_label);
        let mut term_nodes = Vec::with_capacity(path_strings.len());
        for (term_idx, path) in path_strings.iter().enumerate() {
            let mut current = pattern.root();
            for label in path.trim_start_matches('/').split('/').skip(1) {
                let existing = pattern.node(current).children.iter().copied().find(|&c| {
                    pattern.node(c).label == label && pattern.node(c).axis == Axis::Child
                });
                current = match existing {
                    Some(c) => c,
                    None => pattern.add_child(current, label, Axis::Child),
                };
            }
            pattern.set_output(current, true);
            if !query.terms[term_idx].search.is_match_all() {
                // Combine predicates if two terms map to the same pattern node.
                let predicate = match pattern.node(current).predicate.clone() {
                    Some(existing) => FullTextQuery::And(
                        Box::new(existing),
                        Box::new(query.terms[term_idx].search.clone()),
                    ),
                    None => query.terms[term_idx].search.clone(),
                };
                pattern.set_predicate(current, predicate);
            }
            term_nodes.push(current);
        }

        let matches = evaluate_twig(&self.collection, &pattern);
        let columns: Vec<usize> =
            term_nodes.iter().map(|&n| matches.column_of(n).unwrap_or(usize::MAX)).collect();
        if columns.contains(&usize::MAX) {
            return Vec::new();
        }
        matches.rows.iter().map(|row| columns.iter().map(|&c| row[c]).collect()).collect()
    }

    /// Fallback evaluation when the chosen contexts span different document
    /// roots: per-term candidate nodes joined by data-graph connectivity.
    /// Fails with [`SedaError::Limit`] instead of clipping when the join's
    /// intermediate partial-tuple frontier reaches
    /// [`EngineConfig::complete_result_limit`] — a resource bound on the
    /// enumeration itself, reported as such rather than as a final tuple
    /// count.
    fn graph_rows(
        &self,
        query: &SedaQuery,
        chosen: &[PathId],
        scratch: &mut SearchScratch,
    ) -> Result<Vec<Vec<NodeId>>, SedaError> {
        let candidates: Vec<Vec<NodeId>> = chosen
            .iter()
            .enumerate()
            .map(|(i, &path)| {
                self.node_index
                    .evaluate_in_paths(&query.terms[i].search, &[path])
                    .into_iter()
                    .map(|s| s.node)
                    .collect()
            })
            .collect();
        if candidates.iter().any(Vec::is_empty) {
            return Ok(Vec::new());
        }
        let mut rows: Vec<Vec<NodeId>> = vec![Vec::new()];
        for term_candidates in &candidates {
            let mut next = Vec::new();
            for row in &rows {
                for &candidate in term_candidates {
                    let mut extended = row.clone();
                    extended.push(candidate);
                    // Require connectivity with the partial tuple.
                    if extended.len() == 1
                        || is_connected_with(
                            &self.graph,
                            scratch.traversal_mut(),
                            &extended,
                            self.config.connection_max_depth,
                        )
                    {
                        next.push(extended);
                    }
                    if next.len() > self.config.complete_result_limit {
                        return Err(SedaError::Limit {
                            resource: "graph-join frontier tuples",
                            spent: next.len(),
                            budget: self.config.complete_result_limit,
                        });
                    }
                }
            }
            rows = next;
            if rows.is_empty() {
                break;
            }
        }
        Ok(rows)
    }

    /// Checks the selected-connection constraint for one result row: every
    /// pair of nodes whose contexts are the endpoints of some selected
    /// connection must be related by one of the selected signatures.
    fn row_satisfies_connections(
        &self,
        nodes: &[NodeId],
        connections: &[Connection],
        scratch: &mut SearchScratch,
    ) -> bool {
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let (Ok(pa), Ok(pb)) =
                    (self.collection.context(nodes[i]), self.collection.context(nodes[j]))
                else {
                    return false;
                };
                let relevant: Vec<&Connection> = connections
                    .iter()
                    .filter(|c| {
                        (c.from_path == pa && c.to_path == pb)
                            || (c.from_path == pb && c.to_path == pa)
                    })
                    .collect();
                if relevant.is_empty() {
                    continue;
                }
                let Some(hops) = shortest_path_with(
                    &self.graph,
                    scratch.traversal_mut(),
                    nodes[i],
                    nodes[j],
                    self.config.connection_max_depth,
                ) else {
                    return false;
                };
                let mut signature = vec![pa];
                for hop in &hops {
                    match self.collection.context(hop.node) {
                        Ok(p) => signature.push(p),
                        Err(_) => return false,
                    }
                }
                let reversed: Vec<PathId> = signature.iter().rev().copied().collect();
                let matched =
                    relevant.iter().any(|c| c.signature == signature || c.signature == reversed);
                if !matched {
                    return false;
                }
            }
        }
        true
    }

    /// Derives (and instantiates) the star schema for a complete result
    /// (Sec. 7, steps 1–3).
    pub fn build_star_schema(
        &self,
        result: &QueryResultTable,
        options: &BuildOptions,
    ) -> StarSchemaBuild {
        StarSchemaBuilder::new(&self.collection, &self.registry).build(result, options)
    }

    /// Evaluates a compiled twig pattern and shapes the matches as a
    /// [`QueryResultTable`]: one column per output pattern node (labelled
    /// with the node's root-to-leaf label chain), one row per match.  The
    /// second element reports the document nodes the evaluation scanned
    /// ([`seda_twigjoin::TwigMatches::nodes_visited`]).
    pub(crate) fn twig_table(&self, pattern: &TwigPattern) -> (QueryResultTable, usize) {
        let outputs = pattern.output_nodes();
        let column_names: Vec<String> = outputs
            .iter()
            .map(|&node| {
                let mut labels = Vec::new();
                let mut current = Some(node);
                while let Some(idx) = current {
                    labels.push(pattern.node(idx).label.clone());
                    current = pattern.node(idx).parent;
                }
                labels.reverse();
                format!("/{}", labels.join("/"))
            })
            .collect();
        let matches = evaluate_twig(&self.collection, pattern);
        let columns: Vec<Option<usize>> = outputs.iter().map(|&n| matches.column_of(n)).collect();
        let mut table = QueryResultTable::new(column_names);
        for row in &matches.rows {
            let shaped: Option<Vec<(NodeId, PathId)>> = columns
                .iter()
                .map(|&c| {
                    let node = row[c?];
                    let path = self.collection.context(node).ok()?;
                    Some((node, path))
                })
                .collect();
            if let Some(shaped) = shaped {
                table.rows.push(shaped);
            }
        }
        (table, matches.nodes_visited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SedaQuery;
    use seda_xmlstore::parse_collection;

    fn engine() -> SedaEngine {
        let collection = parse_collection(vec![
            (
                "us2006.xml",
                r#"<country><name>United States</name><year>2006</year>
                     <economy><GDP_ppp>12.31T</GDP_ppp><import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                       <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                     </import_partners>
                     <export_partners>
                       <item><trade_country>Canada</trade_country><percentage>23.4</percentage></item>
                     </export_partners></economy></country>"#,
            ),
            (
                "us2005.xml",
                r#"<country><name>United States</name><year>2005</year>
                     <economy><GDP_ppp>12.0T</GDP_ppp><import_partners>
                       <item><trade_country>China</trade_country><percentage>13.8</percentage></item>
                       <item><trade_country>Mexico</trade_country><percentage>10.3</percentage></item>
                     </import_partners></economy></country>"#,
            ),
            (
                "mexico2003.xml",
                r#"<country><name>Mexico</name><year>2003</year>
                     <economy><GDP>924.4B</GDP><export_partners>
                       <item><trade_country>United States</trade_country><percentage>70.6</percentage></item>
                     </export_partners></economy></country>"#,
            ),
        ])
        .unwrap();
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())
            .unwrap()
    }

    fn query1() -> SedaQuery {
        SedaQuery::parse(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)
            .unwrap()
    }

    #[test]
    fn context_summary_reports_contexts_for_each_term() {
        let e = engine();
        let summary = e.context_summary(&query1());
        assert_eq!(summary.buckets.len(), 3);
        // "United States" occurs as a country name and as an export partner.
        let us_paths: Vec<String> =
            summary.buckets[0].entries.iter().map(|p| e.collection().path_string(p.path)).collect();
        assert!(us_paths.contains(&"/country/name".to_string()));
        assert!(
            us_paths.contains(&"/country/economy/export_partners/item/trade_country".to_string())
        );
        // trade_country occurs in two contexts (import and export partners).
        assert_eq!(summary.buckets[1].entries.len(), 2);
        // Frequencies are absolute and sorted descending.
        let freqs: Vec<usize> = summary.buckets[1].entries.iter().map(|e| e.frequency).collect();
        assert!(freqs[0] >= freqs[1]);
    }

    #[test]
    fn top_k_and_connection_summary() {
        let e = engine();
        let q = query1();
        let topk = e.top_k(&q, &ContextSelections::none(), 10);
        assert!(!topk.tuples.is_empty());
        let connections = e.connection_summary(&topk);
        assert!(!connections.is_empty());
        // The same-item trade_country ~ percentage connection must be among
        // the discovered connections.
        let c = e.collection();
        let tc = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/trade_country")
            .unwrap();
        let pct = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/percentage")
            .unwrap();
        assert!(!connections.between(tc, pct).is_empty());
    }

    #[test]
    fn context_selection_restricts_topk_results() {
        let e = engine();
        let q = query1();
        let c = e.collection();
        let name = c.paths().get_str(c.symbols(), "/country/name").unwrap();
        let mut selections = ContextSelections::none();
        selections.select(0, vec![name]);
        let topk = e.top_k(&q, &selections, 20);
        for t in &topk.tuples {
            assert_eq!(c.context_string(t.nodes[0]).unwrap(), "/country/name");
        }
    }

    #[test]
    fn complete_results_for_query1_import_refinement() {
        let e = engine();
        let q = query1();
        let c = e.collection();
        let name = c.paths().get_str(c.symbols(), "/country/name").unwrap();
        let tc = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/trade_country")
            .unwrap();
        let pct = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/percentage")
            .unwrap();
        let mut selections = ContextSelections::none();
        selections.select(0, vec![name]);
        selections.select(1, vec![tc]);
        selections.select(2, vec![pct]);
        let result = e.complete_results(&q, &selections, &[]).unwrap();
        // US 2006 has two import items, US 2005 has two: four rows in total
        // (Mexico's document has no import partners and its name is not
        // "United States").
        assert_eq!(result.len(), 4);
        for row in &result.rows {
            let name_content = c.content(row[0].0).unwrap();
            assert_eq!(name_content, "United States");
        }
    }

    #[test]
    fn connection_filter_excludes_cross_item_pairings() {
        let e = engine();
        let q = query1();
        let c = e.collection();
        let name = c.paths().get_str(c.symbols(), "/country/name").unwrap();
        let tc = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/trade_country")
            .unwrap();
        let pct = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/percentage")
            .unwrap();
        let mut selections = ContextSelections::none();
        selections.select(0, vec![name]);
        selections.select(1, vec![tc]);
        selections.select(2, vec![pct]);
        // Discover connections from the top-k and keep only the same-item one
        // (length 2).
        let topk = e.top_k(&q, &selections, 10);
        let summary = e.connection_summary(&topk);
        let same_item: Vec<Connection> = summary
            .connections
            .iter()
            .filter(|conn| conn.from_path == tc && conn.to_path == pct && conn.length() == 2)
            .cloned()
            .collect();
        assert!(!same_item.is_empty());
        let result = e.complete_results(&q, &selections, &same_item).unwrap();
        assert_eq!(result.len(), 4);
        for row in &result.rows {
            let tc_node = row[1].0;
            let pct_node = row[2].0;
            let tc_parent = c.node(tc_node).unwrap().parent;
            let pct_parent = c.node(pct_node).unwrap().parent;
            assert_eq!(tc_parent, pct_parent, "connection filter must keep same-item pairs only");
        }
    }

    #[test]
    fn end_to_end_star_schema_matches_figure_3() {
        let e = engine();
        let q = query1();
        let c = e.collection();
        let name = c.paths().get_str(c.symbols(), "/country/name").unwrap();
        let tc = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/trade_country")
            .unwrap();
        let pct = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/percentage")
            .unwrap();
        let mut selections = ContextSelections::none();
        selections.select(0, vec![name]);
        selections.select(1, vec![tc]);
        selections.select(2, vec![pct]);
        let result = e.complete_results(&q, &selections, &[]).unwrap();
        let build = e.build_star_schema(&result, &BuildOptions::default());
        let fact = build.schema.fact("import-trade-percentage").expect("fact table");
        assert_eq!(fact.dimension_columns, vec!["country", "year", "import-country"]);
        assert_eq!(fact.len(), 4);
        assert!(fact.dimensions_form_key());
    }

    #[test]
    fn dataguide_stats_report_merge_outcome() {
        let e = engine();
        let stats = e.dataguide_stats();
        assert_eq!(stats.documents, 3);
        assert!(stats.dataguides <= 3 && stats.dataguides >= 1);
        assert!(stats.threshold > 0.39 && stats.threshold < 0.41);
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        let collection = parse_collection(vec![
            (
                "us.xml",
                r#"<country id="cty-us"><name>United States</name><year>2006</year>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                     </import_partners></economy></country>"#,
            ),
            (
                "sea.xml",
                r#"<sea id="sea-pac"><name>Pacific Ocean</name>
                     <bordering country_idref="cty-us"/></sea>"#,
            ),
            ("mx.xml", r#"<country id="cty-mx"><name>Mexico</name><year>2003</year></country>"#),
        ])
        .unwrap();

        let sequential = SedaEngine::build(
            collection.clone(),
            Registry::factbook_defaults(),
            EngineConfig::default(),
        )
        .unwrap();
        let parallel = SedaEngine::build(
            collection,
            Registry::factbook_defaults(),
            EngineConfig { parallelism: 4, ..EngineConfig::default() },
        )
        .unwrap();

        assert_eq!(parallel.node_index(), sequential.node_index());
        assert_eq!(parallel.context_index(), sequential.context_index());
        assert_eq!(parallel.graph(), sequential.graph());
        assert_eq!(parallel.guides(), sequential.guides());
        assert_eq!(parallel.guide_links(), sequential.guide_links());
        assert_eq!(parallel.dataguide_stats(), sequential.dataguide_stats());

        // Same query, same answers.
        let q = SedaQuery::parse(r#"(/country/name, *) AND (/sea/name, *)"#).unwrap();
        let seq_result = sequential.complete_results(&q, &ContextSelections::none(), &[]).unwrap();
        let par_result = parallel.complete_results(&q, &ContextSelections::none(), &[]).unwrap();
        assert_eq!(seq_result.rows, par_result.rows);
    }

    #[test]
    fn build_profile_reflects_the_build_shape() {
        let e = engine();
        let profile = e.build_profile();
        assert_eq!(profile.parallelism, 1);
        assert_eq!(profile.documents, 3);
        assert_eq!(profile.shards, 1);
        assert!(profile.total_secs > 0.0);
        assert_eq!(profile.merge_secs(), 0.0, "sequential path has no merge phase");
        assert!(!profile.render().is_empty());

        let collection =
            parse_collection(vec![("a.xml", "<a><x>1</x></a>"), ("b.xml", "<a><x>2</x></a>")])
                .unwrap();
        let parallel = SedaEngine::build(
            collection,
            Registry::new(),
            EngineConfig { parallelism: 2, ..EngineConfig::default() },
        )
        .unwrap();
        let profile = parallel.build_profile();
        assert_eq!(profile.parallelism, 2);
        assert_eq!(profile.shards, 2);
        assert!(profile.render().contains("2 docs"));
    }

    #[test]
    fn parallel_build_of_empty_collection_works() {
        let engine = SedaEngine::build(
            Collection::new(),
            Registry::new(),
            EngineConfig { parallelism: 4, ..EngineConfig::default() },
        )
        .unwrap();
        assert_eq!(engine.collection().len(), 0);
        assert!(engine.guides().is_empty());
    }

    #[test]
    fn cross_root_queries_use_the_graph_fallback() {
        // A query whose terms live in documents with different roots.
        let collection = parse_collection(vec![
            (
                "us.xml",
                r#"<country id="cty-us"><name>United States</name><population>298M</population></country>"#,
            ),
            (
                "sea.xml",
                r#"<sea id="sea-pac"><name>Pacific Ocean</name>
                     <bordering country_idref="cty-us"/></sea>"#,
            ),
        ])
        .unwrap();
        let e = SedaEngine::build(collection, Registry::new(), EngineConfig::default()).unwrap();
        let q = SedaQuery::parse(r#"(/country/name, *) AND (/sea/name, *)"#).unwrap();
        let result = e.complete_results(&q, &ContextSelections::none(), &[]).unwrap();
        assert_eq!(result.len(), 1, "country and sea are connected via the IDREF edge");
        let contents: Vec<String> =
            result.rows[0].iter().map(|(n, _)| e.collection().content(*n).unwrap()).collect();
        assert_eq!(contents, vec!["United States", "Pacific Ocean"]);
    }
}
