//! Per-request resource governance: budgets, deadlines and cancellation.
//!
//! The ROADMAP's serving-layer item calls for "per-request deadlines/limits
//! surfaced as `SedaError::Limit`" — this module is that contract.  A
//! [`Budget`] fixes ceilings on the resources a request may consume; a
//! [`RequestContext`] carries the budget (plus the request's start instant
//! and an optional [`CancelToken`]) through
//! [`crate::SedaReader::execute_governed`].  Ceilings are enforced at the
//! pipeline's existing counter sites — the Threshold-Algorithm loop in
//! `seda-topk`, the BFS probe ceiling in `seda-datagraph`, the
//! complete-result enumeration, twig match and cube materialisation in the
//! reader/engine — and a breach surfaces either as a typed
//! [`SedaError::Limit`] naming the exhausted resource, or, when the caller
//! opts in via [`RequestContext::allow_degraded`], as a partial response
//! flagged [`crate::ExecProfile::degraded`] carrying the exact prefix
//! computed before the breach.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use seda_topk::{LimitBreach, SearchLimits};

use crate::error::SedaError;

/// Resource ceilings for one request.  `None` means unlimited; the default
/// budget is unlimited in every dimension, so governance is strictly opt-in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline, measured from [`RequestContext`] creation.
    pub deadline: Option<Duration>,
    /// Ceiling on sorted posting-list accesses of the top-k search.
    pub max_sorted_accesses: Option<usize>,
    /// Ceiling on random-access score probes of the top-k search.
    pub max_random_accesses: Option<usize>,
    /// Ceiling on candidate tuples scored by the top-k search.
    pub max_candidates: Option<usize>,
    /// Ceiling on label probes spent on connectivity checks; also arms the
    /// traversal BFS probe ceiling so oracle fallbacks stay bounded.
    pub max_label_probes: Option<u64>,
    /// Ceiling on result rows across every statement shape.
    pub max_rows: Option<usize>,
    /// Ceiling on twig pattern matches materialised by `TWIG` statements.
    pub max_twig_matches: Option<usize>,
    /// Ceiling on cells materialised by `CUBE` statements.
    pub max_cube_cells: Option<usize>,
}

impl Budget {
    /// The unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the sorted-access ceiling.
    pub fn with_max_sorted_accesses(mut self, max: usize) -> Self {
        self.max_sorted_accesses = Some(max);
        self
    }

    /// Sets the random-access ceiling.
    pub fn with_max_random_accesses(mut self, max: usize) -> Self {
        self.max_random_accesses = Some(max);
        self
    }

    /// Sets the candidate-tuple ceiling.
    pub fn with_max_candidates(mut self, max: usize) -> Self {
        self.max_candidates = Some(max);
        self
    }

    /// Sets the label-probe ceiling.
    pub fn with_max_label_probes(mut self, max: u64) -> Self {
        self.max_label_probes = Some(max);
        self
    }

    /// Sets the result-row ceiling.
    pub fn with_max_rows(mut self, max: usize) -> Self {
        self.max_rows = Some(max);
        self
    }

    /// Sets the twig-match ceiling.
    pub fn with_max_twig_matches(mut self, max: usize) -> Self {
        self.max_twig_matches = Some(max);
        self
    }

    /// Sets the cube-cell ceiling.
    pub fn with_max_cube_cells(mut self, max: usize) -> Self {
        self.max_cube_cells = Some(max);
        self
    }
}

/// A monotonic stopwatch — the sanctioned wall-clock handle for timing code
/// outside this module.
///
/// The repository's custom lint (`cargo xtask lint`) forbids raw
/// `Instant::now()` calls outside `govern` and bench code so every clock read
/// is attributable to either request governance or explicit profiling.
/// Timing-hungry call sites (build phases, plan/exec splits) start a
/// `Stopwatch` and read elapsed seconds from it.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current instant.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Seconds elapsed since the stopwatch started.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Reads the clock once, returning the seconds elapsed so far and a new
    /// stopwatch anchored at that same read — the allocation-free way to time
    /// consecutive phases without drift between them.
    pub fn split(&self) -> (f64, Stopwatch) {
        let now = Instant::now();
        ((now - self.start).as_secs_f64(), Stopwatch { start: now })
    }
}

/// Shared cancellation flag: clone it, hand one clone to the request's
/// [`RequestContext`], and call [`CancelToken::cancel`] from any thread to
/// stop the request at its next governance check (surfaced as
/// [`SedaError::Cancelled`]).
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; checked cooperatively at governance sites.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// The shared flag, for plumbing into [`SearchLimits::cancel`].
    pub(crate) fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.0)
    }
}

/// Everything governing one request's execution: the [`Budget`], the start
/// instant the deadline counts from, the degraded-response opt-in and an
/// optional [`CancelToken`].
#[derive(Debug, Clone)]
pub struct RequestContext {
    budget: Budget,
    degraded_ok: bool,
    started: Instant,
    cancel: Option<CancelToken>,
}

impl RequestContext {
    /// A context enforcing `budget`, with the deadline clock starting now.
    pub fn new(budget: Budget) -> Self {
        RequestContext { budget, degraded_ok: false, started: Instant::now(), cancel: None }
    }

    /// A context with no ceilings at all (what ungoverned entry points use).
    pub fn unlimited() -> Self {
        RequestContext::new(Budget::unlimited())
    }

    /// Opts into degraded responses: a budget breach then returns the exact
    /// prefix computed so far with [`crate::ExecProfile::degraded`] set,
    /// instead of [`SedaError::Limit`].  Cancellation still errors.
    pub fn allow_degraded(mut self) -> Self {
        self.degraded_ok = true;
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The governing budget.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// True when the caller opted into degraded (partial-prefix) responses.
    pub fn degraded_allowed(&self) -> bool {
        self.degraded_ok
    }

    /// The instant the deadline counts from.
    pub fn started(&self) -> Instant {
        self.started
    }

    /// True once the attached token (if any) has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().map(CancelToken::is_cancelled).unwrap_or(false)
    }

    /// Errors with [`SedaError::Cancelled`] once the token is cancelled.
    pub(crate) fn check_cancelled(&self) -> Result<(), SedaError> {
        if self.is_cancelled() {
            Err(SedaError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// The deadline breach, if the wall clock has already run out.
    pub(crate) fn deadline_breach(&self) -> Option<LimitBreach> {
        let deadline = self.budget.deadline?;
        let elapsed = self.started.elapsed();
        (elapsed >= deadline).then_some(LimitBreach {
            resource: "deadline",
            spent: elapsed.as_millis() as u64,
            budget: deadline.as_millis() as u64,
        })
    }

    /// The result-row breach for a payload of `rows` rows.
    pub(crate) fn row_breach(&self, rows: usize) -> Option<LimitBreach> {
        let max = self.budget.max_rows?;
        (rows > max).then_some(LimitBreach {
            resource: "result rows",
            spent: rows as u64,
            budget: max as u64,
        })
    }

    /// The twig-match breach for a twig result of `matches` rows.
    pub(crate) fn twig_breach(&self, matches: usize) -> Option<LimitBreach> {
        let max = self.budget.max_twig_matches?;
        (matches > max).then_some(LimitBreach {
            resource: "twig matches",
            spent: matches as u64,
            budget: max as u64,
        })
    }

    /// The cube-cell breach for a cube of `cells` cells.
    pub(crate) fn cube_breach(&self, cells: usize) -> Option<LimitBreach> {
        let max = self.budget.max_cube_cells?;
        (cells > max).then_some(LimitBreach {
            resource: "cube cells",
            spent: cells as u64,
            budget: max as u64,
        })
    }

    /// The [`SearchLimits`] to hand the Threshold-Algorithm searcher.
    pub(crate) fn search_limits(&self) -> SearchLimits {
        SearchLimits {
            deadline: self.budget.deadline.map(|d| self.started + d),
            max_sorted_accesses: self.budget.max_sorted_accesses,
            max_random_accesses: self.budget.max_random_accesses,
            max_tuples_scored: self.budget.max_candidates,
            max_label_probes: self.budget.max_label_probes,
            cancel: self.cancel.as_ref().map(CancelToken::flag),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited_and_builders_set_fields() {
        assert_eq!(Budget::default(), Budget::unlimited());
        let b = Budget::unlimited()
            .with_deadline(Duration::from_millis(5))
            .with_max_sorted_accesses(1)
            .with_max_random_accesses(2)
            .with_max_candidates(3)
            .with_max_label_probes(4)
            .with_max_rows(5)
            .with_max_twig_matches(6)
            .with_max_cube_cells(7);
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
        assert_eq!(b.max_sorted_accesses, Some(1));
        assert_eq!(b.max_random_accesses, Some(2));
        assert_eq!(b.max_candidates, Some(3));
        assert_eq!(b.max_label_probes, Some(4));
        assert_eq!(b.max_rows, Some(5));
        assert_eq!(b.max_twig_matches, Some(6));
        assert_eq!(b.max_cube_cells, Some(7));
    }

    #[test]
    fn stopwatch_split_is_monotone() {
        let w = Stopwatch::start();
        let (elapsed, next) = w.split();
        assert!(elapsed >= 0.0);
        assert!(next.elapsed_secs() <= w.elapsed_secs());
        assert!(w.elapsed_secs() >= elapsed);
    }

    #[test]
    fn cancel_token_flips_exactly_once_set() {
        let token = CancelToken::new();
        let ctx = RequestContext::unlimited().with_cancel_token(token.clone());
        assert!(!ctx.is_cancelled());
        assert!(ctx.check_cancelled().is_ok());
        token.cancel();
        assert!(ctx.is_cancelled());
        assert_eq!(ctx.check_cancelled(), Err(SedaError::Cancelled));
    }

    #[test]
    fn deadline_breach_reports_elapsed_and_budget_millis() {
        let ctx = RequestContext::new(Budget::unlimited().with_deadline(Duration::ZERO));
        let breach = ctx.deadline_breach().expect("a zero deadline is always breached");
        assert_eq!(breach.resource, "deadline");
        let relaxed =
            RequestContext::new(Budget::unlimited().with_deadline(Duration::from_secs(3600)));
        assert!(relaxed.deadline_breach().is_none());
        assert!(RequestContext::unlimited().deadline_breach().is_none());
    }

    #[test]
    fn shape_breaches_fire_only_past_their_ceiling() {
        let ctx = RequestContext::new(
            Budget::unlimited().with_max_rows(2).with_max_twig_matches(3).with_max_cube_cells(4),
        );
        assert!(ctx.row_breach(2).is_none());
        assert_eq!(ctx.row_breach(3).unwrap().resource, "result rows");
        assert!(ctx.twig_breach(3).is_none());
        assert_eq!(ctx.twig_breach(4).unwrap().resource, "twig matches");
        assert!(ctx.cube_breach(4).is_none());
        assert_eq!(ctx.cube_breach(5).unwrap().resource, "cube cells");
        let unlimited = RequestContext::unlimited();
        assert!(unlimited.row_breach(usize::MAX).is_none());
    }

    #[test]
    fn search_limits_mirror_the_budget() {
        let ctx = RequestContext::new(
            Budget::unlimited()
                .with_deadline(Duration::from_secs(60))
                .with_max_sorted_accesses(10)
                .with_max_candidates(20)
                .with_max_label_probes(30),
        )
        .with_cancel_token(CancelToken::new());
        let limits = ctx.search_limits();
        assert!(limits.deadline.is_some());
        assert_eq!(limits.max_sorted_accesses, Some(10));
        assert_eq!(limits.max_random_accesses, None);
        assert_eq!(limits.max_tuples_scored, Some(20));
        assert_eq!(limits.max_label_probes, Some(30));
        assert!(limits.cancel.is_some());
        assert!(RequestContext::unlimited().search_limits().is_unlimited());
    }
}
