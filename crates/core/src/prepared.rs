//! Prepared statements: plan once, execute many.
//!
//! [`SedaReader::prepare`](crate::SedaReader::prepare) compiles a
//! [`SedaRequest`](crate::SedaRequest) through the full optimizer pipeline
//! and wraps the result in a [`PreparedStatement`] that additionally owns
//! the per-statement reusable state a single execution would rebuild from
//! scratch: the materialized sorted posting lists of the search terms and a
//! compactness memo shared across executions.  Re-executing a prepared
//! statement skips parsing, validation, the rewrite passes, sorted access
//! resolution and — after the first run — most connectivity label probes,
//! while returning byte-identical payloads to a fresh
//! [`execute`](crate::SedaReader::execute).
//!
//! ```
//! use seda_core::{EngineConfig, SedaEngine, SedaRequest};
//! use seda_olap::Registry;
//! use seda_xmlstore::parse_collection;
//!
//! let collection = parse_collection(vec![("us.xml",
//!     r#"<country><name>United States</name><year>2006</year></country>"#)]).unwrap();
//! let engine = SedaEngine::build(collection, Registry::new(), EngineConfig::default()).unwrap();
//! let mut reader = engine.reader();
//! let request = SedaRequest::parse(r#"TOPK 5 FOR (name, "United States")"#).unwrap();
//! let mut prepared = reader.prepare(&request).unwrap();
//! for _ in 0..3 {
//!     let response = prepared.execute(&mut reader).unwrap();
//!     assert_eq!(response.top_k().unwrap().tuples.len(), 1);
//! }
//! assert_eq!(prepared.executions(), 3);
//! ```

use seda_topk::{MaterializedTerms, SearchStrategy, TupleScoreCache};

use crate::error::SedaError;
use crate::govern::RequestContext;
use crate::optimize;
use crate::plan::{PlanStep, QueryPlan};
use crate::reader::SedaReader;
use crate::request::Statement;
use crate::response::SedaResponse;

/// A compiled, reusable statement: the optimized [`QueryPlan`] plus the
/// cross-execution scratch (materialized term lists, compactness memo) that
/// makes repeated execution cheap.
///
/// Prepared statements are engine-scoped but reader-agnostic: prepare once,
/// then execute through any reader of the same engine.
pub struct PreparedStatement {
    pub(crate) plan: QueryPlan,
    /// Sorted posting lists of the plan's search terms, resolved once at
    /// prepare time (`None` for statements without a search phase).
    pub(crate) materialized: Option<MaterializedTerms>,
    /// Compactness memo shared across executions of this statement.
    pub(crate) cache: TupleScoreCache,
    pub(crate) executions: u64,
}

impl PreparedStatement {
    /// The optimized plan this statement executes.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The plan transcript (steps, rewrite trail, compiled program).
    pub fn explain(&self) -> String {
        self.plan.explain()
    }

    /// How many times this statement has executed successfully.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Number of memoized compactness entries accumulated so far.
    pub fn cached_scores(&self) -> usize {
        self.cache.len()
    }

    /// Re-parameterizes `k` without replanning, for the statement shapes
    /// that carry one (`TOPK k`, `CONNECTIONS k`).  The plan shape is
    /// unaffected — only the result bound changes — so the materialized
    /// term lists and the compactness memo stay valid.  Returns `false`
    /// (and changes nothing) for statements without a `k` parameter.
    pub fn set_k(&mut self, k: usize) -> bool {
        match &mut self.plan.statement {
            Statement::TopK { k: slot } | Statement::ConnectionSummary { k: slot } => *slot = k,
            _ => return false,
        }
        self.plan.topk.k = k;
        // The single-keyword rewrite is k-sensitive (the sorted-prefix scan
        // is exact only while the candidate bound covers k); re-derive it.
        let scan = self.plan.term_inputs.len() == 1 && self.plan.topk.candidate_limit >= k;
        self.plan.strategy =
            if scan { SearchStrategy::SingleTermScan } else { SearchStrategy::Join };
        let candidate_limit = self.plan.topk.candidate_limit;
        for step in &mut self.plan.steps {
            if matches!(step, PlanStep::ThresholdJoin { .. } | PlanStep::SingleTermScan { .. }) {
                *step = if scan {
                    PlanStep::SingleTermScan { k }
                } else {
                    PlanStep::ThresholdJoin { k, candidate_limit }
                };
            }
        }
        self.plan.trail.push(format!("set-k: re-parameterized to k={k}"));
        self.plan.program = optimize::compile(&self.plan);
        true
    }

    /// Executes this statement through a reader of the same engine
    /// (ungoverned; see [`PreparedStatement::execute_governed`]).
    pub fn execute(&mut self, reader: &mut SedaReader<'_>) -> Result<SedaResponse, SedaError> {
        reader.execute_prepared(self)
    }

    /// Executes this statement under a per-request [`RequestContext`].
    pub fn execute_governed(
        &mut self,
        reader: &mut SedaReader<'_>,
        ctx: &RequestContext,
    ) -> Result<SedaResponse, SedaError> {
        reader.execute_prepared_governed(self, ctx)
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::{EngineConfig, SedaEngine};
    use crate::request::SedaRequest;
    use seda_olap::Registry;
    use seda_xmlstore::parse_collection;

    /// Warm-cache executions legitimately skip connectivity label probes,
    /// so payload comparisons zero that one counter; everything else —
    /// tuples, scores, every other counter — must match byte for byte.
    fn normalized(mut payload: crate::ResponsePayload) -> crate::ResponsePayload {
        match &mut payload {
            crate::ResponsePayload::TopK(result) => result.stats.label_probes = 0,
            crate::ResponsePayload::Connections { top_k, .. } => top_k.stats.label_probes = 0,
            _ => {}
        }
        payload
    }

    fn engine() -> SedaEngine {
        let collection = parse_collection(vec![
            (
                "us.xml",
                r#"<country><name>United States</name><year>2006</year>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                       <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                     </import_partners></economy></country>"#,
            ),
            (
                "mx.xml",
                r#"<country><name>Mexico</name><year>2006</year>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>9</percentage></item>
                     </import_partners></economy></country>"#,
            ),
        ])
        .unwrap();
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())
            .unwrap()
    }

    #[test]
    fn prepared_execution_matches_fresh_execution() {
        let e = engine();
        let mut reader = e.reader();
        let texts = [
            "TOPK 5 FOR (trade_country, *) AND (percentage, *)",
            "CONTEXTS FOR (trade_country, *)",
            "CONNECTIONS 5 FOR (trade_country, *) AND (percentage, *)",
            "RESULTS FOR (trade_country, *) AND (percentage, *)",
            "TWIG /country/economy//trade_country",
        ];
        for text in texts {
            let request = SedaRequest::parse(text).unwrap();
            let fresh = reader.execute(&request).unwrap();
            let mut prepared = reader.prepare(&request).unwrap();
            for _ in 0..3 {
                let reused = prepared.execute(&mut reader).unwrap();
                assert_eq!(normalized(reused.payload), normalized(fresh.payload.clone()), "{text}");
            }
            assert_eq!(prepared.executions(), 3, "{text}");
        }
    }

    #[test]
    fn set_k_reparameterizes_without_replanning() {
        let e = engine();
        let mut reader = e.reader();
        let mut prepared = reader
            .prepare(
                &SedaRequest::parse("TOPK 1 FOR (trade_country, *) AND (percentage, *)").unwrap(),
            )
            .unwrap();
        assert_eq!(prepared.execute(&mut reader).unwrap().top_k().unwrap().tuples.len(), 1);
        assert!(prepared.set_k(3));
        let widened = prepared.execute(&mut reader).unwrap();
        let fresh = reader
            .execute(
                &SedaRequest::parse("TOPK 3 FOR (trade_country, *) AND (percentage, *)").unwrap(),
            )
            .unwrap();
        assert_eq!(normalized(widened.payload), normalized(fresh.payload));
        assert!(prepared.explain().contains("set-k: re-parameterized to k=3"));
        // Statements without a k parameter refuse the re-parameterization.
        let mut twig = reader.prepare(&SedaRequest::parse("TWIG /country/name").unwrap()).unwrap();
        assert!(!twig.set_k(3));
    }

    #[test]
    fn set_k_reverts_the_scan_when_the_candidate_bound_no_longer_covers_k() {
        let collection = parse_collection(vec![(
            "us.xml",
            r#"<country><name>United States</name><year>2006</year></country>"#,
        )])
        .unwrap();
        let config = EngineConfig {
            topk: seda_topk::TopKConfig { candidate_limit: 2, ..Default::default() },
            ..EngineConfig::default()
        };
        let e = SedaEngine::build(collection, Registry::new(), config).unwrap();
        let mut reader = e.reader();
        let mut prepared =
            reader.prepare(&SedaRequest::parse("TOPK 1 FOR (name, *)").unwrap()).unwrap();
        assert!(prepared.explain().contains("single-term sorted-prefix scan"));
        assert!(prepared.set_k(5));
        // k=5 exceeds the candidate bound of 2: the scan is no longer exact.
        assert!(prepared.explain().contains("threshold-algorithm rank join: k=5"));
        let fresh = reader.execute(&SedaRequest::parse("TOPK 5 FOR (name, *)").unwrap()).unwrap();
        assert_eq!(prepared.execute(&mut reader).unwrap().payload, fresh.payload);
    }

    #[test]
    fn the_compactness_memo_fills_on_the_first_execution() {
        let e = engine();
        let mut reader = e.reader();
        let mut prepared = reader
            .prepare(
                &SedaRequest::parse("TOPK 5 FOR (trade_country, *) AND (percentage, *)").unwrap(),
            )
            .unwrap();
        assert_eq!(prepared.cached_scores(), 0);
        prepared.execute(&mut reader).unwrap();
        assert!(prepared.cached_scores() > 0);
    }
}
