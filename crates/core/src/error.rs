//! The unified error taxonomy of the query facade.
//!
//! Every fallible operation on the public query path — parsing a textual
//! request, planning it, executing it, or driving a [`crate::SedaSession`]
//! out of order — returns a [`SedaError`].  The substrate crates keep their
//! own error types ([`QueryError`], [`TwigParseError`], [`CubeError`],
//! [`XmlStoreError`], …); `From` conversions lift them into the taxonomy so
//! `?` works across every layer of the Fig. 4 pipeline.

use std::fmt;

use seda_olap::CubeError;
use seda_textindex::QueryParseError;
use seda_twigjoin::TwigParseError;
use seda_xmlstore::XmlStoreError;

use crate::query::QueryError;
use crate::session::SessionStage;

/// Everything that can go wrong on the SEDA query path.
#[derive(Debug, Clone, PartialEq)]
pub enum SedaError {
    /// The textual request or one of its components failed to parse.
    Parse(QueryError),
    /// A twig path expression failed to compile.
    Twig(TwigParseError),
    /// A session operation was invoked in the wrong stage of the Fig. 6
    /// control flow (e.g. refining contexts before submitting a query).
    Stage {
        /// The operation that was attempted.
        operation: &'static str,
        /// What the operation needs to have happened first.
        required: &'static str,
        /// The stage the session was actually in.
        stage: SessionStage,
    },
    /// The statement requires query terms but the request carries none.
    MissingQuery {
        /// The statement that was attempted.
        statement: &'static str,
    },
    /// A root-to-leaf path string does not exist in the collection.
    UnknownPath(String),
    /// A context selection referenced a query term that does not exist.
    UnknownTerm {
        /// The referenced term index.
        term: usize,
        /// How many terms the query has.
        terms: usize,
    },
    /// A cube statement referenced a fact table the star schema does not
    /// contain.
    UnknownFact(String),
    /// The cube engine rejected the aggregation.
    Cube(CubeError),
    /// The storage layer failed (parse error, unknown node, …).
    Store(XmlStoreError),
    /// A configured limit or a per-request [`crate::Budget`] ceiling was
    /// exceeded; refine the query, raise the budget, or opt into degraded
    /// (partial-prefix) responses instead of silently clipping the answer.
    Limit {
        /// The exhausted resource (e.g. `"complete-result tuples"`,
        /// `"deadline"`, `"label probes"`).
        resource: &'static str,
        /// How much of the resource was consumed when the request stopped
        /// (for `"deadline"`, elapsed milliseconds).
        spent: usize,
        /// The configured ceiling (for `"deadline"`, budget milliseconds).
        budget: usize,
    },
    /// A worker or query path panicked; the panic was contained at the
    /// governance boundary and the engine remains fully serviceable.
    Internal(String),
    /// The request was cancelled through its [`crate::CancelToken`].
    Cancelled,
}

impl fmt::Display for SedaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SedaError::Parse(e) => write!(f, "{e}"),
            SedaError::Twig(e) => write!(f, "{e}"),
            SedaError::Stage { operation, required, stage } => {
                write!(f, "{operation} requires {required}, but the session stage is {stage:?}")
            }
            SedaError::MissingQuery { statement } => {
                write!(f, "{statement} requires query terms, but the request has none")
            }
            SedaError::UnknownPath(path) => {
                write!(f, "path {path:?} does not exist in the collection")
            }
            SedaError::UnknownTerm { term, terms } => {
                write!(f, "selection references term {term}, but the query has {terms} term(s)")
            }
            SedaError::UnknownFact(fact) => {
                write!(f, "the derived star schema has no fact table {fact:?}")
            }
            SedaError::Cube(e) => write!(f, "{e}"),
            SedaError::Store(e) => write!(f, "{e}"),
            SedaError::Limit { resource, spent, budget } => {
                write!(
                    f,
                    "{resource} reached {spent}, exceeding the configured limit of {budget}; \
                     refine the query or raise the budget"
                )
            }
            SedaError::Internal(detail) => {
                write!(f, "internal error (contained; the engine remains serviceable): {detail}")
            }
            SedaError::Cancelled => write!(f, "request cancelled by its caller"),
        }
    }
}

impl From<seda_topk::LimitBreach> for SedaError {
    fn from(b: seda_topk::LimitBreach) -> Self {
        SedaError::Limit {
            resource: b.resource,
            spent: b.spent as usize,
            budget: b.budget as usize,
        }
    }
}

impl std::error::Error for SedaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SedaError::Parse(e) => Some(e),
            SedaError::Twig(e) => Some(e),
            SedaError::Cube(e) => Some(e),
            SedaError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for SedaError {
    fn from(e: QueryError) -> Self {
        SedaError::Parse(e)
    }
}

impl From<QueryParseError> for SedaError {
    fn from(e: QueryParseError) -> Self {
        SedaError::Parse(QueryError::Search(e))
    }
}

impl From<TwigParseError> for SedaError {
    fn from(e: TwigParseError) -> Self {
        SedaError::Twig(e)
    }
}

impl From<CubeError> for SedaError {
    fn from(e: CubeError) -> Self {
        SedaError::Cube(e)
    }
}

impl From<XmlStoreError> for SedaError {
    fn from(e: XmlStoreError) -> Self {
        SedaError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_renders_a_message() {
        let cases: Vec<(SedaError, &str)> = vec![
            (SedaError::Parse(QueryError::Malformed("x".into())), "malformed SEDA query"),
            (
                SedaError::Stage {
                    operation: "complete_results",
                    required: "a submitted query",
                    stage: SessionStage::Empty,
                },
                "requires a submitted query",
            ),
            (SedaError::MissingQuery { statement: "TOPK" }, "requires query terms"),
            (SedaError::UnknownPath("/a/b".into()), "does not exist"),
            (SedaError::UnknownTerm { term: 3, terms: 2 }, "term 3"),
            (SedaError::UnknownFact("gdp".into()), "no fact table"),
            (SedaError::Cube(CubeError::UnknownMeasure("m".into())), "unknown measure"),
            (SedaError::Store(XmlStoreError::EmptyDocument), "no root element"),
            (
                SedaError::Limit { resource: "tuples", spent: 99, budget: 10 },
                "exceeding the configured limit",
            ),
            (SedaError::Internal("worker panicked".into()), "remains serviceable"),
            (SedaError::Cancelled, "cancelled"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err} should contain {needle:?}");
        }
    }

    #[test]
    fn from_conversions_wrap_substrate_errors() {
        let e: SedaError = QueryError::Malformed("m".into()).into();
        assert!(matches!(e, SedaError::Parse(_)));
        let e: SedaError = CubeError::UnknownDimension("d".into()).into();
        assert!(matches!(e, SedaError::Cube(_)));
        let e: SedaError = XmlStoreError::EmptyDocument.into();
        assert!(matches!(e, SedaError::Store(_)));
        let e: SedaError = seda_twigjoin::TwigPattern::parse("").unwrap_err().into();
        assert!(matches!(e, SedaError::Twig(_)));
        let e: SedaError =
            seda_topk::LimitBreach { resource: "label probes", spent: 5, budget: 1 }.into();
        assert!(matches!(e, SedaError::Limit { resource: "label probes", spent: 5, budget: 1 }));
    }

    #[test]
    fn wrapped_errors_expose_their_source() {
        use std::error::Error;
        let err = SedaError::Cube(CubeError::UnknownMeasure("m".into()));
        assert!(err.source().is_some());
        let err = SedaError::UnknownPath("/x".into());
        assert!(err.source().is_none());
    }
}
