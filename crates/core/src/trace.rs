//! Hierarchical span tracing of the request and build lifecycles.
//!
//! A [`Tracer`] is a lightweight per-owner span recorder: the reader path
//! owns one per [`crate::SedaReader`] (so tracing never contends across
//! threads) and the build path runs one per [`crate::SedaEngine::build`].
//! Spans are entered and exited around the pipeline's phases — parse, plan,
//! each plan step, twig evaluation, star-schema derivation, cube
//! aggregation, and the build's shard/merge/link/verify phases — and land as
//! flat [`SpanRecord`]s (name, depth, start offset, wall time, counter
//! deltas) in [`crate::ExecProfile::spans`] and
//! [`crate::BuildProfile::spans`].
//!
//! Design constraints, in order:
//!
//! - **Near-zero cost when disabled** (the reader default): [`Tracer::enter`]
//!   is one branch returning a sentinel [`SpanToken`], and every exit
//!   short-circuits on it.
//! - **Unwind safety**: [`Tracer::exit`] closes *every* span opened after its
//!   token, so a panic unwound through `catch_unwind` (or a failpoint-armed
//!   panic) can never leave the open stack corrupted — the outer exit (or
//!   [`Tracer::reset`], called next to the reader's scratch rebuild) squares
//!   the books.  The proptest suite pins this for arbitrary enter/exit
//!   sequences.
//! - **Bounded storage**: at most [`Tracer::CAP`] spans are kept per request;
//!   further enters are counted in [`Tracer::dropped`] rather than recorded.
//!
//! Timestamps come from the sanctioned [`Stopwatch`] discipline (`cargo
//! xtask lint` confines raw `Instant::now` reads to `govern`), as offsets
//! from the tracer's last [`Tracer::begin`].

use serde::{Deserialize, Serialize};

use crate::govern::Stopwatch;
use crate::response::ExecProfile;

/// The span-name taxonomy.  Spans are named through these constants so
/// transcripts and tests never drift on spelling.
pub mod span {
    /// Textual request parsing ([`crate::SedaRequest::parse`]).
    pub const PARSE: &str = "parse";
    /// Planning ([`crate::SedaEngine::plan`]).
    pub const PLAN: &str = "plan";
    /// Whole plan execution (parent of the per-step spans).
    pub const EXECUTE: &str = "execute";
    /// Threshold-Algorithm top-k search (sorted/random access batches and
    /// oracle probes happen inside; their counters land in the span delta).
    pub const SEARCH: &str = "search";
    /// Context-summary bucket generation.
    pub const CONTEXT_SUMMARY: &str = "context-summary";
    /// Pairwise connection discovery over a top-k result.
    pub const DISCOVER_CONNECTIONS: &str = "discover-connections";
    /// Complete-result enumeration (context combinations × twig/graph rows).
    pub const COMPLETE_RESULTS: &str = "complete-results";
    /// Structural twig evaluation.
    pub const TWIG_EVALUATE: &str = "twig-evaluate";
    /// Star-schema derivation and instantiation.
    pub const DERIVE_STAR_SCHEMA: &str = "derive-star-schema";
    /// Cube aggregation over the fact table.
    pub const AGGREGATE: &str = "aggregate";
    /// Data-graph construction (build path).
    pub const BUILD_GRAPH: &str = "build:data-graph";
    /// Node full-text index construction (build path).
    pub const BUILD_NODE_INDEX: &str = "build:node-index";
    /// Keyword→context index construction (build path).
    pub const BUILD_CONTEXT_INDEX: &str = "build:context-index";
    /// Dataguide computation and threshold merge (build path).
    pub const BUILD_GUIDES: &str = "build:dataguides";
    /// Inter-dataguide link derivation (build path).
    pub const BUILD_LINKS: &str = "build:guide-links";
    /// Post-build structural audit (build path).
    pub const BUILD_VERIFY: &str = "build:audit-verify";
    /// Per-document shard fan-out phase (nested under a build span).
    pub const SHARD: &str = "shard";
    /// Shard merge phase (nested under a build span).
    pub const MERGE: &str = "merge";
}

/// Work-counter deltas attributed to one span: how much of the profile's
/// total each phase consumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanCounters {
    /// Sorted posting-list accesses within the span.
    pub sorted_accesses: usize,
    /// Random-access score probes within the span.
    pub random_accesses: usize,
    /// Candidate tuples scored within the span.
    pub tuples_scored: usize,
    /// Connectivity-label entries scanned within the span.
    pub label_probes: u64,
    /// Document nodes visited by twig evaluation within the span.
    pub nodes_visited: usize,
    /// Result rows (or fact rows scanned) produced within the span.
    pub rows: usize,
}

impl SpanCounters {
    /// The counter delta between two profile observations (`after` minus
    /// `before`), saturating at zero.
    pub fn delta(before: &ExecProfile, after: &ExecProfile) -> Self {
        SpanCounters {
            sorted_accesses: after.sorted_accesses.saturating_sub(before.sorted_accesses),
            random_accesses: after.random_accesses.saturating_sub(before.random_accesses),
            tuples_scored: after.tuples_scored.saturating_sub(before.tuples_scored),
            label_probes: after.label_probes.saturating_sub(before.label_probes),
            nodes_visited: 0,
            rows: 0,
        }
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == SpanCounters::default()
    }

    /// Renders the non-zero counters as a compact `k=v` list (empty string
    /// when all are zero).
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        for (name, value) in [
            ("sorted", self.sorted_accesses as u64),
            ("random", self.random_accesses as u64),
            ("scored", self.tuples_scored as u64),
            ("probes", self.label_probes),
            ("visited", self.nodes_visited as u64),
            ("rows", self.rows as u64),
        ] {
            if value > 0 {
                parts.push(format!("{name}={value}"));
            }
        }
        parts.join(" ")
    }
}

/// One closed span: a named phase with its nesting depth, start offset from
/// the tracer's epoch, measured wall time and attributed counter deltas.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Phase name (see [`span`]).
    pub name: String,
    /// Nesting depth (0 = top level).
    pub depth: usize,
    /// Seconds from the tracer's epoch to span entry.
    pub start_secs: f64,
    /// Seconds spent inside the span.
    pub wall_secs: f64,
    /// Work-counter deltas attributed to the span.
    pub counters: SpanCounters,
}

/// Handle returned by [`Tracer::enter`], consumed by [`Tracer::exit`] /
/// [`Tracer::exit_with`].  A disabled (or capacity-dropped) enter returns a
/// sentinel token whose exit is free.
#[derive(Debug, Clone, Copy)]
#[must_use = "unexited spans are closed only at take_spans()/reset()"]
pub struct SpanToken {
    /// Open-stack depth at enter time; exit truncates back to it.
    open_depth: usize,
    /// Index of the span in the record buffer, `usize::MAX` when sentinel.
    index: usize,
}

impl SpanToken {
    const DISABLED: SpanToken = SpanToken { open_depth: 0, index: usize::MAX };
}

/// A per-owner hierarchical span recorder (see the module docs).
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    clock: Stopwatch,
    spans: Vec<SpanRecord>,
    /// Indices of currently open spans, innermost last.
    open: Vec<usize>,
    dropped: usize,
}

impl Tracer {
    /// Bound on spans kept per request; enters past it are counted in
    /// [`Tracer::dropped`] instead of recorded.
    pub const CAP: usize = 512;

    /// A disabled tracer (the reader default — enters cost one branch).
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            clock: Stopwatch::start(),
            spans: Vec::new(),
            open: Vec::new(),
            dropped: 0,
        }
    }

    /// An enabled tracer (what the build path and `EXPLAIN ANALYZE` use).
    pub fn enabled() -> Self {
        let mut tracer = Tracer::disabled();
        tracer.enabled = true;
        tracer
    }

    /// Turns recording on or off.  Open spans and records are kept; callers
    /// toggling mid-request should [`Tracer::reset`] first.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// True when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Spans dropped over [`Tracer::CAP`] since the last begin/reset.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Number of currently open spans.
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// Starts a fresh trace: clears all records and open spans and re-anchors
    /// the epoch clock.
    pub fn begin(&mut self) {
        self.spans.clear();
        self.open.clear();
        self.dropped = 0;
        self.clock = Stopwatch::start();
    }

    /// [`Tracer::begin`], but only when nothing has been recorded yet — the
    /// re-entrant form used by inner pipeline layers that may or may not run
    /// under an outer span.
    pub fn begin_if_idle(&mut self) {
        if self.spans.is_empty() && self.open.is_empty() {
            self.begin();
        }
    }

    /// Opens a span named `name`; returns the token its exit consumes.
    pub fn enter(&mut self, name: &str) -> SpanToken {
        if !self.enabled {
            return SpanToken::DISABLED;
        }
        if self.spans.len() >= Self::CAP {
            self.dropped += 1;
            return SpanToken::DISABLED;
        }
        let index = self.spans.len();
        self.spans.push(SpanRecord {
            name: name.to_string(),
            depth: self.open.len(),
            start_secs: self.clock.elapsed_secs(),
            wall_secs: 0.0,
            counters: SpanCounters::default(),
        });
        let open_depth = self.open.len();
        self.open.push(index);
        SpanToken { open_depth, index }
    }

    /// Closes the token's span (and any span opened after it that was never
    /// exited — the unwind-safety guarantee) with zero counter deltas.
    pub fn exit(&mut self, token: SpanToken) {
        self.exit_with(token, SpanCounters::default());
    }

    /// [`Tracer::exit`], attributing `counters` to the token's span.
    pub fn exit_with(&mut self, token: SpanToken, counters: SpanCounters) {
        if token.index == usize::MAX {
            return;
        }
        let now = self.clock.elapsed_secs();
        while self.open.len() > token.open_depth {
            let Some(index) = self.open.pop() else { break };
            if let Some(record) = self.spans.get_mut(index) {
                record.wall_secs = (now - record.start_secs).max(0.0);
                if index == token.index {
                    record.counters = counters;
                }
            }
        }
    }

    /// Closes any span still open (with the current clock) and drains the
    /// records, leaving the tracer idle.
    pub fn take_spans(&mut self) -> Vec<SpanRecord> {
        let now = self.clock.elapsed_secs();
        while let Some(index) = self.open.pop() {
            if let Some(record) = self.spans.get_mut(index) {
                record.wall_secs = (now - record.start_secs).max(0.0);
            }
        }
        self.dropped = 0;
        std::mem::take(&mut self.spans)
    }

    /// Discards all records and open spans (called next to the reader's
    /// scratch rebuild after a contained panic, so a poisoned trace never
    /// leaks into the next request).
    pub fn reset(&mut self) {
        self.spans.clear();
        self.open.clear();
        self.dropped = 0;
    }
}

/// Renders one span tree as indented transcript lines (two spaces per
/// nesting level, wall time in milliseconds, non-zero counters appended).
pub fn render_spans(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for record in spans {
        let indent = "  ".repeat(record.depth + 1);
        let counters = record.counters.render();
        let suffix = if counters.is_empty() { String::new() } else { format!(" — {counters}") };
        out.push_str(&format!(
            "{indent}[{}] {:.3}ms{suffix}\n",
            record.name,
            record.wall_secs * 1e3
        ));
    }
    out
}

/// Renders the `EXPLAIN ANALYZE` transcript: the plan transcript followed by
/// the executed span tree and the profile's budget accounting.
pub fn render_analyzed(plan_transcript: &str, profile: &ExecProfile) -> String {
    let mut out = String::from(plan_transcript);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(&format!(
        "analyze: {:.3}ms plan, {:.3}ms exec, {} row(s), budget spent {}{}\n",
        profile.plan_secs * 1e3,
        profile.exec_secs * 1e3,
        profile.rows,
        profile.budget_spent,
        if profile.degraded { " [degraded]" } else { "" },
    ));
    out.push_str(&render_spans(&profile.spans));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        let token = t.enter(span::SEARCH);
        t.exit(token);
        assert!(t.take_spans().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn nested_spans_record_depth_and_counters() {
        let mut t = Tracer::enabled();
        t.begin();
        let outer = t.enter(span::EXECUTE);
        let inner = t.enter(span::SEARCH);
        t.exit_with(inner, SpanCounters { sorted_accesses: 5, ..SpanCounters::default() });
        t.exit(outer);
        let spans = t.take_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].name.as_str(), spans[0].depth), (span::EXECUTE, 0));
        assert_eq!((spans[1].name.as_str(), spans[1].depth), (span::SEARCH, 1));
        assert_eq!(spans[1].counters.sorted_accesses, 5);
        assert!(spans[0].wall_secs >= spans[1].wall_secs);
        assert!(render_spans(&spans).contains("[search]"));
        assert!(render_spans(&spans).contains("sorted=5"));
    }

    #[test]
    fn exiting_an_outer_token_closes_abandoned_inner_spans() {
        let mut t = Tracer::enabled();
        t.begin();
        let outer = t.enter("outer");
        let _abandoned = t.enter("inner-left-open");
        // Simulates an unwind: the inner exit never runs.
        t.exit(outer);
        assert_eq!(t.open_spans(), 0);
        let spans = t.take_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.wall_secs >= 0.0));
    }

    #[test]
    fn capacity_overflow_counts_drops_instead_of_growing() {
        let mut t = Tracer::enabled();
        t.begin();
        for _ in 0..(Tracer::CAP + 10) {
            let token = t.enter("tick");
            t.exit(token);
        }
        assert_eq!(t.dropped(), 10);
        assert_eq!(t.take_spans().len(), Tracer::CAP);
    }

    #[test]
    fn take_spans_closes_open_spans_and_reset_clears() {
        let mut t = Tracer::enabled();
        t.begin();
        let _open = t.enter("left-open");
        let spans = t.take_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(t.open_spans(), 0);
        let _open = t.enter("left-open-again");
        t.reset();
        assert_eq!(t.open_spans(), 0);
        assert!(t.take_spans().is_empty());
    }

    #[test]
    fn counter_deltas_saturate_and_render_compactly() {
        let before = ExecProfile { sorted_accesses: 10, label_probes: 7, ..ExecProfile::default() };
        let after = ExecProfile { sorted_accesses: 15, label_probes: 5, ..ExecProfile::default() };
        let delta = SpanCounters::delta(&before, &after);
        assert_eq!(delta.sorted_accesses, 5);
        assert_eq!(delta.label_probes, 0, "negative deltas saturate at zero");
        assert_eq!(delta.render(), "sorted=5");
        assert!(SpanCounters::default().is_zero());
        assert_eq!(SpanCounters::default().render(), "");
    }

    #[test]
    fn render_analyzed_appends_the_span_tree_to_the_plan() {
        let profile = ExecProfile {
            plan_secs: 0.001,
            exec_secs: 0.002,
            rows: 3,
            budget_spent: 42,
            spans: vec![SpanRecord {
                name: span::SEARCH.to_string(),
                depth: 0,
                start_secs: 0.0,
                wall_secs: 0.002,
                counters: SpanCounters { rows: 3, ..SpanCounters::default() },
            }],
            ..ExecProfile::default()
        };
        let out = render_analyzed("plan: TOPK over 1 term(s): (name, *)\n  1. step\n", &profile);
        assert!(out.contains("plan: TOPK"));
        assert!(out.contains("analyze:"));
        assert!(out.contains("budget spent 42"));
        assert!(out.contains("[search] 2.000ms — rows=3"));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// One randomised tracer operation.
        #[derive(Debug, Clone)]
        enum Op {
            Enter,
            /// Exit the i-th (mod live) outstanding token.
            Exit(usize),
            /// Enter a span, then unwind a panic through `catch_unwind`
            /// without exiting it — the failpoint/panic-containment shape.
            PanicInside,
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                Just(Op::Enter),
                Just(Op::Enter),
                (0usize..8).prop_map(Op::Exit),
                (0usize..8).prop_map(Op::Exit),
                Just(Op::PanicInside),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Arbitrary enter/exit sequences — including exits unwound
            /// through `catch_unwind` and out-of-order exits — never corrupt
            /// the span stack or leak open spans.
            #[test]
            fn arbitrary_sequences_never_corrupt_the_stack(
                ops in proptest::collection::vec(op_strategy(), 0..40),
            ) {
                let mut t = Tracer::enabled();
                t.begin();
                let mut tokens: Vec<SpanToken> = Vec::new();
                for op in ops {
                    match op {
                        Op::Enter => tokens.push(t.enter("op")),
                        Op::Exit(i) => {
                            if !tokens.is_empty() {
                                let token = tokens.remove(i % tokens.len());
                                t.exit(token);
                            }
                        }
                        Op::PanicInside => {
                            let result = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(|| {
                                    let _token = t.enter("doomed");
                                    panic!("injected");
                                }),
                            );
                            prop_assert!(result.is_err());
                        }
                    }
                }
                let spans = t.take_spans();
                prop_assert_eq!(t.open_spans(), 0, "no span may leak open");
                for s in &spans {
                    prop_assert!(s.wall_secs >= 0.0);
                    prop_assert!(s.start_secs >= 0.0);
                    prop_assert!(s.depth < Tracer::CAP);
                }
                // A drained tracer starts the next request clean.
                t.begin();
                let token = t.enter("next");
                t.exit(token);
                prop_assert_eq!(t.take_spans().len(), 1);
            }
        }
    }
}
