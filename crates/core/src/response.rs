//! Responses of the unified query facade.
//!
//! Every executed [`crate::SedaRequest`] produces one [`SedaResponse`]: a
//! statement-shaped [`ResponsePayload`] plus the unified [`ExecProfile`]
//! describing the work performed — sorted/random accesses of the Threshold
//! Algorithm, label probes of the connectivity-oracle checks, rows produced,
//! and the plan/execution wall split.

use serde::{Deserialize, Serialize};

use seda_olap::{CubeResult, QueryResultTable, StarSchemaBuild};
use seda_topk::{SearchStats, TopKResult};

use crate::summaries::{ConnectionSummary, ContextSummary};
use crate::trace::SpanRecord;

/// Unified work counters and wall time of one request → response trip.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecProfile {
    /// Seconds spent planning (validation + context resolution).
    pub plan_secs: f64,
    /// Seconds spent executing the plan.
    pub exec_secs: f64,
    /// Entries consumed from sorted posting lists.
    pub sorted_accesses: usize,
    /// Random-access score probes.
    pub random_accesses: usize,
    /// Candidate tuples whose connectivity/compactness was evaluated.
    pub tuples_scored: usize,
    /// Candidate tuples discarded as disconnected.
    pub tuples_disconnected: usize,
    /// Candidate combinations clipped by the candidate limit (non-zero means
    /// a best-effort top-k).
    pub candidates_truncated: usize,
    /// Label entries scanned by connectivity-oracle intersections during
    /// connectivity/compactness checks.
    pub label_probes: u64,
    /// True when the Threshold Algorithm stopped early.
    pub early_terminated: bool,
    /// Rows (tuples, bucket entries, connections, table rows or cube cells)
    /// in the payload.
    pub rows: usize,
    /// Aggregate work units spent against the request's [`crate::Budget`]
    /// (sorted + random accesses + tuples scored + label probes + rows);
    /// the cross-resource yardstick admission control can meter.
    pub budget_spent: u64,
    /// True when a budget ceiling was hit and the caller opted into a
    /// degraded response: the payload is the exact prefix computed before
    /// the breach, not the full answer.
    pub degraded: bool,
    /// Per-stage span breakdown of the execution, recorded when the reader's
    /// [`crate::Tracer`] is enabled (always on for `EXPLAIN ANALYZE`);
    /// empty otherwise.
    pub spans: Vec<SpanRecord>,
}

impl ExecProfile {
    /// Folds the counters of one search into the profile.
    pub fn absorb(&mut self, stats: &SearchStats) {
        self.sorted_accesses += stats.sorted_accesses;
        self.random_accesses += stats.random_accesses;
        self.tuples_scored += stats.tuples_scored;
        self.tuples_disconnected += stats.tuples_disconnected;
        self.candidates_truncated += stats.candidates_truncated;
        self.label_probes += stats.label_probes;
        self.early_terminated |= stats.early_terminated;
    }

    /// Total request wall time (plan + execution).
    pub fn total_secs(&self) -> f64 {
        self.plan_secs + self.exec_secs
    }

    /// Settles [`ExecProfile::budget_spent`] from the final counters (sorted
    /// plus random accesses, tuples scored, label probes and rows) — the one
    /// cross-resource formula every governed path shares.
    pub fn settle_budget_spent(&mut self) {
        self.budget_spent = self.sorted_accesses as u64
            + self.random_accesses as u64
            + self.tuples_scored as u64
            + self.label_probes
            + self.rows as u64;
    }

    /// Renders the profile as a human-readable line.
    pub fn render(&self) -> String {
        format!(
            "profile: {:.3}ms total ({:.3}ms plan, {:.3}ms exec), {} rows, \
             {} sorted / {} random accesses, {} tuples scored \
             ({} disconnected, {} truncated), {} label probes{}",
            self.total_secs() * 1e3,
            self.plan_secs * 1e3,
            self.exec_secs * 1e3,
            self.rows,
            self.sorted_accesses,
            self.random_accesses,
            self.tuples_scored,
            self.tuples_disconnected,
            self.candidates_truncated,
            self.label_probes,
            if self.early_terminated { ", early-terminated" } else { "" },
        ) + if self.degraded { " [degraded: budget exhausted]" } else { "" }
    }
}

/// The statement-shaped result of a request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponsePayload {
    /// Result of a `TOPK` statement.
    TopK(TopKResult),
    /// Result of a `CONTEXTS` statement.
    Contexts(ContextSummary),
    /// Result of a `CONNECTIONS` statement: the summary plus the top-k
    /// result it derives from.
    Connections {
        /// The underlying top-k result.
        top_k: TopKResult,
        /// The pairwise connection summary.
        summary: ConnectionSummary,
    },
    /// Result of a `RESULTS` or `TWIG` statement.
    Table(QueryResultTable),
    /// Result of a `CUBE` statement: the derived schema plus the aggregate.
    Cube {
        /// The star-schema derivation (fact/dimension tables, warnings).
        build: StarSchemaBuild,
        /// The aggregated cube.
        cube: CubeResult,
    },
    /// Result of an `EXPLAIN` request: the plan transcript.
    Explain(String),
}

impl ResponsePayload {
    /// Number of result rows the payload carries.
    pub fn rows(&self) -> usize {
        match self {
            ResponsePayload::TopK(r) => r.tuples.len(),
            ResponsePayload::Contexts(s) => s.total_contexts(),
            ResponsePayload::Connections { summary, .. } => summary.len(),
            ResponsePayload::Table(t) => t.len(),
            ResponsePayload::Cube { cube, .. } => cube.len(),
            ResponsePayload::Explain(_) => 0,
        }
    }
}

/// The response of one executed request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SedaResponse {
    /// The statement-shaped result.
    pub payload: ResponsePayload,
    /// Unified work counters and wall times.
    pub profile: ExecProfile,
}

impl SedaResponse {
    /// The top-k result, when the payload carries one.
    pub fn top_k(&self) -> Option<&TopKResult> {
        match &self.payload {
            ResponsePayload::TopK(r) => Some(r),
            ResponsePayload::Connections { top_k, .. } => Some(top_k),
            _ => None,
        }
    }

    /// The context summary, when the payload carries one.
    pub fn contexts(&self) -> Option<&ContextSummary> {
        match &self.payload {
            ResponsePayload::Contexts(s) => Some(s),
            _ => None,
        }
    }

    /// The connection summary, when the payload carries one.
    pub fn connections(&self) -> Option<&ConnectionSummary> {
        match &self.payload {
            ResponsePayload::Connections { summary, .. } => Some(summary),
            _ => None,
        }
    }

    /// The result table, when the payload carries one.
    pub fn table(&self) -> Option<&QueryResultTable> {
        match &self.payload {
            ResponsePayload::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The aggregated cube, when the payload carries one.
    pub fn cube(&self) -> Option<&CubeResult> {
        match &self.payload {
            ResponsePayload::Cube { cube, .. } => Some(cube),
            _ => None,
        }
    }

    /// The star-schema build, when the payload carries one.
    pub fn schema_build(&self) -> Option<&StarSchemaBuild> {
        match &self.payload {
            ResponsePayload::Cube { build, .. } => Some(build),
            _ => None,
        }
    }

    /// The explain transcript, when the payload carries one.
    pub fn explain_transcript(&self) -> Option<&str> {
        match &self.payload {
            ResponsePayload::Explain(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_absorbs_search_stats() {
        let mut profile = ExecProfile::default();
        let stats = SearchStats {
            sorted_accesses: 5,
            random_accesses: 2,
            tuples_scored: 3,
            tuples_disconnected: 1,
            candidates_truncated: 0,
            label_probes: 40,
            early_terminated: true,
        };
        profile.absorb(&stats);
        profile.absorb(&stats);
        assert_eq!(profile.sorted_accesses, 10);
        assert_eq!(profile.label_probes, 80);
        assert!(profile.early_terminated);
        assert!(profile.render().contains("10 sorted"));
    }

    #[test]
    fn payload_rows_count_the_result_shape() {
        assert_eq!(ResponsePayload::TopK(TopKResult::default()).rows(), 0);
        assert_eq!(ResponsePayload::Explain("plan".into()).rows(), 0);
        let table = QueryResultTable::new(vec!["a".into()]);
        assert_eq!(ResponsePayload::Table(table).rows(), 0);
    }
}
