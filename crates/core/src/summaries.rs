//! Context and connection summaries (Sec. 5 and 6).

use serde::{Deserialize, Serialize};

use seda_dataguide::Connection;
use seda_textindex::PathEntry;
use seda_xmlstore::{Collection, PathId};

/// The context bucket of one query term: every distinct path the term appears
/// in across the entire collection, with absolute path frequencies, sorted by
/// descending frequency (the order the SEDA GUI displays).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextBucket {
    /// Index of the query term this bucket belongs to.
    pub term: usize,
    /// Human-readable label of the term.
    pub label: String,
    /// The bucket entries.
    pub entries: Vec<PathEntry>,
}

impl ContextBucket {
    /// The paths of the bucket, most frequent first.
    pub fn paths(&self) -> Vec<PathId> {
        self.entries.iter().map(|e| e.path).collect()
    }

    /// Renders the bucket as `path (frequency)` lines.
    pub fn display(&self, collection: &Collection) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| format!("{} ({})", collection.path_string(e.path), e.frequency))
            .collect()
    }
}

/// The context summary of a query: one bucket per query term.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ContextSummary {
    /// One bucket per query term, in term order.
    pub buckets: Vec<ContextBucket>,
}

impl ContextSummary {
    /// The bucket of a term.
    pub fn bucket(&self, term: usize) -> Option<&ContextBucket> {
        self.buckets.iter().find(|b| b.term == term)
    }

    /// Total number of distinct contexts across all terms.
    pub fn total_contexts(&self) -> usize {
        self.buckets.iter().map(|b| b.entries.len()).sum()
    }
}

/// The connection summary of a query: the pairwise connections observed
/// between the nodes of the top-k result, most frequent first.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConnectionSummary {
    /// The connections, most frequent first.
    pub connections: Vec<Connection>,
}

impl ConnectionSummary {
    /// Number of distinct connections.
    pub fn len(&self) -> usize {
        self.connections.len()
    }

    /// True when no connections were discovered.
    pub fn is_empty(&self) -> bool {
        self.connections.is_empty()
    }

    /// Connections between the two given contexts (either orientation).
    pub fn between(&self, a: PathId, b: PathId) -> Vec<&Connection> {
        self.connections
            .iter()
            .filter(|c| {
                (c.from_path == a && c.to_path == b) || (c.from_path == b && c.to_path == a)
            })
            .collect()
    }

    /// Renders the summary as human-readable lines.
    pub fn display(&self, collection: &Collection) -> Vec<String> {
        self.connections
            .iter()
            .map(|c| format!("{} [support {}]", c.display(collection), c.support))
            .collect()
    }
}

/// Per-term context selections made by the user in the context summary panel.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ContextSelections {
    selections: Vec<(usize, Vec<PathId>)>,
}

impl ContextSelections {
    /// No selections: every term keeps its original context spec.
    pub fn none() -> Self {
        ContextSelections::default()
    }

    /// Selects the given contexts for a term (replacing earlier selections
    /// for that term).
    pub fn select(&mut self, term: usize, paths: Vec<PathId>) -> &mut Self {
        self.selections.retain(|(t, _)| *t != term);
        self.selections.push((term, paths));
        self
    }

    /// The selection for a term, if any.
    pub fn for_term(&self, term: usize) -> Option<&[PathId]> {
        self.selections.iter().find(|(t, _)| *t == term).map(|(_, p)| p.as_slice())
    }

    /// Iterates over the `(term, selected paths)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[PathId])> {
        self.selections.iter().map(|(t, p)| (*t, p.as_slice()))
    }

    /// True when no term has a selection.
    pub fn is_empty(&self) -> bool {
        self.selections.is_empty()
    }

    /// Number of terms with a selection.
    pub fn len(&self) -> usize {
        self.selections.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_selections_replace_per_term() {
        let mut s = ContextSelections::none();
        assert!(s.is_empty());
        s.select(0, vec![PathId(1), PathId(2)]);
        s.select(0, vec![PathId(3)]);
        s.select(2, vec![PathId(4)]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.for_term(0), Some(&[PathId(3)][..]));
        assert_eq!(s.for_term(1), None);
        assert_eq!(s.for_term(2), Some(&[PathId(4)][..]));
    }

    #[test]
    fn context_summary_lookup() {
        let summary = ContextSummary {
            buckets: vec![ContextBucket {
                term: 1,
                label: "(percentage, *)".into(),
                entries: vec![],
            }],
        };
        assert!(summary.bucket(1).is_some());
        assert!(summary.bucket(0).is_none());
        assert_eq!(summary.total_contexts(), 0);
    }

    #[test]
    fn connection_summary_between_is_symmetric() {
        use seda_dataguide::Connection;
        let conn = Connection {
            from_path: PathId(1),
            to_path: PathId(2),
            signature: vec![PathId(1), PathId(9), PathId(2)],
            edge_kinds: vec![],
            support: 3,
        };
        let summary = ConnectionSummary { connections: vec![conn] };
        assert_eq!(summary.between(PathId(1), PathId(2)).len(), 1);
        assert_eq!(summary.between(PathId(2), PathId(1)).len(), 1);
        assert_eq!(summary.between(PathId(1), PathId(3)).len(), 0);
        assert_eq!(summary.len(), 1);
    }
}
