//! Typed requests of the unified query facade.
//!
//! A [`SedaRequest`] bundles everything one trip through the Fig. 4 pipeline
//! needs: the [`SedaQuery`] terms, optional context/connection refinements,
//! and a [`Statement`] saying which unit of the engine answers it.  Requests
//! are built fluently through [`RequestBuilder`], or parsed from the textual
//! front-end:
//!
//! ```text
//! TOPK 10 FOR (*, "United States") AND (trade_country, *)
//! CONTEXTS FOR (trade_country, *)
//! CONNECTIONS 10 FOR (name, *) AND (population, *)
//! RESULTS FOR (percentage, *) WITH 0 IN /country/economy/import_partners/item/percentage
//! TWIG /country/economy//trade_country
//! CUBE import-trade-percentage BY import-country AGG sum FOR (*, "United States") AND …
//! ```
//!
//! An `EXPLAIN` prefix plans the request and returns the plan transcript
//! instead of executing it; `EXPLAIN ANALYZE` additionally *executes* the
//! request and returns the transcript annotated with each stage's measured
//! wall time, counter deltas and budget spend (see
//! [`crate::trace::render_analyzed`]).  [`SedaRequest::render`] emits the
//! canonical textual form, and `parse ∘ render` is the identity on parsed
//! requests — the round-trip the facade's serialisation tests pin.

use serde::{Deserialize, Serialize};

use seda_dataguide::Connection;
use seda_olap::{AggFn, BuildOptions};
use seda_xmlstore::PathId;

use crate::error::SedaError;
use crate::query::{QueryError, SedaQuery};
use crate::summaries::ContextSelections;

/// Which unit of the Fig. 4 engine a request drives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// Threshold-Algorithm top-k search.
    TopK {
        /// Number of result tuples to return.
        k: usize,
    },
    /// Context summary (Sec. 5): one bucket of distinct paths per term.
    ContextSummary,
    /// Connection summary (Sec. 6) over the top-k result of the query.
    ConnectionSummary {
        /// `k` of the underlying top-k search the connections derive from.
        k: usize,
    },
    /// The complete (non-top-k) result set R(q) (Sec. 7).
    CompleteResults,
    /// Structural twig evaluation over a `/a/b//c` path expression.
    Twig {
        /// The twig path; `/` is the child axis, `//` the descendant axis.
        path: String,
    },
    /// The full pipeline: complete results, star-schema derivation, cube
    /// aggregation.
    Cube {
        /// Fact table of the derived star schema to aggregate.
        fact: String,
        /// Group-by dimension columns.
        group_by: Vec<String>,
        /// Aggregation function.
        agg: AggFn,
        /// Measure column; defaults to the fact name when absent.
        measure: Option<String>,
    },
}

impl Statement {
    /// Short name of the statement, used by error messages and plans.
    pub fn name(&self) -> &'static str {
        match self {
            Statement::TopK { .. } => "TOPK",
            Statement::ContextSummary => "CONTEXTS",
            Statement::ConnectionSummary { .. } => "CONNECTIONS",
            Statement::CompleteResults => "RESULTS",
            Statement::Twig { .. } => "TWIG",
            Statement::Cube { .. } => "CUBE",
        }
    }
}

pub(crate) fn agg_name(agg: AggFn) -> &'static str {
    match agg {
        AggFn::Sum => "sum",
        AggFn::Avg => "avg",
        AggFn::Count => "count",
        AggFn::Min => "min",
        AggFn::Max => "max",
    }
}

fn parse_agg(name: &str) -> Result<AggFn, SedaError> {
    match name.to_ascii_lowercase().as_str() {
        "sum" => Ok(AggFn::Sum),
        "avg" => Ok(AggFn::Avg),
        "count" => Ok(AggFn::Count),
        "min" => Ok(AggFn::Min),
        "max" => Ok(AggFn::Max),
        other => Err(SedaError::Parse(QueryError::Malformed(format!(
            "unknown aggregation function {other:?} (expected sum|avg|count|min|max)"
        )))),
    }
}

/// One request → one [`crate::SedaResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SedaRequest {
    /// What to compute.
    pub statement: Statement,
    /// The query terms; required by every statement except [`Statement::Twig`].
    pub query: Option<SedaQuery>,
    /// Programmatic per-term context selections (by [`PathId`]).
    pub selections: ContextSelections,
    /// Per-term context selections by path string, resolved (and validated)
    /// by the planner; this is the form the textual front-end produces.
    pub path_selections: Vec<(usize, Vec<String>)>,
    /// Connection refinements applied to the complete-result set.
    pub connections: Vec<Connection>,
    /// Options of the star-schema derivation (cube statements).
    pub cube_options: BuildOptions,
    /// Plan the request and return the `explain()` transcript instead of
    /// executing it.
    pub explain: bool,
    /// With [`SedaRequest::explain`]: execute the request too, and annotate
    /// the transcript with measured per-stage wall times, counter deltas and
    /// budget spend (`EXPLAIN ANALYZE`).
    pub analyze: bool,
}

impl SedaRequest {
    /// Starts a fluent request builder.
    pub fn builder() -> RequestBuilder {
        RequestBuilder::default()
    }

    /// A top-k request over parsed query terms.
    pub fn top_k(query: SedaQuery, k: usize) -> Self {
        RequestBuilder::default().statement(Statement::TopK { k }).query(query).build()
    }

    /// Parses the textual front-end (see the module docs for the grammar).
    pub fn parse(text: &str) -> Result<Self, SedaError> {
        let mut rest = text.trim();
        let mut builder = RequestBuilder::default();
        if let Some(tail) = strip_leading_keyword(rest, "EXPLAIN") {
            builder = builder.explain();
            rest = tail;
            if let Some(tail) = strip_leading_keyword(rest, "ANALYZE") {
                builder = builder.analyze();
                rest = tail;
            }
        }
        if rest.is_empty() {
            return Err(SedaError::Parse(QueryError::Malformed("empty request".to_string())));
        }
        if rest.starts_with('(') {
            // Bare query terms default to a top-k search.
            let (query, selections) = parse_query_part(rest)?;
            return Ok(apply_selections(
                builder.statement(Statement::TopK { k: 10 }).query(query),
                selections,
            ));
        }
        let (verb, tail) = next_token(rest);
        let statement_tail = tail.trim();
        match verb.to_ascii_uppercase().as_str() {
            "TOPK" => {
                let (k, after) = parse_leading_count(statement_tail, 10)?;
                let query_text = expect_for(after, "TOPK")?;
                let (query, selections) = parse_query_part(query_text)?;
                Ok(apply_selections(
                    builder.statement(Statement::TopK { k }).query(query),
                    selections,
                ))
            }
            "CONTEXTS" => {
                let query_text = expect_for(statement_tail, "CONTEXTS")?;
                let (query, selections) = parse_query_part(query_text)?;
                Ok(apply_selections(
                    builder.statement(Statement::ContextSummary).query(query),
                    selections,
                ))
            }
            "CONNECTIONS" => {
                let (k, after) = parse_leading_count(statement_tail, 10)?;
                let query_text = expect_for(after, "CONNECTIONS")?;
                let (query, selections) = parse_query_part(query_text)?;
                Ok(apply_selections(
                    builder.statement(Statement::ConnectionSummary { k }).query(query),
                    selections,
                ))
            }
            "RESULTS" => {
                let query_text = expect_for(statement_tail, "RESULTS")?;
                let (query, selections) = parse_query_part(query_text)?;
                Ok(apply_selections(
                    builder.statement(Statement::CompleteResults).query(query),
                    selections,
                ))
            }
            "TWIG" => {
                if statement_tail.is_empty() {
                    return Err(SedaError::Parse(QueryError::Malformed(
                        "TWIG requires a path expression".to_string(),
                    )));
                }
                Ok(builder.statement(Statement::Twig { path: statement_tail.to_string() }).build())
            }
            "CUBE" => {
                let (head, query_text) = split_keyword(statement_tail, "FOR").ok_or_else(|| {
                    SedaError::Parse(QueryError::Malformed(
                        "CUBE requires a FOR clause with query terms".to_string(),
                    ))
                })?;
                let statement = parse_cube_head(head)?;
                let (query, selections) = parse_query_part(query_text)?;
                Ok(apply_selections(builder.statement(statement).query(query), selections))
            }
            other => Err(SedaError::Parse(QueryError::Malformed(format!(
                "unknown statement verb {other:?} \
                 (expected TOPK|CONTEXTS|CONNECTIONS|RESULTS|TWIG|CUBE or bare query terms)"
            )))),
        }
    }

    /// Renders the request in the canonical textual form; `parse ∘ render`
    /// is the identity on every parsed request.  Programmatic state that has
    /// no textual form ([`PathId`] selections, connection refinements, cube
    /// options) is not rendered.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.explain {
            out.push_str(if self.analyze { "EXPLAIN ANALYZE " } else { "EXPLAIN " });
        }
        match &self.statement {
            Statement::TopK { k } => out.push_str(&format!("TOPK {k}")),
            Statement::ContextSummary => out.push_str("CONTEXTS"),
            Statement::ConnectionSummary { k } => out.push_str(&format!("CONNECTIONS {k}")),
            Statement::CompleteResults => out.push_str("RESULTS"),
            Statement::Twig { path } => {
                out.push_str("TWIG ");
                out.push_str(path);
                return out;
            }
            Statement::Cube { fact, group_by, agg, measure } => {
                out.push_str(&format!("CUBE {fact} BY {}", group_by.join(", ")));
                out.push_str(&format!(" AGG {}", agg_name(*agg)));
                if let Some(measure) = measure {
                    out.push_str(&format!(" MEASURE {measure}"));
                }
            }
        }
        if let Some(query) = &self.query {
            out.push_str(" FOR ");
            out.push_str(&query.to_string());
        }
        for (term, paths) in &self.path_selections {
            out.push_str(&format!(" WITH {term} IN {}", paths.join("|")));
        }
        out
    }
}

impl std::fmt::Display for SedaRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Fluent builder for [`SedaRequest`]; validation happens at plan time, so
/// `build` never fails.
#[derive(Debug, Clone, Default)]
pub struct RequestBuilder {
    statement: Option<Statement>,
    query: Option<SedaQuery>,
    selections: ContextSelections,
    path_selections: Vec<(usize, Vec<String>)>,
    connections: Vec<Connection>,
    cube_options: BuildOptions,
    explain: bool,
    analyze: bool,
}

impl RequestBuilder {
    /// Sets the statement; defaults to `TOPK 10` when never called.
    pub fn statement(mut self, statement: Statement) -> Self {
        self.statement = Some(statement);
        self
    }

    /// Shorthand for [`Statement::TopK`].
    pub fn top_k(self, k: usize) -> Self {
        self.statement(Statement::TopK { k })
    }

    /// Shorthand for [`Statement::ContextSummary`].
    pub fn contexts(self) -> Self {
        self.statement(Statement::ContextSummary)
    }

    /// Shorthand for [`Statement::ConnectionSummary`].
    pub fn connection_summary(self, k: usize) -> Self {
        self.statement(Statement::ConnectionSummary { k })
    }

    /// Shorthand for [`Statement::CompleteResults`].
    pub fn complete_results(self) -> Self {
        self.statement(Statement::CompleteResults)
    }

    /// Shorthand for [`Statement::Twig`].
    pub fn twig(self, path: impl Into<String>) -> Self {
        self.statement(Statement::Twig { path: path.into() })
    }

    /// Shorthand for [`Statement::Cube`] with `sum` aggregation and the
    /// default measure (the fact name).
    pub fn cube(self, fact: impl Into<String>, group_by: &[&str]) -> Self {
        self.statement(Statement::Cube {
            fact: fact.into(),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            agg: AggFn::Sum,
            measure: None,
        })
    }

    /// Sets the query terms.
    pub fn query(mut self, query: SedaQuery) -> Self {
        self.query = Some(query);
        self
    }

    /// Parses and sets the query terms.
    pub fn query_text(self, text: &str) -> Result<Self, SedaError> {
        let query = SedaQuery::parse(text)?;
        Ok(self.query(query))
    }

    /// Selects contexts for a term by [`PathId`] (replacing earlier
    /// selections for that term).
    pub fn select(mut self, term: usize, paths: Vec<PathId>) -> Self {
        self.selections.select(term, paths);
        self
    }

    /// Selects contexts for a term by path string; the planner resolves the
    /// strings and fails with [`SedaError::UnknownPath`] on a miss.
    pub fn select_paths<I, S>(mut self, term: usize, paths: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.path_selections.retain(|(t, _)| *t != term);
        self.path_selections.push((term, paths.into_iter().map(Into::into).collect()));
        self
    }

    /// Restricts the complete-result set to the given connections.
    pub fn connections(mut self, connections: Vec<Connection>) -> Self {
        self.connections = connections;
        self
    }

    /// Sets the star-schema build options of a cube statement.
    pub fn cube_options(mut self, options: BuildOptions) -> Self {
        self.cube_options = options;
        self
    }

    /// Marks the request as `EXPLAIN`: plan only, return the transcript.
    pub fn explain(mut self) -> Self {
        self.explain = true;
        self
    }

    /// Marks the request as `EXPLAIN ANALYZE`: execute it and return the
    /// transcript annotated with measured per-stage breakdowns (implies
    /// [`RequestBuilder::explain`]).
    pub fn analyze(mut self) -> Self {
        self.explain = true;
        self.analyze = true;
        self
    }

    /// Finalises the request.
    pub fn build(self) -> SedaRequest {
        SedaRequest {
            statement: self.statement.unwrap_or(Statement::TopK { k: 10 }),
            query: self.query,
            selections: self.selections,
            path_selections: self.path_selections,
            connections: self.connections,
            cube_options: self.cube_options,
            explain: self.explain,
            analyze: self.analyze,
        }
    }
}

fn apply_selections(
    mut builder: RequestBuilder,
    selections: Vec<(usize, Vec<String>)>,
) -> SedaRequest {
    for (term, paths) in selections {
        builder = builder.select_paths(term, paths);
    }
    builder.build()
}

/// Splits `text` at the first top-level occurrence of `keyword` (a
/// whitespace-delimited token outside quotes and parentheses), returning the
/// trimmed text before and after it.
fn split_keyword<'a>(text: &'a str, keyword: &str) -> Option<(&'a str, &'a str)> {
    let mut depth = 0usize;
    let mut in_quotes = false;
    let mut token_start: Option<usize> = None;
    for (i, c) in text.char_indices() {
        let is_boundary = c.is_whitespace() || c == '(' || c == ')' || c == '"';
        if is_boundary {
            // Finalise the pending token with the state it was scanned in
            // (quote/paren state cannot change inside a token).
            if let Some(start) = token_start.take() {
                if depth == 0 && !in_quotes && text[start..i].eq_ignore_ascii_case(keyword) {
                    return Some((text[..start].trim(), text[i..].trim()));
                }
            }
            match c {
                '"' => in_quotes = !in_quotes,
                '(' if !in_quotes => depth += 1,
                ')' if !in_quotes => depth = depth.saturating_sub(1),
                _ => {}
            }
        } else if token_start.is_none() {
            token_start = Some(i);
        }
    }
    if let Some(start) = token_start {
        if depth == 0 && !in_quotes && text[start..].eq_ignore_ascii_case(keyword) {
            return Some((text[..start].trim(), ""));
        }
    }
    None
}

/// Strips `keyword` from the start of `text` when it is the first
/// whitespace-delimited token (case-insensitive).
fn strip_leading_keyword<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
    let (token, rest) = next_token(text);
    if token.eq_ignore_ascii_case(keyword) {
        Some(rest.trim_start())
    } else {
        None
    }
}

/// The first whitespace-delimited token of `text` and everything after it.
fn next_token(text: &str) -> (&str, &str) {
    let trimmed = text.trim_start();
    match trimmed.find(char::is_whitespace) {
        Some(end) => (&trimmed[..end], &trimmed[end..]),
        None => (trimmed, ""),
    }
}

/// Parses an optional leading integer (e.g. the `10` of `TOPK 10 FOR …`).
fn parse_leading_count(text: &str, default: usize) -> Result<(usize, &str), SedaError> {
    let (token, rest) = next_token(text);
    if token.eq_ignore_ascii_case("FOR") || token.is_empty() {
        return Ok((default, text));
    }
    match token.parse::<usize>() {
        Ok(k) => Ok((k, rest)),
        Err(_) => Err(SedaError::Parse(QueryError::Malformed(format!(
            "expected a count or FOR, found {token:?}"
        )))),
    }
}

/// Consumes the mandatory `FOR` keyword and returns the query part after it.
fn expect_for<'a>(text: &'a str, statement: &str) -> Result<&'a str, SedaError> {
    strip_leading_keyword(text, "FOR").ok_or_else(|| {
        SedaError::Parse(QueryError::Malformed(format!(
            "{statement} requires a FOR clause with query terms"
        )))
    })
}

/// Parses `<terms> [WITH <term> IN <path>|<path> …]`.
#[allow(clippy::type_complexity)]
fn parse_query_part(text: &str) -> Result<(SedaQuery, Vec<(usize, Vec<String>)>), SedaError> {
    let (query_text, mut rest) = match split_keyword(text, "WITH") {
        Some((q, r)) => (q, Some(r)),
        None => (text.trim(), None),
    };
    let query = SedaQuery::parse(query_text)?;
    let mut selections = Vec::new();
    while let Some(clause_text) = rest {
        let (clause, next) = match split_keyword(clause_text, "WITH") {
            Some((c, n)) => (c, Some(n)),
            None => (clause_text, None),
        };
        rest = next;
        if clause.is_empty() {
            continue;
        }
        let (term_token, tail) = next_token(clause);
        let term: usize = term_token.parse().map_err(|_| {
            SedaError::Parse(QueryError::Malformed(format!(
                "WITH clause expects a term index, found {term_token:?}"
            )))
        })?;
        let paths_text = strip_leading_keyword(tail, "IN").ok_or_else(|| {
            SedaError::Parse(QueryError::Malformed(format!(
                "WITH {term} must be followed by IN <path>[|<path>…]"
            )))
        })?;
        if paths_text.is_empty() {
            return Err(SedaError::Parse(QueryError::Malformed(format!(
                "WITH {term} IN requires at least one path"
            ))));
        }
        let paths: Vec<String> = paths_text.split('|').map(|p| p.trim().to_string()).collect();
        if paths.iter().any(String::is_empty) {
            return Err(SedaError::Parse(QueryError::Malformed(format!(
                "empty path in WITH {term} IN {paths_text:?}"
            ))));
        }
        selections.push((term, paths));
    }
    Ok((query, selections))
}

/// Parses the column name of a `MEASURE` clause: exactly one token, with
/// trailing garbage rejected rather than silently dropped.
fn parse_measure_name(text: &str) -> Result<String, SedaError> {
    let (measure, rest) = next_token(text);
    if measure.is_empty() {
        return Err(SedaError::Parse(QueryError::Malformed(
            "MEASURE requires a column name".to_string(),
        )));
    }
    if !rest.trim().is_empty() {
        return Err(SedaError::Parse(QueryError::Malformed(format!(
            "unexpected trailing cube clause {:?}",
            rest.trim()
        ))));
    }
    Ok(measure.to_string())
}

/// Parses the head of a cube statement:
/// `<fact> BY <dim>[, <dim>…] [AGG <fn>] [MEASURE <column>]`.
fn parse_cube_head(head: &str) -> Result<Statement, SedaError> {
    let (fact, tail) = next_token(head);
    if fact.is_empty() {
        return Err(SedaError::Parse(QueryError::Malformed(
            "CUBE requires a fact-table name".to_string(),
        )));
    }
    let by_tail = strip_leading_keyword(tail, "BY").ok_or_else(|| {
        SedaError::Parse(QueryError::Malformed(
            "CUBE requires BY <dimension>[, <dimension>…]".to_string(),
        ))
    })?;
    // The dimension list runs until the optional AGG / MEASURE keywords.
    let (dims_text, agg, measure) = {
        let (before_agg, after_agg) = match split_keyword(by_tail, "AGG") {
            Some((b, a)) => (b, Some(a)),
            None => (by_tail, None),
        };
        match after_agg {
            Some(after) => {
                let (agg_token, rest) = next_token(after);
                let agg = parse_agg(agg_token)?;
                let measure = match strip_leading_keyword(rest, "MEASURE") {
                    Some(m) => Some(parse_measure_name(m)?),
                    None if !rest.trim().is_empty() => {
                        return Err(SedaError::Parse(QueryError::Malformed(format!(
                            "unexpected trailing cube clause {:?}",
                            rest.trim()
                        ))))
                    }
                    None => None,
                };
                (before_agg, agg, measure)
            }
            None => match split_keyword(by_tail, "MEASURE") {
                Some((dims, m)) => (dims, AggFn::Sum, Some(parse_measure_name(m)?)),
                None => (by_tail, AggFn::Sum, None),
            },
        }
    };
    let group_by: Vec<String> =
        dims_text.split(',').map(|d| d.trim().to_string()).filter(|d| !d.is_empty()).collect();
    if group_by.is_empty() {
        return Err(SedaError::Parse(QueryError::Malformed(
            "CUBE requires at least one BY dimension".to_string(),
        )));
    }
    Ok(Statement::Cube { fact: fact.to_string(), group_by, agg, measure })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_terms_default_to_topk() {
        let req = SedaRequest::parse(r#"(*, "United States") AND (percentage, *)"#).unwrap();
        assert_eq!(req.statement, Statement::TopK { k: 10 });
        assert_eq!(req.query.as_ref().unwrap().len(), 2);
        assert!(!req.explain);
    }

    #[test]
    fn verbs_parse_with_counts_and_clauses() {
        let req = SedaRequest::parse("TOPK 25 FOR (name, *)").unwrap();
        assert_eq!(req.statement, Statement::TopK { k: 25 });
        let req = SedaRequest::parse("CONTEXTS FOR (name, *)").unwrap();
        assert_eq!(req.statement, Statement::ContextSummary);
        let req = SedaRequest::parse("CONNECTIONS FOR (name, *) AND (year, *)").unwrap();
        assert_eq!(req.statement, Statement::ConnectionSummary { k: 10 });
        let req = SedaRequest::parse("TWIG /country//name").unwrap();
        assert_eq!(req.statement, Statement::Twig { path: "/country//name".into() });
        assert!(req.query.is_none());
    }

    #[test]
    fn with_clauses_carry_path_selections() {
        let req = SedaRequest::parse(
            "RESULTS FOR (name, *) AND (percentage, *) \
             WITH 0 IN /country/name WITH 1 IN /a/b|/c/d",
        )
        .unwrap();
        assert_eq!(req.statement, Statement::CompleteResults);
        assert_eq!(
            req.path_selections,
            vec![
                (0, vec!["/country/name".to_string()]),
                (1, vec!["/a/b".to_string(), "/c/d".to_string()]),
            ]
        );
    }

    #[test]
    fn cube_head_parses_dims_agg_and_measure() {
        let req = SedaRequest::parse(
            "CUBE import-trade-percentage BY import-country, year AGG avg \
             MEASURE import-trade-percentage FOR (name, *)",
        )
        .unwrap();
        match req.statement {
            Statement::Cube { fact, group_by, agg, measure } => {
                assert_eq!(fact, "import-trade-percentage");
                assert_eq!(group_by, vec!["import-country", "year"]);
                assert_eq!(agg, AggFn::Avg);
                assert_eq!(measure.as_deref(), Some("import-trade-percentage"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explain_prefix_marks_the_request() {
        let req = SedaRequest::parse("EXPLAIN TOPK 5 FOR (name, *)").unwrap();
        assert!(req.explain);
        assert!(!req.analyze);
        assert_eq!(req.statement, Statement::TopK { k: 5 });
    }

    #[test]
    fn explain_analyze_prefix_marks_both_flags() {
        let req = SedaRequest::parse("EXPLAIN ANALYZE TOPK 5 FOR (name, *)").unwrap();
        assert!(req.explain && req.analyze);
        assert_eq!(req.statement, Statement::TopK { k: 5 });
        assert_eq!(req.render(), "EXPLAIN ANALYZE TOPK 5 FOR (name, *)");
        // ANALYZE is only a keyword right after EXPLAIN.
        assert!(SedaRequest::parse("ANALYZE TOPK 5 FOR (name, *)").is_err());
    }

    #[test]
    fn keywords_inside_quotes_and_parens_are_not_clause_boundaries() {
        // "FOR" and "WITH" inside a quoted phrase or inside term parens must
        // not split the request.
        let req =
            SedaRequest::parse(r#"TOPK 3 FOR (name, "war FOR peace") AND (notes, with)"#).unwrap();
        assert_eq!(req.statement, Statement::TopK { k: 3 });
        assert_eq!(req.query.as_ref().unwrap().len(), 2);
        assert!(req.path_selections.is_empty());
    }

    #[test]
    fn malformed_requests_report_parse_errors() {
        assert!(matches!(SedaRequest::parse(""), Err(SedaError::Parse(_))));
        assert!(matches!(SedaRequest::parse("FROB (a, b)"), Err(SedaError::Parse(_))));
        assert!(matches!(SedaRequest::parse("TOPK FOR"), Err(SedaError::Parse(_))));
        assert!(matches!(SedaRequest::parse("TOPK x FOR (a, b)"), Err(SedaError::Parse(_))));
        assert!(matches!(SedaRequest::parse("CUBE f FOR (a, b)"), Err(SedaError::Parse(_))));
        assert!(matches!(
            SedaRequest::parse("RESULTS FOR (a, b) WITH zero IN /x"),
            Err(SedaError::Parse(_))
        ));
        assert!(matches!(SedaRequest::parse("TWIG"), Err(SedaError::Parse(_))));
        // Trailing garbage after MEASURE is rejected, not swallowed.
        assert!(matches!(
            SedaRequest::parse("CUBE f BY a AGG sum MEASURE m junk FOR (x, *)"),
            Err(SedaError::Parse(_))
        ));
        assert!(matches!(
            SedaRequest::parse("CUBE f BY a MEASURE m junk FOR (x, *)"),
            Err(SedaError::Parse(_))
        ));
    }

    #[test]
    fn render_parse_round_trip() {
        for text in [
            r#"TOPK 10 FOR (*, "united states") AND (trade_country, *)"#,
            "CONTEXTS FOR (name, *)",
            "CONNECTIONS 5 FOR (name, *) AND (population, *)",
            "RESULTS FOR (percentage, *) WITH 0 IN /country/name|/country/year",
            "TWIG /country/economy//trade_country",
            "CUBE pct BY country, year AGG avg MEASURE pct FOR (name, *)",
            "EXPLAIN TOPK 3 FOR (name, *)",
            "EXPLAIN ANALYZE CONTEXTS FOR (name, *)",
            "EXPLAIN ANALYZE TWIG /country/name",
        ] {
            let parsed = SedaRequest::parse(text).unwrap();
            let rendered = parsed.render();
            assert_eq!(
                SedaRequest::parse(&rendered).unwrap(),
                parsed,
                "render of {text:?} must reparse identically (got {rendered:?})"
            );
        }
    }

    #[test]
    fn builder_composes_fluently() {
        let query = SedaQuery::parse("(name, *)").unwrap();
        let req = SedaRequest::builder()
            .top_k(7)
            .query(query.clone())
            .select_paths(0, ["/country/name"])
            .explain()
            .build();
        assert_eq!(req.statement, Statement::TopK { k: 7 });
        assert_eq!(req.query, Some(query));
        assert_eq!(req.path_selections, vec![(0, vec!["/country/name".to_string()])]);
        assert!(req.explain);
        // Re-selecting a term replaces the earlier selection.
        let req = SedaRequest::builder().select_paths(0, ["/a"]).select_paths(0, ["/b"]).build();
        assert_eq!(req.path_selections, vec![(0, vec!["/b".to_string()])]);
    }
}
