//! # seda-core
//!
//! SEDA — **S**earch, **E**xplore, **D**iscover and **A**nalyze — a
//! reproduction of the CIDR 2009 system for search-driven analysis of
//! heterogeneous XML data (Balmin, Colby, Curtmola, Li, Özcan).
//!
//! SEDA lets a user who does not know the schema of an XML repository start
//! from keyword-style *query terms*, disambiguate the *contexts*
//! (root-to-leaf paths) and *connections* (structural relationships) of the
//! matches with the help of result summaries, materialise the complete result
//! set, and derive a star schema (facts + dimensions) with its instantiation,
//! ready for OLAP-style aggregation.
//!
//! The crate ties together the substrates:
//! [`seda_xmlstore`] (storage), [`seda_textindex`] (full-text indexes),
//! [`seda_datagraph`] (the data graph), [`seda_dataguide`] (dataguide
//! summaries and connections), [`seda_topk`] (the Threshold-Algorithm top-k
//! unit), [`seda_twigjoin`] (complete-result twig evaluation) and
//! [`seda_olap`] (facts, dimensions, star schemas, cubes).
//!
//! # The unified query facade
//!
//! Every trip through the Fig. 4 pipeline is one **request → plan →
//! response** lifecycle: a [`SedaRequest`] (built fluently or parsed from
//! the textual front-end) is compiled by the planner into a [`QueryPlan`]
//! (inspectable via [`QueryPlan::explain`]) and executed into a
//! [`SedaResponse`] carrying the statement-shaped payload plus a unified
//! [`ExecProfile`].  Execution runs through per-thread [`SedaReader`]
//! handles that own their scratch buffers, so concurrent queries never
//! contend on shared engine state; [`SedaEngine::execute_batch`] fans a
//! batch of requests across a reader pool.  All errors share the
//! [`SedaError`] taxonomy.
//!
//! ```
//! use seda_core::{EngineConfig, SedaEngine, SedaSession};
//! use seda_olap::{BuildOptions, Registry};
//! use seda_xmlstore::parse_collection;
//!
//! let collection = parse_collection(vec![("us.xml",
//!     r#"<country><name>United States</name><year>2006</year>
//!        <economy><import_partners>
//!          <item><trade_country>China</trade_country><percentage>15</percentage></item>
//!        </import_partners></economy></country>"#)]).unwrap();
//! let engine = SedaEngine::build(collection, Registry::factbook_defaults(),
//!                                EngineConfig::default()).unwrap();
//!
//! // One textual request runs the whole pipeline through a reader handle.
//! let mut reader = engine.reader();
//! let response = reader.execute_text(
//!     r#"CUBE import-trade-percentage BY import-country AGG sum
//!        FOR (*, "United States") AND (trade_country, *) AND (percentage, *)"#).unwrap();
//! assert!(response.cube().unwrap().cell(&["China"]).is_some());
//!
//! // The stateful session drives the same facade interactively.
//! let mut session = SedaSession::new(&engine);
//! session.submit_text(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#).unwrap();
//! let build = session.build_cube(&BuildOptions::default()).unwrap();
//! assert!(build.schema.fact("import-trade-percentage").is_some());
//! ```

pub mod audit;
pub mod engine;
pub mod error;
pub mod faults;
pub mod govern;
pub mod metrics;
pub mod optimize;
pub mod parallel;
pub mod plan;
pub mod prepared;
pub mod query;
pub mod reader;
pub mod request;
pub mod response;
pub mod session;
pub mod summaries;
pub mod trace;

pub use audit::verify_exec_profile;
pub use engine::{BuildProfile, EngineConfig, PhaseProfile, QueryProfile, SedaEngine};
pub use error::SedaError;
pub use govern::{Budget, CancelToken, RequestContext, Stopwatch};
pub use metrics::{Histogram, MetricsRegistry};
pub use optimize::{EmitShape, PlanOp, PlanProgram};
pub use parallel::WorkerPanic;
pub use plan::{PlanStep, QueryPlan};
pub use prepared::PreparedStatement;
pub use query::{ContextSpec, QueryError, QueryTerm, SedaQuery};
pub use reader::SedaReader;
pub use request::{RequestBuilder, SedaRequest, Statement};
pub use response::{ExecProfile, ResponsePayload, SedaResponse};
pub use session::{SedaSession, Session, SessionStage};
pub use summaries::{ConnectionSummary, ContextBucket, ContextSelections, ContextSummary};
pub use trace::{SpanCounters, SpanRecord, Tracer};

// Re-export the crates a downstream application typically needs alongside the
// engine, so `seda-core` works as a single entry point.
pub use seda_datagraph;
pub use seda_dataguide;
pub use seda_olap;
pub use seda_textindex;
pub use seda_topk;
pub use seda_twigjoin;
pub use seda_xmlstore;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::query::{ContextSpec, SedaQuery};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The query parser accepts any combination of well-formed terms and
        /// preserves the number of terms.
        #[test]
        fn parser_preserves_term_count(
            contexts in proptest::collection::vec("[a-z_]{1,10}", 1..5),
            keywords in proptest::collection::vec("[a-z]{1,8}", 1..5),
        ) {
            let n = contexts.len().min(keywords.len());
            let text = (0..n)
                .map(|i| format!("({}, {})", contexts[i], keywords[i]))
                .collect::<Vec<_>>()
                .join(" AND ");
            let parsed = SedaQuery::parse(&text).unwrap();
            prop_assert_eq!(parsed.len(), n);
        }

        /// Tag wildcard matching: a pattern constructed from a name by
        /// replacing its middle with `*` always matches that name.
        #[test]
        fn wildcard_from_name_matches_name(name in "[a-z_]{2,12}") {
            let pattern = format!("{}*{}", &name[..1], &name[name.len()-1..]);
            let spec = ContextSpec::parse(&pattern);
            if let ContextSpec::Tag(t) = spec {
                prop_assert!(crate::query::ContextSpec::parse(&t) != ContextSpec::Any);
            }
            // Matching is exercised through the public parse + a tiny collection.
            let mut c = seda_xmlstore::Collection::new();
            c.add_document("d.xml", |b| {
                b.start_element(&name)?;
                b.text("x")?;
                b.end_element()?;
                Ok(())
            }).unwrap();
            let root = seda_xmlstore::NodeId::new(seda_xmlstore::DocId(0), 0);
            prop_assert!(ContextSpec::parse(&pattern).matches(&c, root));
        }
    }
}
