//! The SEDA query language (Sec. 3, Definition 3).
//!
//! A SEDA query is a set of *query terms* `(context, search_query)`.  The
//! context component is empty, a root-to-leaf path, a tag-name keyword
//! (wildcards allowed), or a disjunction of those; the search-query component
//! is a full-text expression.  The textual form used by examples mirrors the
//! paper's notation:
//!
//! ```text
//! (*, "United States") AND (trade_country, *) AND (percentage, *)
//! ```

use serde::{Deserialize, Serialize};

use seda_textindex::{FullTextQuery, QueryParseError};
use seda_xmlstore::{Collection, NodeId, PathId};

/// The context component of a query term.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContextSpec {
    /// Empty context (`*`): any node may satisfy the term.
    Any,
    /// A full root-to-leaf path in `/a/b/c` notation.
    Path(String),
    /// A tag-name keyword; `*` wildcards are allowed (e.g. `trade*`).
    Tag(String),
    /// A disjunction of paths and tag names.
    Disjunction(Vec<ContextSpec>),
}

impl ContextSpec {
    /// Parses the textual context component: `*` (any), `/a/b/c` (path),
    /// `a|b` (disjunction), anything else (tag name, possibly with `*`
    /// wildcards).
    pub fn parse(input: &str) -> Self {
        let trimmed = input.trim();
        if trimmed.is_empty() || trimmed == "*" {
            return ContextSpec::Any;
        }
        if trimmed.contains('|') {
            return ContextSpec::Disjunction(trimmed.split('|').map(ContextSpec::parse).collect());
        }
        if trimmed.starts_with('/') {
            ContextSpec::Path(trimmed.to_string())
        } else {
            ContextSpec::Tag(trimmed.to_string())
        }
    }

    /// True when the spec places no restriction at all.
    pub fn is_any(&self) -> bool {
        matches!(self, ContextSpec::Any)
    }

    fn tag_matches(pattern: &str, name: &str) -> bool {
        if !pattern.contains('*') {
            return pattern == name;
        }
        // Simple glob: split on '*' and check the pieces appear in order,
        // anchored at both ends.
        let pieces: Vec<&str> = pattern.split('*').collect();
        let mut rest = name;
        for (i, piece) in pieces.iter().enumerate() {
            if piece.is_empty() {
                continue;
            }
            match rest.find(piece) {
                Some(pos) => {
                    if i == 0 && pos != 0 {
                        return false;
                    }
                    rest = &rest[pos + piece.len()..];
                }
                None => return false,
            }
        }
        if let Some(last) = pieces.last() {
            if !last.is_empty() && !name.ends_with(last) {
                return false;
            }
        }
        true
    }

    /// Definition 3(2): does a node with the given name and context satisfy
    /// this context spec?
    pub fn matches(&self, collection: &Collection, node: NodeId) -> bool {
        match self {
            ContextSpec::Any => true,
            ContextSpec::Path(path) => {
                collection.context_string(node).map(|c| c == *path).unwrap_or(false)
            }
            ContextSpec::Tag(tag) => {
                collection.node_name(node).map(|n| Self::tag_matches(tag, n)).unwrap_or(false)
            }
            ContextSpec::Disjunction(specs) => specs.iter().any(|s| s.matches(collection, node)),
        }
    }

    /// The set of distinct paths this spec allows, or `None` for an
    /// unrestricted spec.  Used to push context restrictions into the index.
    pub fn allowed_paths(&self, collection: &Collection) -> Option<Vec<PathId>> {
        match self {
            ContextSpec::Any => None,
            ContextSpec::Path(path) => Some(
                collection
                    .paths()
                    .get_str(collection.symbols(), path)
                    .map(|p| vec![p])
                    .unwrap_or_default(),
            ),
            ContextSpec::Tag(tag) => Some(
                collection
                    .paths()
                    .iter()
                    .filter(|(_, p)| {
                        p.leaf()
                            .map(|leaf| Self::tag_matches(tag, collection.symbols().resolve(leaf)))
                            .unwrap_or(false)
                    })
                    .map(|(id, _)| id)
                    .collect(),
            ),
            ContextSpec::Disjunction(specs) => {
                let mut any_unrestricted = false;
                let mut paths = Vec::new();
                for s in specs {
                    match s.allowed_paths(collection) {
                        None => any_unrestricted = true,
                        Some(p) => paths.extend(p),
                    }
                }
                if any_unrestricted {
                    None
                } else {
                    paths.sort();
                    paths.dedup();
                    Some(paths)
                }
            }
        }
    }
}

/// One query term: `(context, search_query)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTerm {
    /// The context component.
    pub context: ContextSpec,
    /// The full-text search component.
    pub search: FullTextQuery,
}

impl QueryTerm {
    /// Creates a term from components.
    pub fn new(context: ContextSpec, search: FullTextQuery) -> Self {
        QueryTerm { context, search }
    }

    /// A human-readable label, used as column name in R(q).
    pub fn label(&self) -> String {
        let context = match &self.context {
            ContextSpec::Any => "*".to_string(),
            ContextSpec::Path(p) => p.clone(),
            ContextSpec::Tag(t) => t.clone(),
            ContextSpec::Disjunction(ds) => format!("{} alternatives", ds.len()),
        };
        let search = match &self.search {
            FullTextQuery::Any => "*".to_string(),
            FullTextQuery::Keywords(ks) => ks.join(" "),
            FullTextQuery::Phrase(ps) => format!("\"{}\"", ps.join(" ")),
            other => format!("{other:?}"),
        };
        format!("({context}, {search})")
    }
}

/// A SEDA query: a set of query terms.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SedaQuery {
    /// The query terms, in user order.
    pub terms: Vec<QueryTerm>,
}

/// Errors from the query parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The overall `(ctx, search) AND …` structure was malformed.
    Malformed(String),
    /// A search-query component failed to parse.
    Search(QueryParseError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Malformed(m) => write!(f, "malformed SEDA query: {m}"),
            QueryError::Search(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl SedaQuery {
    /// Builds a query from terms.
    pub fn new(terms: Vec<QueryTerm>) -> Self {
        SedaQuery { terms }
    }

    /// Parses the paper-style notation
    /// `(context, search) AND (context, search) …` (the `∧` character is also
    /// accepted).  The search component follows the
    /// [`FullTextQuery::parse`] syntax.
    pub fn parse(input: &str) -> Result<Self, QueryError> {
        let normalised = input.replace('∧', "AND");
        let mut terms = Vec::new();
        let mut rest = normalised.trim();
        while !rest.is_empty() {
            if !rest.starts_with('(') {
                return Err(QueryError::Malformed(format!("expected '(' at {rest:?}")));
            }
            let close =
                rest.find(')').ok_or_else(|| QueryError::Malformed("missing ')'".to_string()))?;
            let inside = &rest[1..close];
            let comma = inside
                .find(',')
                .ok_or_else(|| QueryError::Malformed(format!("missing ',' in {inside:?}")))?;
            let context = ContextSpec::parse(&inside[..comma]);
            let search_text = inside[comma + 1..].trim();
            let search = if search_text.is_empty() {
                FullTextQuery::Any
            } else {
                FullTextQuery::parse(search_text).map_err(QueryError::Search)?
            };
            terms.push(QueryTerm::new(context, search));
            rest = rest[close + 1..].trim();
            if let Some(stripped) = rest.strip_prefix("AND") {
                rest = stripped.trim();
            } else if let Some(stripped) = rest.strip_prefix("and") {
                rest = stripped.trim();
            }
        }
        if terms.is_empty() {
            return Err(QueryError::Malformed("no query terms".to_string()));
        }
        Ok(SedaQuery::new(terms))
    }

    /// Number of query terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the query has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_xmlstore::parse_collection;

    #[test]
    fn parses_query_1_notation() {
        let q =
            SedaQuery::parse(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)
                .unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.terms[0].context, ContextSpec::Any);
        assert_eq!(q.terms[0].search, FullTextQuery::phrase("United States"));
        assert_eq!(q.terms[1].context, ContextSpec::Tag("trade_country".into()));
        assert_eq!(q.terms[1].search, FullTextQuery::Any);
    }

    #[test]
    fn parses_unicode_conjunction_and_paths() {
        let q = SedaQuery::parse(r#"(/country/name, "Romania") ∧ (/country/year, 2006)"#).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.terms[0].context, ContextSpec::Path("/country/name".into()));
        assert_eq!(q.terms[1].search, FullTextQuery::Keywords(vec!["2006".into()]));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(SedaQuery::parse("").is_err());
        assert!(SedaQuery::parse("country, Romania").is_err());
        assert!(SedaQuery::parse("(country Romania)").is_err());
        assert!(SedaQuery::parse("(country, \"unterminated)").is_err());
    }

    #[test]
    fn context_spec_parsing() {
        assert_eq!(ContextSpec::parse("*"), ContextSpec::Any);
        assert_eq!(ContextSpec::parse(" /a/b "), ContextSpec::Path("/a/b".into()));
        assert_eq!(ContextSpec::parse("trade_country"), ContextSpec::Tag("trade_country".into()));
        match ContextSpec::parse("/a/b|name") {
            ContextSpec::Disjunction(ds) => assert_eq!(ds.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn context_matching_against_nodes() {
        let c = parse_collection(vec![(
            "us.xml",
            r#"<country><name>United States</name>
                 <economy><import_partners><item>
                   <trade_country>China</trade_country></item></import_partners></economy>
               </country>"#,
        )])
        .unwrap();
        let name_path = c.paths().get_str(c.symbols(), "/country/name").unwrap();
        let name_node = c.nodes_with_path(name_path)[0];
        assert!(ContextSpec::Any.matches(&c, name_node));
        assert!(ContextSpec::Tag("name".into()).matches(&c, name_node));
        assert!(ContextSpec::Tag("na*".into()).matches(&c, name_node));
        assert!(!ContextSpec::Tag("trade_country".into()).matches(&c, name_node));
        assert!(ContextSpec::Path("/country/name".into()).matches(&c, name_node));
        assert!(!ContextSpec::Path("/country".into()).matches(&c, name_node));
        assert!(ContextSpec::parse("/country/name|trade_country").matches(&c, name_node));
    }

    #[test]
    fn allowed_paths_resolution() {
        let c = parse_collection(vec![(
            "us.xml",
            r#"<country>
                 <economy>
                   <import_partners><item><trade_country>China</trade_country><percentage>15</percentage></item></import_partners>
                   <export_partners><item><trade_country>Canada</trade_country><percentage>3</percentage></item></export_partners>
                 </economy>
               </country>"#,
        )])
        .unwrap();
        assert!(ContextSpec::Any.allowed_paths(&c).is_none());
        let tag = ContextSpec::Tag("trade_country".into());
        assert_eq!(tag.allowed_paths(&c).unwrap().len(), 2);
        let path = ContextSpec::Path("/country/economy/import_partners/item/percentage".into());
        assert_eq!(path.allowed_paths(&c).unwrap().len(), 1);
        let missing = ContextSpec::Path("/country/missing".into());
        assert!(missing.allowed_paths(&c).unwrap().is_empty());
        let disj = ContextSpec::parse("trade_country|percentage");
        assert_eq!(disj.allowed_paths(&c).unwrap().len(), 4);
    }

    #[test]
    fn tag_wildcards() {
        assert!(ContextSpec::tag_matches("trade*", "trade_country"));
        assert!(ContextSpec::tag_matches("*country", "trade_country"));
        assert!(ContextSpec::tag_matches("*ade*", "trade_country"));
        assert!(!ContextSpec::tag_matches("trade", "trade_country"));
        assert!(!ContextSpec::tag_matches("x*", "trade_country"));
        assert!(ContextSpec::tag_matches("*", "anything"));
    }

    #[test]
    fn labels_are_readable() {
        let q = SedaQuery::parse(r#"(*, "United States") AND (percentage, *)"#).unwrap();
        assert_eq!(q.terms[0].label(), "(*, \"united states\")");
        assert_eq!(q.terms[1].label(), "(percentage, *)");
    }
}
