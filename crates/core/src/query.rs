//! The SEDA query language (Sec. 3, Definition 3).
//!
//! A SEDA query is a set of *query terms* `(context, search_query)`.  The
//! context component is empty, a root-to-leaf path, a tag-name keyword
//! (wildcards allowed), or a disjunction of those; the search-query component
//! is a full-text expression.  The textual form used by examples mirrors the
//! paper's notation:
//!
//! ```text
//! (*, "United States") AND (trade_country, *) AND (percentage, *)
//! ```

use serde::{Deserialize, Serialize};

use seda_textindex::{FullTextQuery, QueryParseError};
use seda_xmlstore::{Collection, NodeId, PathId};

/// The context component of a query term.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContextSpec {
    /// Empty context (`*`): any node may satisfy the term.
    Any,
    /// A full root-to-leaf path in `/a/b/c` notation.
    Path(String),
    /// A tag-name keyword; `*` wildcards are allowed (e.g. `trade*`).
    Tag(String),
    /// A disjunction of paths and tag names.
    Disjunction(Vec<ContextSpec>),
}

impl ContextSpec {
    /// Parses the textual context component: `*` (any), `/a/b/c` (path),
    /// `a|b` (disjunction), anything else (tag name, possibly with `*`
    /// wildcards).  Disjunctions are normalised through
    /// [`ContextSpec::disjunction`], so `a|b|c` parses to one flat 3-way
    /// disjunction, never nested pairs.
    pub fn parse(input: &str) -> Self {
        let trimmed = input.trim();
        if trimmed.is_empty() || trimmed == "*" {
            return ContextSpec::Any;
        }
        if trimmed.contains('|') {
            return ContextSpec::disjunction(trimmed.split('|').map(ContextSpec::parse).collect());
        }
        if trimmed.starts_with('/') {
            ContextSpec::Path(trimmed.to_string())
        } else {
            ContextSpec::Tag(trimmed.to_string())
        }
    }

    /// Normalising disjunction constructor: nested disjunctions are
    /// flattened, duplicates removed (keeping first occurrence), an
    /// unrestricted alternative absorbs the whole disjunction, and a
    /// single-alternative disjunction collapses to that alternative.
    pub fn disjunction(specs: Vec<ContextSpec>) -> ContextSpec {
        fn flatten(spec: ContextSpec, out: &mut Vec<ContextSpec>) {
            match spec {
                ContextSpec::Disjunction(inner) => {
                    for s in inner {
                        flatten(s, out);
                    }
                }
                other => out.push(other),
            }
        }
        let mut flat = Vec::new();
        for spec in specs {
            flatten(spec, &mut flat);
        }
        if flat.iter().any(ContextSpec::is_any) {
            return ContextSpec::Any;
        }
        let mut deduped: Vec<ContextSpec> = Vec::with_capacity(flat.len());
        for spec in flat {
            if !deduped.contains(&spec) {
                deduped.push(spec);
            }
        }
        match deduped.len() {
            0 => ContextSpec::Any,
            1 => deduped.pop().expect("invariant: the len == 1 arm holds exactly one element"),
            _ => ContextSpec::Disjunction(deduped),
        }
    }

    /// True when the spec places no restriction at all.
    pub fn is_any(&self) -> bool {
        matches!(self, ContextSpec::Any)
    }

    /// Glob matching for tag-name patterns, anchored at both ends: the text
    /// before the first `*` must be a prefix of `name`, the text after the
    /// last `*` must be a suffix of what remains after matching every middle
    /// piece left-to-right.
    fn tag_matches(pattern: &str, name: &str) -> bool {
        if !pattern.contains('*') {
            return pattern == name;
        }
        let pieces: Vec<&str> = pattern.split('*').collect();
        let (first, tail) =
            pieces.split_first().expect("invariant: split always yields at least one piece");
        let Some(mut rest) = name.strip_prefix(first) else {
            return false;
        };
        let (last, middle) = tail
            .split_last()
            .expect("invariant: a pattern with '*' splits into two or more pieces");
        for piece in middle {
            if piece.is_empty() {
                continue;
            }
            match rest.find(piece) {
                Some(pos) => rest = &rest[pos + piece.len()..],
                None => return false,
            }
        }
        // End anchor: the final piece must be a suffix of the *remaining*
        // text (not merely of `name`, which could overlap already-consumed
        // characters).
        rest.ends_with(last)
    }

    /// Definition 3(2): does a node with the given name and context satisfy
    /// this context spec?
    pub fn matches(&self, collection: &Collection, node: NodeId) -> bool {
        match self {
            ContextSpec::Any => true,
            ContextSpec::Path(path) => {
                collection.context_string(node).map(|c| c == *path).unwrap_or(false)
            }
            ContextSpec::Tag(tag) => {
                collection.node_name(node).map(|n| Self::tag_matches(tag, n)).unwrap_or(false)
            }
            ContextSpec::Disjunction(specs) => specs.iter().any(|s| s.matches(collection, node)),
        }
    }

    /// The set of distinct paths this spec allows, or `None` for an
    /// unrestricted spec.  Used to push context restrictions into the index.
    pub fn allowed_paths(&self, collection: &Collection) -> Option<Vec<PathId>> {
        match self {
            ContextSpec::Any => None,
            ContextSpec::Path(path) => Some(
                collection
                    .paths()
                    .get_str(collection.symbols(), path)
                    .map(|p| vec![p])
                    .unwrap_or_default(),
            ),
            ContextSpec::Tag(tag) => Some(
                collection
                    .paths()
                    .iter()
                    .filter(|(_, p)| {
                        p.leaf()
                            .map(|leaf| Self::tag_matches(tag, collection.symbols().resolve(leaf)))
                            .unwrap_or(false)
                    })
                    .map(|(id, _)| id)
                    .collect(),
            ),
            ContextSpec::Disjunction(specs) => {
                let mut any_unrestricted = false;
                let mut paths = Vec::new();
                for s in specs {
                    match s.allowed_paths(collection) {
                        None => any_unrestricted = true,
                        Some(p) => paths.extend(p),
                    }
                }
                if any_unrestricted {
                    None
                } else {
                    paths.sort();
                    paths.dedup();
                    Some(paths)
                }
            }
        }
    }
}

/// One query term: `(context, search_query)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTerm {
    /// The context component.
    pub context: ContextSpec,
    /// The full-text search component.
    pub search: FullTextQuery,
}

impl std::fmt::Display for ContextSpec {
    /// Renders the spec in the textual syntax accepted by
    /// [`ContextSpec::parse`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContextSpec::Any => write!(f, "*"),
            ContextSpec::Path(p) => write!(f, "{p}"),
            ContextSpec::Tag(t) => write!(f, "{t}"),
            ContextSpec::Disjunction(ds) => {
                for (i, d) in ds.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
        }
    }
}

impl QueryTerm {
    /// Creates a term from components.
    pub fn new(context: ContextSpec, search: FullTextQuery) -> Self {
        QueryTerm { context, search }
    }

    /// A human-readable label, used as column name in R(q); identical to the
    /// term's canonical textual form.
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for QueryTerm {
    /// Renders the term as `(context, search)`, reparseable by
    /// [`SedaQuery::parse`].
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.context, self.search)
    }
}

/// A SEDA query: a set of query terms.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SedaQuery {
    /// The query terms, in user order.
    pub terms: Vec<QueryTerm>,
}

/// Errors from the query parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The overall `(ctx, search) AND …` structure was malformed.
    Malformed(String),
    /// A search-query component failed to parse.
    Search(QueryParseError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Malformed(m) => write!(f, "malformed SEDA query: {m}"),
            QueryError::Search(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl SedaQuery {
    /// Builds a query from terms.
    pub fn new(terms: Vec<QueryTerm>) -> Self {
        SedaQuery { terms }
    }

    /// Parses the paper-style notation
    /// `(context, search) AND (context, search) …` (the `∧` character is also
    /// accepted).  The search component follows the
    /// [`FullTextQuery::parse`] syntax; parentheses inside a search component
    /// nest (`(name, (china OR canada) AND NOT mexico)`) and quoted phrases
    /// may contain parentheses.
    pub fn parse(input: &str) -> Result<Self, QueryError> {
        let normalised = input.replace('∧', "AND");
        let mut terms = Vec::new();
        let mut rest = normalised.trim();
        while !rest.is_empty() {
            if !rest.starts_with('(') {
                return Err(QueryError::Malformed(format!("expected '(' at {rest:?}")));
            }
            let close = Self::matching_close(rest)
                .ok_or_else(|| QueryError::Malformed("missing ')'".to_string()))?;
            let inside = &rest[1..close];
            let comma = inside
                .find(',')
                .ok_or_else(|| QueryError::Malformed(format!("missing ',' in {inside:?}")))?;
            let context = ContextSpec::parse(&inside[..comma]);
            let search_text = inside[comma + 1..].trim();
            let search = if search_text.is_empty() {
                FullTextQuery::Any
            } else {
                FullTextQuery::parse(search_text).map_err(QueryError::Search)?
            };
            terms.push(QueryTerm::new(context, search));
            rest = rest[close + 1..].trim();
            if let Some(stripped) = rest.strip_prefix("AND") {
                rest = stripped.trim();
            } else if let Some(stripped) = rest.strip_prefix("and") {
                rest = stripped.trim();
            }
        }
        if terms.is_empty() {
            return Err(QueryError::Malformed("no query terms".to_string()));
        }
        Ok(SedaQuery::new(terms))
    }

    /// Index of the `)` closing the `(` that `text` starts with, respecting
    /// nested parentheses and double-quoted phrases.
    fn matching_close(text: &str) -> Option<usize> {
        debug_assert!(text.starts_with('('));
        let mut depth = 0usize;
        let mut in_quotes = false;
        for (i, c) in text.char_indices() {
            match c {
                '"' => in_quotes = !in_quotes,
                '(' if !in_quotes => depth += 1,
                ')' if !in_quotes => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Number of query terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the query has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

impl std::fmt::Display for SedaQuery {
    /// Renders the query in the canonical textual form accepted by
    /// [`SedaQuery::parse`]: `parse(&q.to_string())` reproduces `q` for every
    /// query built from parseable components.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, term) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{term}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_xmlstore::parse_collection;

    #[test]
    fn parses_query_1_notation() {
        let q =
            SedaQuery::parse(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)
                .unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.terms[0].context, ContextSpec::Any);
        assert_eq!(q.terms[0].search, FullTextQuery::phrase("United States"));
        assert_eq!(q.terms[1].context, ContextSpec::Tag("trade_country".into()));
        assert_eq!(q.terms[1].search, FullTextQuery::Any);
    }

    #[test]
    fn parses_unicode_conjunction_and_paths() {
        let q = SedaQuery::parse(r#"(/country/name, "Romania") ∧ (/country/year, 2006)"#).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.terms[0].context, ContextSpec::Path("/country/name".into()));
        assert_eq!(q.terms[1].search, FullTextQuery::Keywords(vec!["2006".into()]));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(SedaQuery::parse("").is_err());
        assert!(SedaQuery::parse("country, Romania").is_err());
        assert!(SedaQuery::parse("(country Romania)").is_err());
        assert!(SedaQuery::parse("(country, \"unterminated)").is_err());
    }

    #[test]
    fn context_spec_parsing() {
        assert_eq!(ContextSpec::parse("*"), ContextSpec::Any);
        assert_eq!(ContextSpec::parse(" /a/b "), ContextSpec::Path("/a/b".into()));
        assert_eq!(ContextSpec::parse("trade_country"), ContextSpec::Tag("trade_country".into()));
        match ContextSpec::parse("/a/b|name") {
            ContextSpec::Disjunction(ds) => assert_eq!(ds.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn context_matching_against_nodes() {
        let c = parse_collection(vec![(
            "us.xml",
            r#"<country><name>United States</name>
                 <economy><import_partners><item>
                   <trade_country>China</trade_country></item></import_partners></economy>
               </country>"#,
        )])
        .unwrap();
        let name_path = c.paths().get_str(c.symbols(), "/country/name").unwrap();
        let name_node = c.nodes_with_path(name_path)[0];
        assert!(ContextSpec::Any.matches(&c, name_node));
        assert!(ContextSpec::Tag("name".into()).matches(&c, name_node));
        assert!(ContextSpec::Tag("na*".into()).matches(&c, name_node));
        assert!(!ContextSpec::Tag("trade_country".into()).matches(&c, name_node));
        assert!(ContextSpec::Path("/country/name".into()).matches(&c, name_node));
        assert!(!ContextSpec::Path("/country".into()).matches(&c, name_node));
        assert!(ContextSpec::parse("/country/name|trade_country").matches(&c, name_node));
    }

    #[test]
    fn allowed_paths_resolution() {
        let c = parse_collection(vec![(
            "us.xml",
            r#"<country>
                 <economy>
                   <import_partners><item><trade_country>China</trade_country><percentage>15</percentage></item></import_partners>
                   <export_partners><item><trade_country>Canada</trade_country><percentage>3</percentage></item></export_partners>
                 </economy>
               </country>"#,
        )])
        .unwrap();
        assert!(ContextSpec::Any.allowed_paths(&c).is_none());
        let tag = ContextSpec::Tag("trade_country".into());
        assert_eq!(tag.allowed_paths(&c).unwrap().len(), 2);
        let path = ContextSpec::Path("/country/economy/import_partners/item/percentage".into());
        assert_eq!(path.allowed_paths(&c).unwrap().len(), 1);
        let missing = ContextSpec::Path("/country/missing".into());
        assert!(missing.allowed_paths(&c).unwrap().is_empty());
        let disj = ContextSpec::parse("trade_country|percentage");
        assert_eq!(disj.allowed_paths(&c).unwrap().len(), 4);
    }

    #[test]
    fn tag_wildcards() {
        assert!(ContextSpec::tag_matches("trade*", "trade_country"));
        assert!(ContextSpec::tag_matches("*country", "trade_country"));
        assert!(ContextSpec::tag_matches("*ade*", "trade_country"));
        assert!(!ContextSpec::tag_matches("trade", "trade_country"));
        assert!(!ContextSpec::tag_matches("x*", "trade_country"));
        assert!(ContextSpec::tag_matches("*", "anything"));
    }

    #[test]
    fn tag_wildcards_are_anchored_at_both_ends() {
        // Start anchor: the text before the first '*' must be a prefix.
        assert!(!ContextSpec::tag_matches("trade*", "xtrade_country"));
        // End anchor: the text after the last '*' must be a suffix.
        assert!(!ContextSpec::tag_matches("*country", "trade_country_x"));
        // The suffix must live in the text remaining after the middle pieces
        // matched; an earlier overlapping occurrence does not count.
        assert!(!ContextSpec::tag_matches("ab*b", "ab"));
        assert!(ContextSpec::tag_matches("ab*b", "abb"));
        assert!(ContextSpec::tag_matches("a*b*c", "a_b_c"));
        assert!(!ContextSpec::tag_matches("a*b*c", "a_c_b"));
        // Adjacent stars collapse; a pattern built only of stars matches all.
        assert!(ContextSpec::tag_matches("a**c", "abc"));
        assert!(ContextSpec::tag_matches("**", "anything"));
        // A star-free pattern is an exact match.
        assert!(ContextSpec::tag_matches("name", "name"));
        assert!(!ContextSpec::tag_matches("name", "names"));
    }

    #[test]
    fn disjunctions_parse_flat_never_nested() {
        match ContextSpec::parse("a|b|c") {
            ContextSpec::Disjunction(ds) => {
                assert_eq!(ds.len(), 3, "a|b|c must be one 3-way disjunction");
                assert!(
                    ds.iter().all(|d| !matches!(d, ContextSpec::Disjunction(_))),
                    "no nested pairs: {ds:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Programmatic nesting flattens through the normalising constructor.
        let nested = ContextSpec::disjunction(vec![
            ContextSpec::Disjunction(vec![
                ContextSpec::Tag("a".into()),
                ContextSpec::Tag("b".into()),
            ]),
            ContextSpec::Tag("c".into()),
        ]);
        assert_eq!(nested, ContextSpec::parse("a|b|c"));
        // An unrestricted alternative absorbs the disjunction.
        assert_eq!(ContextSpec::parse("a|*|b"), ContextSpec::Any);
        // Duplicates collapse; singletons unwrap.
        assert_eq!(ContextSpec::parse("a|a"), ContextSpec::Tag("a".into()));
        assert_eq!(
            ContextSpec::disjunction(vec![ContextSpec::Path("/a/b".into())]),
            ContextSpec::Path("/a/b".into())
        );
    }

    #[test]
    fn query_display_round_trips() {
        for text in [
            r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#,
            r#"(/country/name, "Romania") AND (/country/year, 2006)"#,
            "(name, (china OR canada) AND NOT mexico)",
            "(a|b|/c/d, x y z)",
        ] {
            let parsed = SedaQuery::parse(text).unwrap();
            let rendered = parsed.to_string();
            assert_eq!(
                SedaQuery::parse(&rendered).unwrap(),
                parsed,
                "display of {text:?} must reparse identically (got {rendered:?})"
            );
        }
    }

    #[test]
    fn nested_parens_in_search_components_parse() {
        let q = SedaQuery::parse("(name, (china OR canada) AND NOT mexico) AND (year, *)").unwrap();
        assert_eq!(q.len(), 2);
        assert!(matches!(q.terms[0].search, FullTextQuery::And(_, _)));
        // A quoted phrase may contain parentheses.
        let q = SedaQuery::parse(r#"(name, "korea (south)")"#).unwrap();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn labels_are_readable() {
        let q = SedaQuery::parse(r#"(*, "United States") AND (percentage, *)"#).unwrap();
        assert_eq!(q.terms[0].label(), "(*, \"united states\")");
        assert_eq!(q.terms[1].label(), "(percentage, *)");
    }
}
