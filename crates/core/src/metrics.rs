//! Engine-wide metrics: named counters, gauges and log-bucketed latency
//! histograms, aggregated per statement type.
//!
//! The ROADMAP's serving-layer scorecard ("QPS, p50/p99/p999 per workload")
//! needs a metrics substrate before any of those numbers can exist; this
//! module is that substrate.  A [`MetricsRegistry`] owns a *fixed catalog* of
//! metrics — every name is registered exactly once at construction and
//! referenced through the typed constants in [`names`] (the `metric-name`
//! rule of `cargo xtask lint` rejects stringly-typed call sites) — and every
//! value lives in an atomic, so recording never allocates and never takes a
//! lock.
//!
//! Latency is recorded in [`Histogram`]s with an HDR-style bucket ladder:
//! eight linear buckets for sub-8µs values, then eight sub-buckets per
//! power-of-two octave (≤ 12.5 % relative quantile error), all in one flat
//! atomic array.  The same type backs the repetition statistics of
//! `seda-bench`, so committed BENCH numbers and served metrics share one
//! quantile implementation.
//!
//! Snapshots are deterministic: [`MetricsRegistry::snapshot`] renders the
//! catalog as JSON sorted by `(name, label)`, and
//! [`MetricsRegistry::render_prometheus`] emits the conventional text
//! exposition format for the future serving layer.
//!
//! # Invariant catalog (substrate `metrics`)
//!
//! | class | invariant |
//! |---|---|
//! | `histogram-buckets` | bucket counts sum to the recorded count; bucket bounds strictly increase |
//! | `histogram-minmax` | recorded min ≤ max when non-empty; empty histograms keep their sentinel min/max |
//! | `snapshot-deterministic` | two consecutive snapshots of a quiescent registry are identical |

use std::sync::atomic::{AtomicU64, Ordering};

use seda_xmlstore::audit::{finish, AuditResult, InvariantViolation};

/// The typed metric-name catalog.  Every metric the engine records is named
/// here exactly once; call sites pass these constants (never string
/// literals — `cargo xtask lint` enforces it).
pub mod names {
    /// Requests executed, per statement type.
    pub const REQUESTS_TOTAL: &str = "seda_requests_total";
    /// Requests that returned an error (any statement).
    pub const REQUEST_ERRORS_TOTAL: &str = "seda_request_errors_total";
    /// Budget ceilings hit ([`crate::SedaError::Limit`] surfaced).
    pub const BUDGET_BREACHES_TOTAL: &str = "seda_budget_breaches_total";
    /// Requests answered with a degraded (partial-prefix) payload.
    pub const DEGRADED_RESPONSES_TOTAL: &str = "seda_degraded_responses_total";
    /// Requests stopped by a [`crate::CancelToken`].
    pub const CANCELLATIONS_TOTAL: &str = "seda_cancellations_total";
    /// Panics contained into [`crate::SedaError::Internal`].
    pub const PANICS_CONTAINED_TOTAL: &str = "seda_panics_contained_total";
    /// Shared-scratch queries that lost the lock race and ran on a fresh
    /// allocation (mirrors [`crate::SedaEngine::fresh_scratch_fallbacks`]).
    pub const FRESH_SCRATCH_FALLBACKS_TOTAL: &str = "seda_fresh_scratch_fallbacks_total";
    /// Result rows returned, per statement type.
    pub const ROWS_RETURNED_TOTAL: &str = "seda_rows_returned_total";
    /// End-to-end request latency histogram, per statement type.
    pub const REQUEST_LATENCY_SECONDS: &str = "seda_request_latency_seconds";
    /// Documents in the engine's collection (set at build time).
    pub const ENGINE_DOCUMENTS: &str = "seda_engine_documents";
    /// Bytes held by the connectivity-oracle labels (set at build time).
    pub const ORACLE_LABEL_BYTES: &str = "seda_oracle_label_bytes";
}

/// The statement labels the per-statement metrics are registered under —
/// kept in sync with [`crate::Statement::name`].
const STATEMENT_LABELS: [&str; 6] = ["TOPK", "CONTEXTS", "CONNECTIONS", "RESULTS", "TWIG", "CUBE"];

const SUBSTRATE: &str = "metrics";

/// Linear buckets for values below the first octave.
const LINEAR_BUCKETS: usize = 8;
/// Sub-buckets per power-of-two octave.
const SUB_BUCKETS: usize = 8;
/// Octaves covered before values clamp into the last bucket (the ladder
/// reaches past 2³⁵ µs ≈ 9.5 hours, far beyond any request latency).
const OCTAVES: usize = 32;
/// Total buckets of the fixed ladder.
const BUCKETS: usize = LINEAR_BUCKETS + OCTAVES * SUB_BUCKETS;

/// A log-bucketed latency histogram over unsigned microseconds: a fixed
/// HDR-style bucket ladder (flat atomic array, no allocation on record) plus
/// exact count/sum/min/max.  Quantiles are bucket upper bounds clamped to the
/// observed `[min, max]`, so the relative error stays within one sub-bucket
/// (≤ 12.5 %).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    /// Inclusive upper bound of each bucket, strictly increasing.  Stored
    /// (rather than recomputed) so the structural audit can check — and the
    /// seeded-corruption suite can break — the ladder's monotonicity.
    bounds: [u64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Inclusive upper bound of ladder bucket `i`.
fn ladder_bound(i: usize) -> u64 {
    if i < LINEAR_BUCKETS {
        i as u64
    } else {
        let octave = (i - LINEAR_BUCKETS) / SUB_BUCKETS;
        let sub = ((i - LINEAR_BUCKETS) % SUB_BUCKETS) as u64;
        (SUB_BUCKETS as u64 + 1 + sub) << octave
    }
}

/// Ladder bucket index of value `v`.
fn ladder_index(v: u64) -> usize {
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let octave = msb - 3;
    if octave >= OCTAVES {
        return BUCKETS - 1;
    }
    let sub = ((v >> octave) as usize) - SUB_BUCKETS;
    LINEAR_BUCKETS + octave * SUB_BUCKETS + sub
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            bounds: std::array::from_fn(ladder_bound),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (microseconds).
    pub fn observe_micros(&self, v: u64) {
        self.buckets[ladder_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records one value given in seconds (clamped at zero).
    pub fn observe_secs(&self, secs: f64) {
        self.observe_micros((secs.max(0.0) * 1e6) as u64);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (microseconds).
    pub fn sum_micros(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min_micros(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// Largest recorded value, `None` when empty.
    pub fn max_micros(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in microseconds: the upper bound of the
    /// bucket the cumulative count crosses `⌈q·count⌉` in, clamped to the
    /// observed `[min, max]`.  Returns 0 for an empty histogram.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        let mut estimate = self.bounds[BUCKETS - 1];
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                estimate = self.bounds[i];
                break;
            }
        }
        let lo = self.min.load(Ordering::Relaxed);
        let hi = self.max.load(Ordering::Relaxed);
        estimate.clamp(lo.min(hi), hi)
    }

    /// The `q`-quantile in milliseconds (bench-report convenience).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile_micros(q) as f64 / 1e3
    }

    /// This histogram's invariant violations, labelled `what` in details.
    fn violations(&self, what: &str) -> Vec<InvariantViolation> {
        let mut violations = Vec::new();
        let bucket_sum: u64 = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        let count = self.count();
        if bucket_sum != count {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "histogram-buckets",
                format!("{what}: bucket counts sum to {bucket_sum}, recorded count is {count}"),
            ));
        }
        if let Some(w) = self.bounds.windows(2).position(|w| w[0] >= w[1]) {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "histogram-buckets",
                format!(
                    "{what}: bucket bounds not strictly increasing at {w} ({} >= {})",
                    self.bounds[w],
                    self.bounds[w + 1]
                ),
            ));
        }
        let (min, max) = (self.min.load(Ordering::Relaxed), self.max.load(Ordering::Relaxed));
        let minmax_ok = if count == 0 { min == u64::MAX && max == 0 } else { min <= max };
        if !minmax_ok {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "histogram-minmax",
                format!("{what}: min {min} / max {max} inconsistent with count {count}"),
            ));
        }
        violations
    }

    /// Test-only corruption: adds `delta` to bucket `i` without touching the
    /// recorded count (breaks the `histogram-buckets` sum invariant).
    #[doc(hidden)]
    pub fn corrupt_bucket(&self, i: usize, delta: u64) {
        self.buckets[i].fetch_add(delta, Ordering::Relaxed);
    }

    /// Test-only corruption: swaps two bucket bounds (breaks the
    /// `histogram-buckets` monotonicity invariant).
    #[doc(hidden)]
    pub fn corrupt_swap_bounds(&mut self, i: usize, j: usize) {
        self.bounds.swap(i, j);
    }

    /// Test-only corruption: forces min above max (breaks the
    /// `histogram-minmax` invariant).
    #[doc(hidden)]
    pub fn corrupt_minmax(&self) {
        self.min.store(u64::MAX - 1, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        self.count.fetch_add(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A monotonically increasing counter handle (borrowed from the registry).
#[derive(Debug, Clone, Copy)]
pub struct Counter<'a> {
    cell: &'a AtomicU64,
}

impl Counter<'_> {
    /// Adds one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (borrowed from the registry).
#[derive(Debug, Clone, Copy)]
pub struct Gauge<'a> {
    cell: &'a AtomicU64,
}

impl Gauge<'_> {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// One registered scalar metric.
#[derive(Debug)]
struct Scalar {
    name: &'static str,
    label: &'static str,
    value: AtomicU64,
}

/// One registered histogram metric.
#[derive(Debug)]
struct HistogramEntry {
    name: &'static str,
    label: &'static str,
    histogram: Histogram,
}

/// The engine-wide registry: a fixed catalog of counters, gauges and latency
/// histograms, all atomically updated through borrowed handles.  Lookups by
/// an unregistered `(name, label)` pair return a live no-op slot that is
/// excluded from snapshots, so recording never panics and never allocates.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Vec<Scalar>,
    gauges: Vec<Scalar>,
    histograms: Vec<HistogramEntry>,
    /// Shared sink for unregistered counter/gauge lookups.
    noop: AtomicU64,
    /// Shared sink for unregistered histogram lookups.
    noop_histogram: Histogram,
}

impl MetricsRegistry {
    /// A registry holding the full engine catalog (see [`names`]), with every
    /// value zeroed.
    pub fn new() -> Self {
        let mut counters = Vec::new();
        let mut register = |name: &'static str, label: &'static str| {
            counters.push(Scalar { name, label, value: AtomicU64::new(0) });
        };
        for statement in STATEMENT_LABELS {
            register(names::REQUESTS_TOTAL, statement);
            register(names::ROWS_RETURNED_TOTAL, statement);
        }
        for global in [
            names::REQUEST_ERRORS_TOTAL,
            names::BUDGET_BREACHES_TOTAL,
            names::DEGRADED_RESPONSES_TOTAL,
            names::CANCELLATIONS_TOTAL,
            names::PANICS_CONTAINED_TOTAL,
            names::FRESH_SCRATCH_FALLBACKS_TOTAL,
        ] {
            register(global, "");
        }
        let gauges = [names::ENGINE_DOCUMENTS, names::ORACLE_LABEL_BYTES]
            .into_iter()
            .map(|name| Scalar { name, label: "", value: AtomicU64::new(0) })
            .collect();
        let histograms = STATEMENT_LABELS
            .into_iter()
            .map(|label| HistogramEntry {
                name: names::REQUEST_LATENCY_SECONDS,
                label,
                histogram: Histogram::new(),
            })
            .collect();
        MetricsRegistry {
            counters,
            gauges,
            histograms,
            noop: AtomicU64::new(0),
            noop_histogram: Histogram::new(),
        }
    }

    /// The counter registered under `(name, label)` (global counters use the
    /// empty label); a no-op handle when unregistered.
    pub fn counter(&self, name: &str, label: &str) -> Counter<'_> {
        let cell = self
            .counters
            .iter()
            .find(|s| s.name == name && s.label == label)
            .map_or(&self.noop, |s| &s.value);
        Counter { cell }
    }

    /// The gauge registered under `name`; a no-op handle when unregistered.
    pub fn gauge(&self, name: &str) -> Gauge<'_> {
        let cell = self.gauges.iter().find(|s| s.name == name).map_or(&self.noop, |s| &s.value);
        Gauge { cell }
    }

    /// The histogram registered under `(name, label)`; a no-op sink when
    /// unregistered.
    pub fn histogram(&self, name: &str, label: &str) -> &Histogram {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.label == label)
            .map_or(&self.noop_histogram, |h| &h.histogram)
    }

    /// Renders the whole catalog as deterministic JSON: entries sorted by
    /// `(name, label)`, histograms summarised as count/sum/min/max and the
    /// p50/p95/p99 quantiles (all in integer microseconds).
    pub fn snapshot(&self) -> String {
        let mut counters: Vec<&Scalar> = self.counters.iter().collect();
        counters.sort_by_key(|s| (s.name, s.label));
        let mut gauges: Vec<&Scalar> = self.gauges.iter().collect();
        gauges.sort_by_key(|s| (s.name, s.label));
        let mut histograms: Vec<&HistogramEntry> = self.histograms.iter().collect();
        histograms.sort_by_key(|h| (h.name, h.label));

        let scalar_json = |s: &Scalar| {
            format!(
                r#"    {{"name": "{}", "label": "{}", "value": {}}}"#,
                s.name,
                s.label,
                s.value.load(Ordering::Relaxed)
            )
        };
        let mut out = String::from("{\n  \"counters\": [\n");
        out.push_str(&counters.iter().map(|s| scalar_json(s)).collect::<Vec<_>>().join(",\n"));
        out.push_str("\n  ],\n  \"gauges\": [\n");
        out.push_str(&gauges.iter().map(|s| scalar_json(s)).collect::<Vec<_>>().join(",\n"));
        out.push_str("\n  ],\n  \"histograms\": [\n");
        let hist_json = |h: &HistogramEntry| {
            format!(
                r#"    {{"name": "{}", "label": "{}", "count": {}, "sum_us": {}, "min_us": {}, "max_us": {}, "p50_us": {}, "p95_us": {}, "p99_us": {}}}"#,
                h.name,
                h.label,
                h.histogram.count(),
                h.histogram.sum_micros(),
                h.histogram.min_micros().unwrap_or(0),
                h.histogram.max_micros().unwrap_or(0),
                h.histogram.quantile_micros(0.50),
                h.histogram.quantile_micros(0.95),
                h.histogram.quantile_micros(0.99),
            )
        };
        out.push_str(&histograms.iter().map(|h| hist_json(h)).collect::<Vec<_>>().join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the catalog in the Prometheus text exposition format
    /// (counters and gauges as-is, histograms as quantile summaries in
    /// seconds), for the future serving layer to expose.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        let mut counters: Vec<&Scalar> = self.counters.iter().collect();
        counters.sort_by_key(|s| (s.name, s.label));
        for s in counters {
            if s.name != last_name {
                out.push_str(&format!("# TYPE {} counter\n", s.name));
                last_name = s.name;
            }
            let labels = if s.label.is_empty() {
                String::new()
            } else {
                format!("{{statement=\"{}\"}}", s.label)
            };
            out.push_str(&format!("{}{} {}\n", s.name, labels, s.value.load(Ordering::Relaxed)));
        }
        for s in &self.gauges {
            out.push_str(&format!("# TYPE {} gauge\n", s.name));
            out.push_str(&format!("{} {}\n", s.name, s.value.load(Ordering::Relaxed)));
        }
        let mut last_name = "";
        let mut histograms: Vec<&HistogramEntry> = self.histograms.iter().collect();
        histograms.sort_by_key(|h| (h.name, h.label));
        for h in histograms {
            if h.name != last_name {
                out.push_str(&format!("# TYPE {} summary\n", h.name));
                last_name = h.name;
            }
            for (q, tag) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{}{{statement=\"{}\",quantile=\"{}\"}} {:.6}\n",
                    h.name,
                    h.label,
                    tag,
                    h.histogram.quantile_micros(q) as f64 / 1e6
                ));
            }
            out.push_str(&format!(
                "{}_sum{{statement=\"{}\"}} {:.6}\n",
                h.name,
                h.label,
                h.histogram.sum_micros() as f64 / 1e6
            ));
            out.push_str(&format!(
                "{}_count{{statement=\"{}\"}} {}\n",
                h.name,
                h.label,
                h.histogram.count()
            ));
        }
        out
    }

    /// Verifies the registry's structural invariants: every histogram's
    /// bucket/count consistency and bound monotonicity
    /// (`histogram-buckets`), min/max sanity (`histogram-minmax`), and
    /// snapshot determinism (`snapshot-deterministic`).  Quiescent fresh
    /// registries always pass.
    pub fn verify(&self) -> AuditResult {
        let mut violations = Vec::new();
        for h in &self.histograms {
            violations.extend(h.histogram.violations(&format!("{}{{{}}}", h.name, h.label)));
        }
        if self.snapshot() != self.snapshot() {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "snapshot-deterministic",
                "two consecutive snapshots of a quiescent registry differ".to_string(),
            ));
        }
        finish(violations)
    }

    /// Test-only corruption access: mutable histogram lookup so the
    /// seeded-corruption suite can reach the `corrupt_*` hooks.
    #[doc(hidden)]
    pub fn corrupt_histogram(&mut self, name: &str, label: &str) -> Option<&mut Histogram> {
        self.histograms
            .iter_mut()
            .find(|h| h.name == name && h.label == label)
            .map(|h| &mut h.histogram)
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_bounds_are_strictly_increasing_and_cover_the_index_map() {
        let h = Histogram::new();
        assert!(h.bounds.windows(2).all(|w| w[0] < w[1]));
        for v in [0u64, 1, 7, 8, 9, 100, 1_000, 123_456, u64::MAX / 2] {
            let i = ladder_index(v);
            assert!(i < BUCKETS);
            // The bucket's bound is an upper estimate (within one sub-bucket).
            if i < BUCKETS - 1 {
                assert!(ladder_bound(i) as u128 * 2 >= v as u128, "bound({i}) too far below {v}");
            }
        }
    }

    #[test]
    fn histogram_quantiles_bracket_the_recorded_values() {
        let h = Histogram::new();
        for ms in 1..=100u64 {
            h.observe_micros(ms * 1_000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min_micros(), Some(1_000));
        assert_eq!(h.max_micros(), Some(100_000));
        let p50 = h.quantile_micros(0.50);
        assert!((40_000..=60_000).contains(&p50), "p50 was {p50}");
        let p99 = h.quantile_micros(0.99);
        assert!((90_000..=100_000).contains(&p99), "p99 was {p99}");
        assert_eq!(h.quantile_micros(1.0), 100_000);
        assert_eq!(Histogram::new().quantile_micros(0.5), 0);
    }

    #[test]
    fn registry_records_through_typed_names_and_noops_unknowns() {
        let m = MetricsRegistry::new();
        m.counter(names::REQUESTS_TOTAL, "TOPK").inc();
        m.counter(names::REQUESTS_TOTAL, "TOPK").add(2);
        assert_eq!(m.counter(names::REQUESTS_TOTAL, "TOPK").get(), 3);
        assert_eq!(m.counter(names::REQUESTS_TOTAL, "CUBE").get(), 0);
        m.gauge(names::ENGINE_DOCUMENTS).set(7);
        assert_eq!(m.gauge(names::ENGINE_DOCUMENTS).get(), 7);
        m.histogram(names::REQUEST_LATENCY_SECONDS, "TOPK").observe_secs(0.001);
        assert_eq!(m.histogram(names::REQUEST_LATENCY_SECONDS, "TOPK").count(), 1);
        // Unregistered lookups are live no-ops, absent from the snapshot.
        m.counter("bogus", "").inc();
        m.histogram("bogus", "").observe_micros(1);
        assert!(!m.snapshot().contains("bogus"));
        m.verify().unwrap();
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let m = MetricsRegistry::new();
        m.counter(names::REQUESTS_TOTAL, "TWIG").inc();
        let a = m.snapshot();
        assert_eq!(a, m.snapshot());
        let budget = a.find(names::BUDGET_BREACHES_TOTAL).unwrap();
        let requests = a.find(names::REQUESTS_TOTAL).unwrap();
        assert!(budget < requests, "snapshot entries must sort by name");
        assert!(a.contains(r#""name": "seda_requests_total", "label": "TWIG", "value": 1"#));
    }

    #[test]
    fn prometheus_rendering_exposes_types_and_quantiles() {
        let m = MetricsRegistry::new();
        m.counter(names::REQUESTS_TOTAL, "TOPK").inc();
        m.histogram(names::REQUEST_LATENCY_SECONDS, "TOPK").observe_micros(2_000);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE seda_requests_total counter"));
        assert!(text.contains("seda_requests_total{statement=\"TOPK\"} 1"));
        assert!(text.contains("# TYPE seda_request_latency_seconds summary"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("seda_request_latency_seconds_count{statement=\"TOPK\"} 1"));
    }

    #[test]
    fn corrupted_histograms_fail_their_audit() {
        let mut m = MetricsRegistry::new();
        m.histogram(names::REQUEST_LATENCY_SECONDS, "TOPK").observe_micros(500);
        m.verify().unwrap();
        m.corrupt_histogram(names::REQUEST_LATENCY_SECONDS, "TOPK").unwrap().corrupt_bucket(0, 3);
        let violations = m.verify().unwrap_err();
        assert!(violations.iter().any(|v| v.invariant == "histogram-buckets"), "{violations:?}");

        let mut m = MetricsRegistry::new();
        m.histogram(names::REQUEST_LATENCY_SECONDS, "CUBE").observe_micros(500);
        m.corrupt_histogram(names::REQUEST_LATENCY_SECONDS, "CUBE").unwrap().corrupt_minmax();
        let violations = m.verify().unwrap_err();
        assert!(violations.iter().any(|v| v.invariant == "histogram-minmax"), "{violations:?}");

        let mut m = MetricsRegistry::new();
        m.corrupt_histogram(names::REQUEST_LATENCY_SECONDS, "TWIG")
            .unwrap()
            .corrupt_swap_bounds(0, BUCKETS - 1);
        let violations = m.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.substrate == "metrics"), "{violations:?}");
    }
}
