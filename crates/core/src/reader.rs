//! Per-thread reader handles: the contention-free execution surface of the
//! query facade.
//!
//! A [`SedaReader`] is a cheap handle over a shared [`SedaEngine`] that owns
//! its own [`SearchScratch`] (posting-list buffers, candidate arenas,
//! traversal scratch).  Every query a reader executes reuses that scratch, so N
//! threads holding N readers serve queries fully in parallel without ever
//! touching the engine's shared mutex — the reader-handle discipline that
//! keeps per-reader state small and reusable.
//!
//! ```
//! use seda_core::{EngineConfig, SedaEngine, SedaRequest};
//! use seda_olap::Registry;
//! use seda_xmlstore::parse_collection;
//!
//! let collection = parse_collection(vec![("us.xml",
//!     r#"<country><name>United States</name><year>2006</year></country>"#)]).unwrap();
//! let engine = SedaEngine::build(collection, Registry::new(), EngineConfig::default()).unwrap();
//! let mut reader = engine.reader();
//! let response = reader.execute_text(r#"TOPK 5 FOR (name, "United States")"#).unwrap();
//! assert_eq!(response.top_k().unwrap().tuples.len(), 1);
//! ```

use seda_olap::{aggregate, CubeQuery, CubeResult, QueryResultTable, StarSchemaBuild};
use seda_topk::{LimitBreach, MaterializedTerms, SearchScratch, TopKResult, TupleScoreCache};

use crate::engine::{catch_internal, SedaEngine};
use crate::error::SedaError;
use crate::govern::{RequestContext, Stopwatch};
use crate::metrics::names;
use crate::optimize::{EmitShape, PlanOp};
use crate::parallel::{effective_parallelism, parallel_map_with};
use crate::plan::QueryPlan;
use crate::prepared::PreparedStatement;
use crate::query::SedaQuery;
use crate::request::{SedaRequest, Statement};
use crate::response::{ExecProfile, ResponsePayload, SedaResponse};
use crate::summaries::{ConnectionSummary, ContextSelections, ContextSummary};
use crate::trace::{render_analyzed, span, SpanCounters, Tracer};

/// Resolves a governance breach against the request's policy: cancellation
/// and (recomputed) deadlines keep their precise numbers, a degraded-opt-in
/// caller keeps the partial payload with [`ExecProfile::degraded`] set, and
/// everyone else gets the typed [`SedaError::Limit`].
fn resolve_breach(
    breach: Option<LimitBreach>,
    ctx: &RequestContext,
    profile: &mut ExecProfile,
) -> Result<(), SedaError> {
    let Some(breach) = breach else { return Ok(()) };
    if breach.resource == "cancelled" {
        return Err(SedaError::Cancelled);
    }
    // The searcher reports deadline breaches with placeholder numbers (it
    // does not know the request's start instant); rebuild them here.
    let breach = if breach.resource == "deadline" {
        ctx.deadline_breach().unwrap_or(breach)
    } else {
        breach
    };
    if ctx.degraded_allowed() {
        profile.degraded = true;
        Ok(())
    } else {
        Err(breach.into())
    }
}

/// Clips a degraded payload to `keep` rows, preserving each shape's order
/// (score order for top-k tuples, frequency order for summaries, sorted row
/// order for tables, cell order for cubes).
fn truncate_payload(payload: &mut ResponsePayload, keep: usize) {
    match payload {
        ResponsePayload::TopK(result) => result.tuples.truncate(keep),
        ResponsePayload::Contexts(summary) => {
            let mut remaining = keep;
            for bucket in &mut summary.buckets {
                bucket.entries.truncate(remaining);
                remaining -= bucket.entries.len();
            }
        }
        ResponsePayload::Connections { summary, .. } => summary.connections.truncate(keep),
        ResponsePayload::Table(table) => table.rows.truncate(keep),
        ResponsePayload::Cube { cube, .. } => cube.cells.truncate(keep),
        ResponsePayload::Explain(_) => {}
    }
}

/// Cross-execution state a [`PreparedStatement`] lends to the interpreter
/// for one execution: the materialized term lists (skipping sorted-access
/// resolution) and the compactness memo (skipping repeated label probes).
struct PreparedState<'p> {
    materialized: Option<&'p MaterializedTerms>,
    cache: &'p mut TupleScoreCache,
}

/// A compiled program referenced a register no prior instruction filled —
/// a compiler bug, surfaced as a contained internal error.
fn empty_register(op: &'static str, register: &'static str) -> SedaError {
    SedaError::Internal(format!("program invariant: {op} needs the {register} register"))
}

/// A per-thread query handle owning its own scratch buffers.
pub struct SedaReader<'e> {
    engine: &'e SedaEngine,
    scratch: SearchScratch,
    /// Per-reader span recorder.  Disabled by default (enters cost one
    /// branch); enabled via [`SedaReader::set_tracing`] or, for a single
    /// request, by `EXPLAIN ANALYZE`.
    tracer: Tracer,
}

impl SedaEngine {
    /// Creates a reader handle for this engine.
    ///
    /// Readers are cheap (buffers grow lazily to their working size) and
    /// never contend: each owns its scratch, so one reader per thread serves
    /// concurrent queries without blocking on the engine's shared state.
    pub fn reader(&self) -> SedaReader<'_> {
        SedaReader { engine: self, scratch: SearchScratch::new(), tracer: Tracer::disabled() }
    }

    /// Plans and executes a batch of requests, fanning them across a pool of
    /// reader handles (`parallelism` as in [`crate::EngineConfig`]: `0` =
    /// auto, `1` = inline, `n` = `n` workers).  Results are returned in
    /// request order; each request fails or succeeds independently.
    pub fn execute_batch(
        &self,
        requests: &[SedaRequest],
        parallelism: usize,
    ) -> Vec<Result<SedaResponse, SedaError>> {
        let threads = effective_parallelism(parallelism).max(1);
        parallel_map_with(
            requests,
            threads,
            || self.reader(),
            |reader, request| reader.execute(request),
        )
        .into_iter()
        .map(|slot| match slot {
            Ok(result) => result,
            // A panic was contained inside the worker; the neighbouring
            // requests completed on rebuilt reader state.
            Err(panic) => Err(SedaError::Internal(panic.message)),
        })
        .collect()
    }
}

impl<'e> SedaReader<'e> {
    /// The engine this reader serves.
    pub fn engine(&self) -> &'e SedaEngine {
        self.engine
    }

    /// Deprecated alias of [`SedaEngine::prepare`]; use
    /// [`SedaReader::prepare`] for a reusable statement or
    /// [`SedaEngine::prepare`] for the bare plan.
    #[deprecated(since = "0.1.0", note = "use SedaReader::prepare or SedaEngine::prepare")]
    pub fn plan(&self, request: &SedaRequest) -> Result<QueryPlan, SedaError> {
        self.engine.prepare(request)
    }

    /// Compiles a request into a reusable [`PreparedStatement`]: the fully
    /// optimized plan plus the cross-execution state (materialized sorted
    /// posting lists, compactness memo) that makes repeated execution cheap.
    ///
    /// Preparing touches no reader scratch, and the returned statement may
    /// execute through *any* reader of this engine.
    pub fn prepare(&self, request: &SedaRequest) -> Result<PreparedStatement, SedaError> {
        let plan = self.engine.prepare(request)?;
        let materialized = (!plan.term_inputs.is_empty())
            .then(|| self.engine.materialize_search_terms(&plan.term_inputs));
        Ok(PreparedStatement { plan, materialized, cache: TupleScoreCache::new(), executions: 0 })
    }

    /// Plans a request and returns the plan transcript.
    pub fn explain(&self, request: &SedaRequest) -> Result<String, SedaError> {
        Ok(self.engine.prepare(request)?.explain())
    }

    /// Turns span tracing on or off for every subsequent request this reader
    /// executes.  Traced requests carry their span tree in
    /// [`ExecProfile::spans`]; untraced requests leave it empty.
    pub fn set_tracing(&mut self, enabled: bool) {
        self.tracer.reset();
        self.tracer.set_enabled(enabled);
    }

    /// True when this reader records spans for every request.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Parses and executes a textual request.
    pub fn execute_text(&mut self, text: &str) -> Result<SedaResponse, SedaError> {
        self.tracer.begin_if_idle();
        let parse_span = self.tracer.enter(span::PARSE);
        let request = match SedaRequest::parse(text) {
            Ok(request) => request,
            Err(err) => {
                self.tracer.exit(parse_span);
                self.tracer.reset();
                return Err(err);
            }
        };
        self.tracer.exit(parse_span);
        self.execute(&request)
    }

    /// Plans and executes a request through this reader's scratch.
    ///
    /// An `EXPLAIN` request stops after planning and returns the transcript
    /// as [`ResponsePayload::Explain`].
    pub fn execute(&mut self, request: &SedaRequest) -> Result<SedaResponse, SedaError> {
        self.execute_governed(request, &RequestContext::unlimited())
    }

    /// [`SedaReader::execute`] under a per-request [`RequestContext`]:
    /// deadlines, budget ceilings and cancellation are enforced at the
    /// pipeline's counter sites, a breach surfaces as [`SedaError::Limit`]
    /// (or a partial payload with [`ExecProfile::degraded`] set when the
    /// context allows degraded responses), and any panic below is contained
    /// into [`SedaError::Internal`], leaving the reader and engine usable.
    pub fn execute_governed(
        &mut self,
        request: &SedaRequest,
        ctx: &RequestContext,
    ) -> Result<SedaResponse, SedaError> {
        // EXPLAIN ANALYZE forces tracing on for this one request, restoring
        // the reader's steady-state setting afterwards.
        let analyze = request.explain && request.analyze;
        let force_tracing = analyze && !self.tracer.is_enabled();
        if force_tracing {
            self.tracer.set_enabled(true);
        }
        let outcome = self.execute_governed_inner(request, ctx);
        if force_tracing {
            self.tracer.set_enabled(false);
        }
        self.record_request_metrics(request, &outcome);
        outcome
    }

    fn execute_governed_inner(
        &mut self,
        request: &SedaRequest,
        ctx: &RequestContext,
    ) -> Result<SedaResponse, SedaError> {
        self.tracer.begin_if_idle();
        let plan_span = self.tracer.enter(span::PLAN);
        let plan_start = Stopwatch::start();
        let plan = match self.engine.prepare(request) {
            Ok(plan) => plan,
            Err(err) => {
                self.tracer.exit(plan_span);
                self.tracer.reset();
                return Err(err);
            }
        };
        let plan_secs = plan_start.elapsed_secs();
        self.tracer.exit(plan_span);
        if request.explain && !request.analyze {
            let mut profile = ExecProfile { plan_secs, ..ExecProfile::default() };
            profile.spans = self.tracer.take_spans();
            let payload = ResponsePayload::Explain(plan.explain());
            profile.rows = payload.rows();
            return Ok(SedaResponse { payload, profile });
        }
        let mut response = self.execute_plan_governed(&plan, ctx)?;
        response.profile.plan_secs = plan_secs;
        if request.analyze {
            // EXPLAIN ANALYZE: the payload becomes the annotated transcript
            // (plan + budget accounting + executed span tree); the profile
            // keeps the execution's counters, wall split and spans.
            let transcript = render_analyzed(&plan.explain(), &response.profile);
            response.payload = ResponsePayload::Explain(transcript);
        }
        Ok(response)
    }

    /// Records the request's outcome into the engine-wide metrics registry
    /// (see [`crate::metrics`]).  Only this facade entry point records, so a
    /// request is counted exactly once however deep the pipeline recursed.
    fn record_request_metrics(
        &self,
        request: &SedaRequest,
        outcome: &Result<SedaResponse, SedaError>,
    ) {
        let metrics = self.engine.metrics();
        let label = request.statement.name();
        metrics.counter(names::REQUESTS_TOTAL, label).inc();
        match outcome {
            Ok(response) => {
                metrics
                    .counter(names::ROWS_RETURNED_TOTAL, label)
                    .add(response.profile.rows as u64);
                metrics
                    .histogram(names::REQUEST_LATENCY_SECONDS, label)
                    .observe_secs(response.profile.total_secs());
                if response.profile.degraded {
                    metrics.counter(names::DEGRADED_RESPONSES_TOTAL, "").inc();
                }
            }
            Err(err) => {
                metrics.counter(names::REQUEST_ERRORS_TOTAL, "").inc();
                match err {
                    SedaError::Limit { .. } => {
                        metrics.counter(names::BUDGET_BREACHES_TOTAL, "").inc();
                    }
                    SedaError::Cancelled => {
                        metrics.counter(names::CANCELLATIONS_TOTAL, "").inc();
                    }
                    SedaError::Internal(_) => {
                        metrics.counter(names::PANICS_CONTAINED_TOTAL, "").inc();
                    }
                    _ => {}
                }
            }
        }
    }

    /// Executes an already-planned request.
    pub fn execute_plan(&mut self, plan: &QueryPlan) -> Result<SedaResponse, SedaError> {
        self.execute_plan_governed(plan, &RequestContext::unlimited())
    }

    /// [`SedaReader::execute_plan`] under a per-request [`RequestContext`];
    /// the panic-containment boundary of the execution path.
    pub fn execute_plan_governed(
        &mut self,
        plan: &QueryPlan,
        ctx: &RequestContext,
    ) -> Result<SedaResponse, SedaError> {
        let outcome = catch_internal(|| self.execute_plan_inner(plan, ctx));
        if matches!(outcome, Err(SedaError::Internal(_))) {
            // A contained panic may have left this reader's scratch buffers
            // mid-update; rebuild them so the next query starts clean.
            self.scratch = SearchScratch::new();
        }
        if outcome.is_err() {
            // Spans left open by the failed execution (including an unwound
            // one) must not leak into the next request's trace.
            self.tracer.reset();
        }
        outcome
    }

    fn execute_plan_inner(
        &mut self,
        plan: &QueryPlan,
        ctx: &RequestContext,
    ) -> Result<SedaResponse, SedaError> {
        self.execute_program(plan, ctx, None)
    }

    /// Executes a [`PreparedStatement`] through this reader's scratch
    /// (ungoverned; see [`SedaReader::execute_prepared_governed`]).
    pub fn execute_prepared(
        &mut self,
        statement: &mut PreparedStatement,
    ) -> Result<SedaResponse, SedaError> {
        self.execute_prepared_governed(statement, &RequestContext::unlimited())
    }

    /// [`SedaReader::execute_prepared`] under a per-request
    /// [`RequestContext`]: the interpreter runs over the statement's
    /// materialized term lists and compactness memo instead of rebuilding
    /// them, with the same panic-containment and governance semantics as
    /// [`SedaReader::execute_plan_governed`].
    pub fn execute_prepared_governed(
        &mut self,
        statement: &mut PreparedStatement,
        ctx: &RequestContext,
    ) -> Result<SedaResponse, SedaError> {
        let PreparedStatement { plan, materialized, cache, executions } = statement;
        let state = PreparedState { materialized: materialized.as_ref(), cache };
        let outcome = catch_internal(|| self.execute_program(plan, ctx, Some(state)));
        if matches!(outcome, Err(SedaError::Internal(_))) {
            self.scratch = SearchScratch::new();
        }
        if outcome.is_err() {
            self.tracer.reset();
        } else {
            *executions += 1;
        }
        outcome
    }

    /// The [`crate::PlanProgram`] interpreter: runs the compiled instruction
    /// stream over a small register file (top-k, contexts, connections,
    /// table, schema build, cube), with the same span names, governance
    /// sites and truncation semantics as the fixed-sequence executor it
    /// replaced ([`SedaReader::execute_plan_unoptimized`], kept as the
    /// equivalence oracle).
    fn execute_program(
        &mut self,
        plan: &QueryPlan,
        ctx: &RequestContext,
        mut prepared: Option<PreparedState<'_>>,
    ) -> Result<SedaResponse, SedaError> {
        self.tracer.begin_if_idle();
        let exec_span = self.tracer.enter(span::EXECUTE);
        let exec_start = Stopwatch::start();
        let mut profile = ExecProfile::default();
        ctx.check_cancelled()?;
        let limits = ctx.search_limits();
        let mut top_k: Option<TopKResult> = None;
        let mut contexts: Option<ContextSummary> = None;
        let mut connections: Option<ConnectionSummary> = None;
        let mut table: Option<QueryResultTable> = None;
        let mut build: Option<StarSchemaBuild> = None;
        let mut cube: Option<CubeResult> = None;
        let mut payload: Option<ResponsePayload> = None;
        for op in plan.program().ops() {
            match op {
                PlanOp::Search { k, strategy } => {
                    let s = self.tracer.enter(span::SEARCH);
                    let before = profile.clone();
                    let mut config = plan.search_config().clone();
                    config.k = *k;
                    let (result, _, breach) = match prepared.as_mut() {
                        Some(state) => self.engine.search_compiled(
                            &plan.term_inputs,
                            &config,
                            &limits,
                            &mut self.scratch,
                            state.materialized,
                            Some(state.cache),
                            *strategy,
                        ),
                        None => self.engine.search_compiled(
                            &plan.term_inputs,
                            &config,
                            &limits,
                            &mut self.scratch,
                            None,
                            None,
                            *strategy,
                        ),
                    };
                    profile.absorb(&result.stats);
                    let mut counters = SpanCounters::delta(&before, &profile);
                    counters.rows = result.tuples.len();
                    self.tracer.exit_with(s, counters);
                    resolve_breach(breach, ctx, &mut profile)?;
                    top_k = Some(result);
                }
                PlanOp::ContextBuckets => {
                    let query = plan
                        .query
                        .as_ref()
                        .expect("invariant: the planner attaches a query to this statement shape");
                    let s = self.tracer.enter(span::CONTEXT_SUMMARY);
                    let summary = self.engine.context_summary(query);
                    let counters =
                        SpanCounters { rows: summary.total_contexts(), ..SpanCounters::default() };
                    self.tracer.exit_with(s, counters);
                    resolve_breach(ctx.deadline_breach(), ctx, &mut profile)?;
                    contexts = Some(summary);
                }
                PlanOp::DiscoverConnections => {
                    ctx.check_cancelled()?;
                    let top = top_k
                        .as_ref()
                        .ok_or_else(|| empty_register("discover-connections", "top-k"))?;
                    let s = self.tracer.enter(span::DISCOVER_CONNECTIONS);
                    let summary = self.engine.connection_summary(top);
                    let counters = SpanCounters { rows: summary.len(), ..SpanCounters::default() };
                    self.tracer.exit_with(s, counters);
                    resolve_breach(ctx.deadline_breach(), ctx, &mut profile)?;
                    connections = Some(summary);
                }
                PlanOp::CompleteResults => {
                    let query = plan
                        .query
                        .as_ref()
                        .expect("invariant: the planner attaches a query to this statement shape");
                    let s = self.tracer.enter(span::COMPLETE_RESULTS);
                    let (rows, breach) = self.engine.complete_results_governed(
                        query,
                        &plan.selections,
                        &plan.connections,
                        &mut self.scratch,
                        ctx,
                    )?;
                    let counters = SpanCounters { rows: rows.len(), ..SpanCounters::default() };
                    self.tracer.exit_with(s, counters);
                    resolve_breach(breach, ctx, &mut profile)?;
                    table = Some(rows);
                }
                PlanOp::TwigEvaluate => {
                    let pattern = plan
                        .pattern
                        .as_ref()
                        .expect("invariant: the planner compiles twig statements to a pattern");
                    let s = self.tracer.enter(span::TWIG_EVALUATE);
                    let (mut rows, nodes_visited) = self.engine.twig_table(pattern);
                    let counters =
                        SpanCounters { nodes_visited, rows: rows.len(), ..SpanCounters::default() };
                    self.tracer.exit_with(s, counters);
                    if let Some(breach) = ctx.twig_breach(rows.len()) {
                        let keep = breach.budget as usize;
                        resolve_breach(Some(breach), ctx, &mut profile)?;
                        rows.rows.truncate(keep);
                    }
                    resolve_breach(ctx.deadline_breach(), ctx, &mut profile)?;
                    table = Some(rows);
                }
                PlanOp::DeriveStarSchema => {
                    ctx.check_cancelled()?;
                    let rows = table
                        .as_ref()
                        .ok_or_else(|| empty_register("derive-star-schema", "table"))?;
                    let s = self.tracer.enter(span::DERIVE_STAR_SCHEMA);
                    let derived = self.engine.build_star_schema(rows, &plan.cube_options);
                    self.tracer.exit(s);
                    build = Some(derived);
                }
                PlanOp::Aggregate => {
                    let Statement::Cube { fact, group_by, agg, measure } = &plan.statement else {
                        return Err(SedaError::Internal(
                            "program invariant: aggregate outside a CUBE statement".to_string(),
                        ));
                    };
                    let derived =
                        build.as_ref().ok_or_else(|| empty_register("aggregate", "schema"))?;
                    let fact_table = derived
                        .schema
                        .fact(fact)
                        .ok_or_else(|| SedaError::UnknownFact(fact.clone()))?;
                    let measure = measure.clone().unwrap_or_else(|| fact.clone());
                    let group_refs: Vec<&str> = group_by.iter().map(String::as_str).collect();
                    let cube_query = CubeQuery::sum(&group_refs, &measure).with_agg(*agg);
                    let s = self.tracer.enter(span::AGGREGATE);
                    let result = aggregate(fact_table, &cube_query);
                    let counters = SpanCounters {
                        rows: result.as_ref().map(|c| c.rows_scanned).unwrap_or(0),
                        ..SpanCounters::default()
                    };
                    self.tracer.exit_with(s, counters);
                    let mut result = result?;
                    if let Some(breach) = ctx.cube_breach(result.len()) {
                        let keep = breach.budget as usize;
                        resolve_breach(Some(breach), ctx, &mut profile)?;
                        result.cells.truncate(keep);
                    }
                    cube = Some(result);
                }
                PlanOp::Emit(shape) => {
                    payload = Some(match shape {
                        EmitShape::TopK => ResponsePayload::TopK(
                            top_k.take().ok_or_else(|| empty_register("emit", "top-k"))?,
                        ),
                        EmitShape::Contexts => ResponsePayload::Contexts(
                            contexts.take().ok_or_else(|| empty_register("emit", "contexts"))?,
                        ),
                        EmitShape::Connections => ResponsePayload::Connections {
                            top_k: top_k.take().ok_or_else(|| empty_register("emit", "top-k"))?,
                            summary: connections
                                .take()
                                .ok_or_else(|| empty_register("emit", "connections"))?,
                        },
                        EmitShape::Table => ResponsePayload::Table(
                            table.take().ok_or_else(|| empty_register("emit", "table"))?,
                        ),
                        EmitShape::Cube => ResponsePayload::Cube {
                            build: build.take().ok_or_else(|| empty_register("emit", "schema"))?,
                            cube: cube.take().ok_or_else(|| empty_register("emit", "cube"))?,
                        },
                    });
                }
            }
        }
        let mut payload = payload.ok_or_else(|| {
            SedaError::Internal("program invariant: no emit instruction ran".to_string())
        })?;
        if let Some(breach) = ctx.row_breach(payload.rows()) {
            let keep = breach.budget as usize;
            resolve_breach(Some(breach), ctx, &mut profile)?;
            truncate_payload(&mut payload, keep);
        }
        profile.exec_secs = exec_start.elapsed_secs();
        profile.rows = payload.rows();
        profile.settle_budget_spent();
        self.tracer.exit(exec_span);
        profile.spans = self.tracer.take_spans();
        Ok(SedaResponse { payload, profile })
    }

    /// The pre-optimizer fixed-sequence executor, kept verbatim as the
    /// equivalence oracle: the `optimizer_equivalence` suite pins the
    /// interpreter's payloads and work counters against it, statement shape
    /// by statement shape.  Not part of the supported API.
    #[doc(hidden)]
    pub fn execute_plan_unoptimized(
        &mut self,
        plan: &QueryPlan,
        ctx: &RequestContext,
    ) -> Result<SedaResponse, SedaError> {
        let outcome = catch_internal(|| self.execute_fixed_inner(plan, ctx));
        if matches!(outcome, Err(SedaError::Internal(_))) {
            self.scratch = SearchScratch::new();
        }
        if outcome.is_err() {
            self.tracer.reset();
        }
        outcome
    }

    fn execute_fixed_inner(
        &mut self,
        plan: &QueryPlan,
        ctx: &RequestContext,
    ) -> Result<SedaResponse, SedaError> {
        self.tracer.begin_if_idle();
        let exec_span = self.tracer.enter(span::EXECUTE);
        let exec_start = Stopwatch::start();
        let mut profile = ExecProfile::default();
        ctx.check_cancelled()?;
        let limits = ctx.search_limits();
        let mut payload = match &plan.statement {
            Statement::TopK { k } => {
                let s = self.tracer.enter(span::SEARCH);
                let before = profile.clone();
                let (result, _, breach) = self.engine.search_terms_governed(
                    &plan.term_inputs,
                    *k,
                    &limits,
                    &mut self.scratch,
                );
                profile.absorb(&result.stats);
                let mut counters = SpanCounters::delta(&before, &profile);
                counters.rows = result.tuples.len();
                self.tracer.exit_with(s, counters);
                resolve_breach(breach, ctx, &mut profile)?;
                ResponsePayload::TopK(result)
            }
            Statement::ContextSummary => {
                let query = plan
                    .query
                    .as_ref()
                    .expect("invariant: the planner attaches a query to this statement shape");
                let s = self.tracer.enter(span::CONTEXT_SUMMARY);
                let contexts = self.engine.context_summary(query);
                let counters =
                    SpanCounters { rows: contexts.total_contexts(), ..SpanCounters::default() };
                self.tracer.exit_with(s, counters);
                resolve_breach(ctx.deadline_breach(), ctx, &mut profile)?;
                ResponsePayload::Contexts(contexts)
            }
            Statement::ConnectionSummary { k } => {
                let s = self.tracer.enter(span::SEARCH);
                let before = profile.clone();
                let (top_k, _, breach) = self.engine.search_terms_governed(
                    &plan.term_inputs,
                    *k,
                    &limits,
                    &mut self.scratch,
                );
                profile.absorb(&top_k.stats);
                let mut counters = SpanCounters::delta(&before, &profile);
                counters.rows = top_k.tuples.len();
                self.tracer.exit_with(s, counters);
                resolve_breach(breach, ctx, &mut profile)?;
                ctx.check_cancelled()?;
                let s = self.tracer.enter(span::DISCOVER_CONNECTIONS);
                let summary = self.engine.connection_summary(&top_k);
                let counters = SpanCounters { rows: summary.len(), ..SpanCounters::default() };
                self.tracer.exit_with(s, counters);
                resolve_breach(ctx.deadline_breach(), ctx, &mut profile)?;
                ResponsePayload::Connections { top_k, summary }
            }
            Statement::CompleteResults => {
                let query = plan
                    .query
                    .as_ref()
                    .expect("invariant: the planner attaches a query to this statement shape");
                let s = self.tracer.enter(span::COMPLETE_RESULTS);
                let (table, breach) = self.engine.complete_results_governed(
                    query,
                    &plan.selections,
                    &plan.connections,
                    &mut self.scratch,
                    ctx,
                )?;
                let counters = SpanCounters { rows: table.len(), ..SpanCounters::default() };
                self.tracer.exit_with(s, counters);
                resolve_breach(breach, ctx, &mut profile)?;
                ResponsePayload::Table(table)
            }
            Statement::Twig { .. } => {
                let pattern = plan
                    .pattern
                    .as_ref()
                    .expect("invariant: the planner compiles twig statements to a pattern");
                let s = self.tracer.enter(span::TWIG_EVALUATE);
                let (mut table, nodes_visited) = self.engine.twig_table(pattern);
                let counters =
                    SpanCounters { nodes_visited, rows: table.len(), ..SpanCounters::default() };
                self.tracer.exit_with(s, counters);
                if let Some(breach) = ctx.twig_breach(table.len()) {
                    let keep = breach.budget as usize;
                    resolve_breach(Some(breach), ctx, &mut profile)?;
                    table.rows.truncate(keep);
                }
                resolve_breach(ctx.deadline_breach(), ctx, &mut profile)?;
                ResponsePayload::Table(table)
            }
            Statement::Cube { fact, group_by, agg, measure } => {
                let query = plan
                    .query
                    .as_ref()
                    .expect("invariant: the planner attaches a query to this statement shape");
                let s = self.tracer.enter(span::COMPLETE_RESULTS);
                let (table, breach) = self.engine.complete_results_governed(
                    query,
                    &plan.selections,
                    &plan.connections,
                    &mut self.scratch,
                    ctx,
                )?;
                let counters = SpanCounters { rows: table.len(), ..SpanCounters::default() };
                self.tracer.exit_with(s, counters);
                resolve_breach(breach, ctx, &mut profile)?;
                ctx.check_cancelled()?;
                let s = self.tracer.enter(span::DERIVE_STAR_SCHEMA);
                let build = self.engine.build_star_schema(&table, &plan.cube_options);
                self.tracer.exit(s);
                let fact_table =
                    build.schema.fact(fact).ok_or_else(|| SedaError::UnknownFact(fact.clone()))?;
                let measure = measure.clone().unwrap_or_else(|| fact.clone());
                let group_refs: Vec<&str> = group_by.iter().map(String::as_str).collect();
                let cube_query = CubeQuery::sum(&group_refs, &measure).with_agg(*agg);
                let s = self.tracer.enter(span::AGGREGATE);
                let cube = aggregate(fact_table, &cube_query);
                let counters = SpanCounters {
                    rows: cube.as_ref().map(|c| c.rows_scanned).unwrap_or(0),
                    ..SpanCounters::default()
                };
                self.tracer.exit_with(s, counters);
                let mut cube = cube?;
                if let Some(breach) = ctx.cube_breach(cube.len()) {
                    let keep = breach.budget as usize;
                    resolve_breach(Some(breach), ctx, &mut profile)?;
                    cube.cells.truncate(keep);
                }
                ResponsePayload::Cube { build, cube }
            }
        };
        if let Some(breach) = ctx.row_breach(payload.rows()) {
            let keep = breach.budget as usize;
            resolve_breach(Some(breach), ctx, &mut profile)?;
            truncate_payload(&mut payload, keep);
        }
        profile.exec_secs = exec_start.elapsed_secs();
        profile.rows = payload.rows();
        profile.settle_budget_spent();
        self.tracer.exit(exec_span);
        profile.spans = self.tracer.take_spans();
        Ok(SedaResponse { payload, profile })
    }

    // ----- typed helpers (the surface `SedaSession` composes) -----

    /// Top-k search through this reader's scratch; never contends.
    pub fn top_k(
        &mut self,
        query: &SedaQuery,
        selections: &ContextSelections,
        k: usize,
    ) -> (TopKResult, ExecProfile) {
        let (result, query_profile) =
            self.engine.top_k_scratch(query, selections, k, &mut self.scratch);
        let mut profile =
            ExecProfile { exec_secs: query_profile.wall_secs, ..ExecProfile::default() };
        profile.absorb(&result.stats);
        profile.rows = result.tuples.len();
        (result, profile)
    }

    /// [`SedaReader::top_k`] under a per-request [`RequestContext`]: a
    /// budget breach yields the certifiably correct prefix with
    /// [`ExecProfile::degraded`] set when the context allows degraded
    /// responses, and [`SedaError::Limit`] otherwise.
    pub fn top_k_governed(
        &mut self,
        query: &SedaQuery,
        selections: &ContextSelections,
        k: usize,
        ctx: &RequestContext,
    ) -> Result<(TopKResult, ExecProfile), SedaError> {
        ctx.check_cancelled()?;
        let limits = ctx.search_limits();
        let (result, query_profile, breach) =
            self.engine.top_k_scratch_governed(query, selections, k, &limits, &mut self.scratch);
        let mut profile =
            ExecProfile { exec_secs: query_profile.wall_secs, ..ExecProfile::default() };
        profile.absorb(&result.stats);
        resolve_breach(breach, ctx, &mut profile)?;
        profile.rows = result.tuples.len();
        profile.settle_budget_spent();
        Ok((result, profile))
    }

    /// Context summary of a query (read-only, no scratch needed).
    pub fn context_summary(&self, query: &SedaQuery) -> ContextSummary {
        self.engine.context_summary(query)
    }

    /// Connection summary of an existing top-k result.
    pub fn connection_summary(&mut self, top_k: &TopKResult) -> ConnectionSummary {
        self.engine.connection_summary(top_k)
    }

    /// Complete result set R(q) through this reader's scratch.
    pub fn complete_results(
        &mut self,
        query: &SedaQuery,
        selections: &ContextSelections,
        connections: &[seda_dataguide::Connection],
    ) -> Result<seda_olap::QueryResultTable, SedaError> {
        self.engine.complete_results_scratch(query, selections, connections, &mut self.scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use seda_olap::Registry;
    use seda_xmlstore::parse_collection;

    fn engine() -> SedaEngine {
        let collection = parse_collection(vec![
            (
                "us2006.xml",
                r#"<country><name>United States</name><year>2006</year>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                       <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                     </import_partners></economy></country>"#,
            ),
            (
                "us2005.xml",
                r#"<country><name>United States</name><year>2005</year>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>13.8</percentage></item>
                     </import_partners></economy></country>"#,
            ),
        ])
        .unwrap();
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())
            .unwrap()
    }

    #[test]
    fn reader_executes_every_statement_shape() {
        let e = engine();
        let mut reader = e.reader();
        let q = r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#;

        let topk = reader.execute_text(&format!("TOPK 5 FOR {q}")).unwrap();
        assert!(!topk.top_k().unwrap().tuples.is_empty());
        assert!(topk.profile.sorted_accesses > 0);
        assert_eq!(topk.profile.rows, topk.top_k().unwrap().tuples.len());

        let contexts = reader.execute_text(&format!("CONTEXTS FOR {q}")).unwrap();
        assert_eq!(contexts.contexts().unwrap().buckets.len(), 3);

        let connections = reader.execute_text(&format!("CONNECTIONS 5 FOR {q}")).unwrap();
        assert!(!connections.connections().unwrap().is_empty());

        let results = reader
            .execute_text(&format!(
                "RESULTS FOR {q} WITH 0 IN /country/name \
                 WITH 1 IN /country/economy/import_partners/item/trade_country \
                 WITH 2 IN /country/economy/import_partners/item/percentage"
            ))
            .unwrap();
        assert_eq!(results.table().unwrap().len(), 3);

        let twig = reader.execute_text("TWIG /country/economy//trade_country").unwrap();
        assert_eq!(twig.table().unwrap().len(), 3);

        let cube = reader
            .execute_text(&format!(
                "CUBE import-trade-percentage BY import-country AGG sum FOR {q} \
                 WITH 0 IN /country/name \
                 WITH 1 IN /country/economy/import_partners/item/trade_country \
                 WITH 2 IN /country/economy/import_partners/item/percentage"
            ))
            .unwrap();
        let china = cube.cube().unwrap().cell(&["China"]).unwrap();
        assert!((china.value - (15.0 + 13.8)).abs() < 1e-9);
    }

    #[test]
    fn k_zero_is_honoured_literally() {
        let e = engine();
        let mut reader = e.reader();
        let response = reader.execute_text("TOPK 0 FOR (trade_country, *)").unwrap();
        assert!(response.top_k().unwrap().tuples.is_empty(), "k=0 must yield no tuples");
        let q = SedaQuery::parse("(trade_country, *)").unwrap();
        assert!(e.top_k(&q, &ContextSelections::none(), 0).tuples.is_empty());
    }

    #[test]
    fn complete_result_limit_errors_with_typed_limit() {
        let collection = parse_collection(vec![(
            "us.xml",
            r#"<country><name>United States</name><year>2006</year>
                 <economy><import_partners>
                   <item><trade_country>China</trade_country><percentage>15</percentage></item>
                   <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                 </import_partners></economy></country>"#,
        )])
        .unwrap();
        let e = SedaEngine::build(
            collection,
            Registry::factbook_defaults(),
            EngineConfig { complete_result_limit: 1, ..EngineConfig::default() },
        )
        .unwrap();
        let mut reader = e.reader();
        // Two distinct trade_country rows exceed the limit of 1 even after
        // deduplication → a typed Limit error, never a silent clip.
        let err = reader
            .execute_text(
                "RESULTS FOR (trade_country, *) \
                 WITH 0 IN /country/economy/import_partners/item/trade_country",
            )
            .unwrap_err();
        assert!(
            matches!(err, SedaError::Limit { resource: "complete-result tuples", .. }),
            "{err}"
        );
        // A query that fits the limit still succeeds.
        let response = reader.execute_text(r#"RESULTS FOR (trade_country, "China")"#).unwrap();
        assert_eq!(response.table().unwrap().len(), 1);
    }

    #[test]
    fn explain_requests_return_the_transcript() {
        let e = engine();
        let mut reader = e.reader();
        let response = reader.execute_text("EXPLAIN TOPK 5 FOR (name, *)").unwrap();
        let transcript = response.explain_transcript().unwrap();
        assert!(transcript.contains("plan: TOPK"), "{transcript}");
        // The optimizer's single-keyword pass rewrites the one-term join
        // into a scan; the transcript shows the rewrite trail and program.
        assert!(transcript.contains("single-term sorted-prefix scan"), "{transcript}");
        assert!(transcript.contains("rewrites:"), "{transcript}");
        assert!(transcript.contains("program:"), "{transcript}");
        let response = reader.execute_text("EXPLAIN TOPK 5 FOR (name, *) AND (year, *)").unwrap();
        let transcript = response.explain_transcript().unwrap();
        assert!(transcript.contains("threshold-algorithm rank join"), "{transcript}");
    }

    #[test]
    fn readers_never_touch_the_shared_engine_scratch() {
        let e = engine();
        let before = e.shared_scratch_queries();
        let mut reader = e.reader();
        for _ in 0..5 {
            reader.execute_text("TOPK 5 FOR (trade_country, *)").unwrap();
            reader.execute_text("RESULTS FOR (trade_country, *) AND (percentage, *)").unwrap();
        }
        assert_eq!(
            e.shared_scratch_queries(),
            before,
            "reader-handle queries must bypass the engine's shared scratch mutex"
        );
        // The legacy convenience path does count.
        let q = SedaQuery::parse("(trade_country, *)").unwrap();
        let _ = e.top_k(&q, &ContextSelections::none(), 3);
        assert_eq!(e.shared_scratch_queries(), before + 1);
    }

    #[test]
    fn unknown_fact_surfaces_as_typed_error() {
        let e = engine();
        let mut reader = e.reader();
        let err = reader
            .execute_text("CUBE nonexistent BY x FOR (*, \"United States\") AND (percentage, *)")
            .unwrap_err();
        assert_eq!(err, SedaError::UnknownFact("nonexistent".into()));
    }

    #[test]
    fn execute_batch_matches_sequential_execution() {
        let e = engine();
        let texts = [
            "TOPK 5 FOR (trade_country, *)",
            "CONTEXTS FOR (percentage, *)",
            "CONNECTIONS 5 FOR (trade_country, *) AND (percentage, *)",
            "TWIG /country/name",
        ];
        let requests: Vec<SedaRequest> =
            texts.iter().map(|t| SedaRequest::parse(t).unwrap()).collect();
        let mut reader = e.reader();
        let sequential: Vec<SedaResponse> =
            requests.iter().map(|r| reader.execute(r).unwrap()).collect();
        let batched = e.execute_batch(&requests, 4);
        assert_eq!(batched.len(), sequential.len());
        for (seq, bat) in sequential.iter().zip(batched) {
            let bat = bat.unwrap();
            assert_eq!(seq.payload, bat.payload, "batch payload must match sequential");
        }
    }
}
