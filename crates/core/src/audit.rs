//! Structural invariant auditing — the engine-level aggregation of the
//! per-substrate `seda-audit` layers.
//!
//! [`SedaEngine::verify`] chains the substrate checkers (collection, node
//! index, context index, data graph, dataguides, plus the shared query
//! scratch) and returns every violation found, so one call audits the whole
//! engine.  Each substrate documents its own invariant catalog in its
//! `audit` module; this module adds the engine-local classes:
//!
//! # Invariant catalog (substrate `core`)
//!
//! | class | invariant |
//! |---|---|
//! | `profile-counters` | [`ExecProfile`] counters are mutually consistent (disconnected ≤ scored, rows ≤ budget when accounted) |
//! | `profile-timings` | [`ExecProfile`] wall times are finite and non-negative |
//!
//! Every [`SedaEngine::build`] runs `verify()` before handing the engine to
//! the caller and records the cost in
//! [`crate::BuildProfile::verify_ms`]; `seda-bench audit` runs the same check
//! over the benchmark corpora from the command line.

use seda_xmlstore::audit::{finish, AuditResult, InvariantViolation};

use crate::engine::SedaEngine;
use crate::response::ExecProfile;

const SUBSTRATE: &str = "core";

impl SedaEngine {
    /// Verifies every structural invariant of the engine's frozen substrates:
    /// the collection's Dewey order and tree linkage, both full-text indexes'
    /// dictionary/postings/CSR invariants, the data graph's adjacency
    /// symmetry, component partition and connectivity labels, and the
    /// dataguide summary's path index and document assignment.  Returns every
    /// violation found rather than stopping at the first.
    ///
    /// A freshly built engine always passes; [`SedaEngine::build`] enforces
    /// this before returning and reports the cost in
    /// [`crate::BuildProfile::verify_ms`].
    pub fn verify(&self) -> AuditResult {
        let mut violations = Vec::new();
        let mut take = |result: AuditResult| {
            if let Err(mut v) = result {
                violations.append(&mut v);
            }
        };
        take(self.collection().verify());
        take(self.node_index().verify());
        take(self.context_index().verify());
        take(self.graph().verify());
        take(self.guides().verify());
        take(self.metrics().verify());
        // The shared scratch is part of the engine's mutable state; skip it
        // only if another query holds it right now (it is re-audited after
        // every governed search anyway).
        if let Ok(scratch) = self.query_scratch_for_audit().try_lock() {
            take(scratch.verify());
        }
        finish(violations)
    }

    /// Test-only corruption access: mutable references to every frozen
    /// substrate, so the seeded-corruption suite can reach the substrates'
    /// `corrupt_*` hooks through a fully built engine.
    #[doc(hidden)]
    pub fn substrates_mut(
        &mut self,
    ) -> (
        &mut seda_xmlstore::Collection,
        &mut seda_textindex::NodeIndex,
        &mut seda_textindex::ContextIndex,
        &mut seda_datagraph::DataGraph,
        &mut seda_dataguide::DataGuideSet,
    ) {
        self.substrate_fields_mut()
    }
}

/// Verifies the mutual consistency of one response's [`ExecProfile`]: work
/// counters must be ordered (a tuple is only counted disconnected after being
/// scored — the `profile-counters` class) and wall times must be finite and
/// non-negative (the `profile-timings` class).
pub fn verify_exec_profile(profile: &ExecProfile) -> AuditResult {
    let mut violations = Vec::new();
    if profile.tuples_disconnected > profile.tuples_scored {
        violations.push(InvariantViolation::new(
            SUBSTRATE,
            "profile-counters",
            format!(
                "{} disconnected tuples out of only {} scored",
                profile.tuples_disconnected, profile.tuples_scored
            ),
        ));
    }
    if profile.budget_spent > 0 && (profile.rows as u64) > profile.budget_spent {
        violations.push(InvariantViolation::new(
            SUBSTRATE,
            "profile-counters",
            format!(
                "{} result rows exceed the {} accounted budget units",
                profile.rows, profile.budget_spent
            ),
        ));
    }
    for (name, secs) in [("plan_secs", profile.plan_secs), ("exec_secs", profile.exec_secs)] {
        if !secs.is_finite() || secs < 0.0 {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "profile-timings",
                format!("{name} is {secs}, expected a finite non-negative wall time"),
            ));
        }
    }
    finish(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use seda_olap::Registry;
    use seda_xmlstore::parse_collection;

    fn engine() -> SedaEngine {
        let collection = parse_collection(vec![
            ("us.xml", "<country><name>United States</name><year>2006</year></country>"),
            ("mx.xml", "<country><name>Mexico</name><year>2003</year></country>"),
        ])
        .unwrap();
        SedaEngine::build(collection, Registry::new(), EngineConfig::default()).unwrap()
    }

    #[test]
    fn fresh_engine_passes_and_reports_verify_cost() {
        let e = engine();
        e.verify().unwrap();
        assert!(e.build_profile().verify_ms >= 0.0);
        assert!(e.build_profile().render().contains("audit"));
    }

    #[test]
    fn corrupted_substrate_surfaces_through_engine_verify() {
        let mut e = engine();
        {
            let (_, _, _, graph, _) = e.substrates_mut();
            graph.corrupt_adj_offset(1, u32::MAX);
        }
        let violations = e.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.substrate == "datagraph"), "{violations:?}");
    }

    #[test]
    fn exec_profile_consistency_checks() {
        verify_exec_profile(&ExecProfile::default()).unwrap();

        let bad_counters = ExecProfile {
            tuples_scored: 1,
            tuples_disconnected: 2,
            budget_spent: 10,
            ..ExecProfile::default()
        };
        let violations = verify_exec_profile(&bad_counters).unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "profile-counters"));

        let bad_timings = ExecProfile { plan_secs: f64::NAN, ..ExecProfile::default() };
        let violations = verify_exec_profile(&bad_timings).unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "profile-timings"));
    }
}
