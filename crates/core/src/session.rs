//! The interactive exploration session (Fig. 6 control flow).
//!
//! A [`SedaSession`] drives the paper's feedback loop programmatically,
//! standing in for the GUI of Fig. 5/7:
//!
//! 1. submit a keyword-style query → top-k results + context summary,
//! 2. optionally select contexts per term → top-k recomputed,
//! 3. inspect the connection summary → optionally select connections,
//! 4. compute the complete result set,
//! 5. derive the star schema and aggregate it into cubes.
//!
//! The session is a thin stateful shell over the unified facade: it owns a
//! [`crate::SedaReader`] (so repeated queries reuse one scratch and never
//! contend on the engine), and every stage-dependent operation returns a
//! typed [`SedaError`] — stage misuse is [`SedaError::Stage`], never a bare
//! `None`.

use seda_dataguide::Connection;
use seda_olap::{
    aggregate, BuildOptions, CubeQuery, CubeResult, QueryResultTable, StarSchemaBuild,
};
use seda_topk::TopKResult;
use seda_xmlstore::PathId;

use crate::engine::SedaEngine;
use crate::error::SedaError;
use crate::govern::{Budget, RequestContext};
use crate::query::SedaQuery;
use crate::reader::SedaReader;
use crate::response::ExecProfile;
use crate::summaries::{ConnectionSummary, ContextSelections, ContextSummary};

/// Where the session currently stands in the Fig. 6 control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStage {
    /// No query submitted yet.
    Empty,
    /// A query was submitted; top-k results and summaries are available.
    Explored,
    /// The complete result set has been materialised.
    Materialized,
    /// A star schema has been derived.
    Analyzed,
}

/// One interactive exploration session over a [`SedaEngine`].
pub struct SedaSession<'a> {
    reader: SedaReader<'a>,
    query: Option<SedaQuery>,
    selections: ContextSelections,
    chosen_connections: Vec<Connection>,
    top_k: Option<TopKResult>,
    context_summary: Option<ContextSummary>,
    connection_summary: Option<ConnectionSummary>,
    complete: Option<QueryResultTable>,
    star_schema: Option<StarSchemaBuild>,
    last_profile: Option<ExecProfile>,
    k: usize,
    budget: Option<Budget>,
    stage: SessionStage,
}

/// Backwards-compatible alias for [`SedaSession`].
pub type Session<'a> = SedaSession<'a>;

impl<'a> SedaSession<'a> {
    /// Opens a session over an engine.
    pub fn new(engine: &'a SedaEngine) -> Self {
        SedaSession {
            reader: engine.reader(),
            query: None,
            selections: ContextSelections::none(),
            chosen_connections: Vec::new(),
            top_k: None,
            context_summary: None,
            connection_summary: None,
            complete: None,
            star_schema: None,
            last_profile: None,
            k: engine.config().topk.k,
            budget: None,
            stage: SessionStage::Empty,
        }
    }

    /// The engine the session runs over.
    pub fn engine(&self) -> &'a SedaEngine {
        self.reader.engine()
    }

    /// Current stage in the control flow.
    pub fn stage(&self) -> SessionStage {
        self.stage
    }

    /// Sets the number of top-k results to retrieve per iteration.
    pub fn set_k(&mut self, k: usize) {
        self.k = k.max(1);
    }

    /// Sets (or clears) the per-search [`Budget`] of this session.  With a
    /// budget in place, every subsequent top-k search runs governed **with
    /// degraded responses allowed**: an interactive explorer prefers a
    /// flagged partial answer over an error, and the degradation is visible
    /// through [`SedaSession::last_profile`]'s `degraded` flag.
    pub fn set_budget(&mut self, budget: Option<Budget>) {
        self.budget = budget;
    }

    /// The session's current search budget, if any.
    pub fn budget(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }

    /// The [`ExecProfile`] of the last search the session ran, if any.
    pub fn last_profile(&self) -> Option<&ExecProfile> {
        self.last_profile.as_ref()
    }

    fn request_context(&self) -> RequestContext {
        match &self.budget {
            Some(budget) => RequestContext::new(budget.clone()).allow_degraded(),
            None => RequestContext::unlimited(),
        }
    }

    fn stage_error(&self, operation: &'static str, required: &'static str) -> SedaError {
        SedaError::Stage { operation, required, stage: self.stage }
    }

    /// Submits (or replaces) the query: computes top-k results, the context
    /// summary and the connection summary.  Any earlier refinements are
    /// cleared.
    pub fn submit(&mut self, query: SedaQuery) -> Result<&TopKResult, SedaError> {
        self.selections = ContextSelections::none();
        self.chosen_connections.clear();
        self.complete = None;
        self.star_schema = None;
        self.context_summary = Some(self.reader.context_summary(&query));
        let (top_k, profile) = self.reader.top_k_governed(
            &query,
            &self.selections,
            self.k,
            &self.request_context(),
        )?;
        self.connection_summary = Some(self.reader.connection_summary(&top_k));
        self.last_profile = Some(profile);
        self.top_k = Some(top_k);
        self.query = Some(query);
        self.stage = SessionStage::Explored;
        Ok(self.top_k.as_ref().expect("invariant: the top-k result was just materialised"))
    }

    /// Parses and submits a textual query.
    pub fn submit_text(&mut self, query: &str) -> Result<&TopKResult, SedaError> {
        let parsed = SedaQuery::parse(query)?;
        self.submit(parsed)
    }

    /// The current query, if any.
    pub fn query(&self) -> Option<&SedaQuery> {
        self.query.as_ref()
    }

    /// The latest top-k result.
    pub fn top_k(&self) -> Result<&TopKResult, SedaError> {
        self.top_k.as_ref().ok_or_else(|| self.stage_error("top_k", "a submitted query"))
    }

    /// The context summary of the current query.
    pub fn context_summary(&self) -> Result<&ContextSummary, SedaError> {
        self.context_summary
            .as_ref()
            .ok_or_else(|| self.stage_error("context_summary", "a submitted query"))
    }

    /// The connection summary of the latest top-k result.
    pub fn connection_summary(&self) -> Result<&ConnectionSummary, SedaError> {
        self.connection_summary
            .as_ref()
            .ok_or_else(|| self.stage_error("connection_summary", "a submitted query"))
    }

    /// The user's current context selections.
    pub fn selections(&self) -> &ContextSelections {
        &self.selections
    }

    /// Selects contexts for a query term and recomputes the top-k results and
    /// the connection summary restricted to those contexts (the feedback loop
    /// of Fig. 6).
    pub fn select_contexts(
        &mut self,
        term: usize,
        paths: Vec<PathId>,
    ) -> Result<&TopKResult, SedaError> {
        let query = self
            .query
            .clone()
            .ok_or_else(|| self.stage_error("select_contexts", "a submitted query"))?;
        if term >= query.len() {
            return Err(SedaError::UnknownTerm { term, terms: query.len() });
        }
        self.selections.select(term, paths);
        let (top_k, profile) = self.reader.top_k_governed(
            &query,
            &self.selections,
            self.k,
            &self.request_context(),
        )?;
        self.connection_summary = Some(self.reader.connection_summary(&top_k));
        self.last_profile = Some(profile);
        self.top_k = Some(top_k);
        self.complete = None;
        self.star_schema = None;
        self.stage = SessionStage::Explored;
        Ok(self.top_k.as_ref().expect("invariant: the top-k result was just materialised"))
    }

    /// Selects the connections that are relevant for the query.
    pub fn select_connections(&mut self, connections: Vec<Connection>) -> Result<(), SedaError> {
        if self.query.is_none() {
            return Err(self.stage_error("select_connections", "a submitted query"));
        }
        self.chosen_connections = connections;
        self.complete = None;
        self.star_schema = None;
        Ok(())
    }

    /// The currently selected connections.
    pub fn chosen_connections(&self) -> &[Connection] {
        &self.chosen_connections
    }

    /// Materialises the complete (non-top-k) result set for the refined
    /// query.
    pub fn complete_results(&mut self) -> Result<&QueryResultTable, SedaError> {
        let query = self
            .query
            .clone()
            .ok_or_else(|| self.stage_error("complete_results", "a submitted query"))?;
        let result =
            self.reader.complete_results(&query, &self.selections, &self.chosen_connections)?;
        self.complete = Some(result);
        self.stage = SessionStage::Materialized;
        Ok(self.complete.as_ref().expect("invariant: the complete result was just materialised"))
    }

    /// The materialised complete result.
    pub fn complete(&self) -> Result<&QueryResultTable, SedaError> {
        self.complete
            .as_ref()
            .ok_or_else(|| self.stage_error("complete", "a materialised result set"))
    }

    /// Derives the star schema from the complete result (computing it first
    /// if necessary).
    pub fn build_cube(&mut self, options: &BuildOptions) -> Result<&StarSchemaBuild, SedaError> {
        if self.complete.is_none() {
            self.complete_results()?;
        }
        let result =
            self.complete.as_ref().expect("invariant: the complete result was materialised above");
        let build = self.engine().build_star_schema(result, options);
        self.star_schema = Some(build);
        self.stage = SessionStage::Analyzed;
        Ok(self.star_schema.as_ref().expect("invariant: the star schema was just materialised"))
    }

    /// The derived star schema.
    pub fn star_schema(&self) -> Result<&StarSchemaBuild, SedaError> {
        self.star_schema
            .as_ref()
            .ok_or_else(|| self.stage_error("star_schema", "a derived star schema"))
    }

    /// Runs an aggregation over one fact table of the derived star schema.
    pub fn aggregate(&self, fact_table: &str, query: &CubeQuery) -> Result<CubeResult, SedaError> {
        let schema = self
            .star_schema
            .as_ref()
            .ok_or_else(|| self.stage_error("aggregate", "a derived star schema"))?;
        let table = schema
            .schema
            .fact(fact_table)
            .ok_or_else(|| SedaError::UnknownFact(fact_table.to_string()))?;
        Ok(aggregate(table, query)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use seda_olap::Registry;
    use seda_xmlstore::parse_collection;

    fn engine() -> SedaEngine {
        let collection = parse_collection(vec![
            (
                "us2006.xml",
                r#"<country><name>United States</name><year>2006</year>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                       <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                     </import_partners></economy></country>"#,
            ),
            (
                "us2004.xml",
                r#"<country><name>United States</name><year>2004</year>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>12.5</percentage></item>
                       <item><trade_country>Mexico</trade_country><percentage>10.7</percentage></item>
                     </import_partners></economy></country>"#,
            ),
        ])
        .unwrap();
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())
            .unwrap()
    }

    #[test]
    fn session_walks_the_figure_6_control_flow() {
        let e = engine();
        let mut session = SedaSession::new(&e);
        assert_eq!(session.stage(), SessionStage::Empty);

        session
            .submit_text(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)
            .unwrap();
        assert_eq!(session.stage(), SessionStage::Explored);
        assert!(session.top_k().is_ok());
        assert!(session.context_summary().is_ok());
        assert!(session.connection_summary().is_ok());
        assert!(session.last_profile().is_some());

        // Refine the first term to the country-name context.
        let c = e.collection();
        let name = c.paths().get_str(c.symbols(), "/country/name").unwrap();
        session.select_contexts(0, vec![name]).unwrap();
        assert_eq!(session.selections().len(), 1);

        let complete = session.complete_results().unwrap();
        assert_eq!(complete.len(), 4);
        assert_eq!(session.stage(), SessionStage::Materialized);

        let build = session.build_cube(&BuildOptions::default()).unwrap();
        assert!(build.schema.fact("import-trade-percentage").is_some());
        assert_eq!(session.stage(), SessionStage::Analyzed);

        // Aggregate: average import percentage per partner.
        let cube = session
            .aggregate(
                "import-trade-percentage",
                &CubeQuery::sum(&["import-country"], "import-trade-percentage"),
            )
            .unwrap();
        let china = cube.cell(&["China"]).unwrap();
        assert!((china.value - (15.0 + 12.5)).abs() < 1e-9);
    }

    #[test]
    fn stage_misuse_returns_typed_stage_errors() {
        let e = engine();
        let mut session = SedaSession::new(&e);
        assert!(matches!(
            session.top_k(),
            Err(SedaError::Stage { stage: SessionStage::Empty, .. })
        ));
        assert!(matches!(session.context_summary(), Err(SedaError::Stage { .. })));
        assert!(matches!(session.connection_summary(), Err(SedaError::Stage { .. })));
        assert!(matches!(
            session.select_contexts(0, vec![]),
            Err(SedaError::Stage { operation: "select_contexts", .. })
        ));
        assert!(matches!(session.select_connections(vec![]), Err(SedaError::Stage { .. })));
        assert!(matches!(
            session.complete_results(),
            Err(SedaError::Stage { operation: "complete_results", .. })
        ));
        assert!(matches!(session.complete(), Err(SedaError::Stage { .. })));
        assert!(matches!(session.star_schema(), Err(SedaError::Stage { .. })));
        assert!(matches!(
            session.aggregate("f", &CubeQuery::sum(&[], "x")),
            Err(SedaError::Stage { operation: "aggregate", .. })
        ));
        assert!(matches!(
            session.build_cube(&BuildOptions::default()),
            Err(SedaError::Stage { .. })
        ));
    }

    #[test]
    fn out_of_range_selections_are_unknown_terms() {
        let e = engine();
        let mut session = SedaSession::new(&e);
        session.submit_text("(percentage, *)").unwrap();
        assert_eq!(
            session.select_contexts(5, vec![]).unwrap_err(),
            SedaError::UnknownTerm { term: 5, terms: 1 }
        );
    }

    #[test]
    fn resubmitting_clears_previous_refinements() {
        let e = engine();
        let mut session = SedaSession::new(&e);
        session.submit_text(r#"(percentage, *)"#).unwrap();
        let c = e.collection();
        let pct = c
            .paths()
            .get_str(c.symbols(), "/country/economy/import_partners/item/percentage")
            .unwrap();
        session.select_contexts(0, vec![pct]).unwrap();
        assert!(!session.selections().is_empty());
        session.submit_text(r#"(trade_country, *)"#).unwrap();
        assert!(session.selections().is_empty());
        assert!(session.complete().is_err());
    }

    #[test]
    fn build_cube_materialises_results_if_needed() {
        let e = engine();
        let mut session = SedaSession::new(&e);
        session.submit_text(r#"(*, "China") AND (percentage, *)"#).unwrap();
        assert!(session.complete().is_err());
        session.build_cube(&BuildOptions::default()).unwrap();
        assert!(session.complete().is_ok());
    }

    #[test]
    fn aggregate_on_missing_fact_is_unknown_fact() {
        let e = engine();
        let mut session = SedaSession::new(&e);
        session.submit_text(r#"(*, "China") AND (percentage, *)"#).unwrap();
        session.build_cube(&BuildOptions::default()).unwrap();
        assert_eq!(
            session.aggregate("no-such-fact", &CubeQuery::sum(&[], "x")).unwrap_err(),
            SedaError::UnknownFact("no-such-fact".into())
        );
    }

    #[test]
    fn session_budget_degrades_instead_of_erroring() {
        let e = engine();
        let mut session = SedaSession::new(&e);
        session.set_budget(Some(Budget::unlimited().with_max_sorted_accesses(0)));
        assert!(session.budget().is_some());
        session.submit_text(r#"(trade_country, *)"#).unwrap();
        let profile = session.last_profile().unwrap();
        assert!(profile.degraded, "an exhausted budget must flag the partial answer");
        session.set_budget(None);
        session.submit_text(r#"(trade_country, *)"#).unwrap();
        assert!(!session.last_profile().unwrap().degraded);
        assert!(session.last_profile().unwrap().budget_spent > 0);
    }

    #[test]
    fn set_k_bounds_topk_results() {
        let e = engine();
        let mut session = SedaSession::new(&e);
        session.set_k(1);
        let topk = session.submit_text(r#"(trade_country, *)"#).unwrap();
        assert_eq!(topk.tuples.len(), 1);
    }
}
