//! Cost-based plan optimization: rewrite passes over the logical plan and
//! compilation into the [`PlanProgram`] instruction stream the reader's
//! interpreter executes.
//!
//! The per-statement lowering in [`crate::plan`] produces the typed logical
//! plan — a [`crate::QueryPlan`] carrying the resolved [`seda_topk::TermInput`]s, the
//! [`crate::PlanStep`] list, the per-plan search configuration and the
//! [`SearchStrategy`].  [`SedaEngine::prepare`] then runs every pass of
//! `registered_passes` over it, in order, recording a pass-by-pass rewrite
//! trail (rendered by [`crate::QueryPlan::explain`]), and finally `compile`s
//! the optimized plan into a compact [`PlanProgram`].
//!
//! Every pass is **result-preserving by construction**: a rewrite is applied
//! only when the transformed plan provably returns byte-identical payloads
//! (and, for the shortcuts, identical work counters) — the property the
//! `optimizer_equivalence` proptest suite pins against the pre-optimizer
//! fixed-sequence executor.

use seda_topk::SearchStrategy;

use crate::engine::SedaEngine;
use crate::metrics::names;
use crate::plan::{PlanStep, QueryPlan};
use crate::request::Statement;

/// One instruction of a compiled [`PlanProgram`].
///
/// Operands the interpreter needs at run time (term inputs, the compiled twig
/// pattern, cube spec) stay on the owning [`crate::QueryPlan`]; the ops carry
/// only what the optimizer decided (k, strategy).
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanOp {
    /// Run the top-k search over the plan's term inputs into the top-k
    /// register.
    Search {
        /// Number of result tuples requested.
        k: usize,
        /// Access strategy chosen by the optimizer.
        strategy: SearchStrategy,
    },
    /// Build the per-term context buckets into the contexts register.
    ContextBuckets,
    /// Discover pairwise connections of the top-k register.
    DiscoverConnections,
    /// Compute the complete result set R(q) into the table register.
    CompleteResults,
    /// Evaluate the compiled twig pattern into the table register.
    TwigEvaluate,
    /// Derive and instantiate the star schema from the table register.
    DeriveStarSchema,
    /// Aggregate the plan's fact table over the derived schema.
    Aggregate,
    /// Package a register as the response payload.
    Emit(EmitShape),
}

/// Which register an [`PlanOp::Emit`] op packages into the payload.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitShape {
    /// The top-k register → [`crate::ResponsePayload::TopK`].
    TopK,
    /// The contexts register → [`crate::ResponsePayload::Contexts`].
    Contexts,
    /// Top-k + connections registers → [`crate::ResponsePayload::Connections`].
    Connections,
    /// The table register → [`crate::ResponsePayload::Table`].
    Table,
    /// Schema build + cube registers → [`crate::ResponsePayload::Cube`].
    Cube,
}

impl std::fmt::Display for PlanOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanOp::Search { k, strategy } => {
                let how = match strategy {
                    SearchStrategy::SingleTermScan => "single-term scan",
                    _ => "threshold join",
                };
                write!(f, "search k={k} ({how})")
            }
            PlanOp::ContextBuckets => write!(f, "context-buckets"),
            PlanOp::DiscoverConnections => write!(f, "discover-connections"),
            PlanOp::CompleteResults => write!(f, "complete-results"),
            PlanOp::TwigEvaluate => write!(f, "twig-evaluate"),
            PlanOp::DeriveStarSchema => write!(f, "derive-star-schema"),
            PlanOp::Aggregate => write!(f, "aggregate"),
            PlanOp::Emit(shape) => {
                let name = match shape {
                    EmitShape::TopK => "top-k",
                    EmitShape::Contexts => "contexts",
                    EmitShape::Connections => "connections",
                    EmitShape::Table => "table",
                    EmitShape::Cube => "cube",
                };
                write!(f, "emit {name}")
            }
        }
    }
}

/// The compact instruction stream a [`crate::QueryPlan`] compiles to,
/// executed by the interpreter in [`crate::SedaReader`].
#[non_exhaustive]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanProgram {
    ops: Vec<PlanOp>,
}

impl PlanProgram {
    pub(crate) fn new(ops: Vec<PlanOp>) -> Self {
        PlanProgram { ops }
    }

    /// The instructions, in execution order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for a not-yet-compiled program.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Renders the instruction listing (one indexed line per op).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            out.push_str(&format!("    {i}: {op}\n"));
        }
        out
    }
}

/// One rewrite pass over the logical plan.
///
/// `apply` mutates the plan only when the rewrite is result-preserving and
/// returns a human-readable trail note describing what changed (`None` when
/// the pass did not apply).  Every pass type must be listed in
/// [`registered_passes`] — enforced by the repo lint (rule 7).
pub(crate) trait RewritePass: Sync {
    /// Stable pass name shown in the rewrite trail.
    fn name(&self) -> &'static str;
    /// Applies the pass; `Some(note)` when the plan changed (or gained a
    /// cost annotation), `None` when the pass did not apply.
    fn apply(&self, plan: &mut QueryPlan, engine: &SedaEngine) -> Option<String>;
}

/// Normalizes context restrictions: each term's allowed-path set is sorted
/// and deduplicated.  Membership is the only thing the search consults, so
/// the rewrite is result-preserving; it buys deterministic explain output and
/// cheaper set comparisons downstream.
struct Normalize;

impl RewritePass for Normalize {
    fn name(&self) -> &'static str {
        "normalize"
    }

    fn apply(&self, plan: &mut QueryPlan, _engine: &SedaEngine) -> Option<String> {
        let mut touched = 0usize;
        for input in &mut plan.term_inputs {
            if let Some(paths) = &mut input.allowed_paths {
                let before = paths.len();
                paths.sort_unstable();
                paths.dedup();
                if paths.len() != before {
                    touched += 1;
                }
            }
        }
        (touched > 0).then(|| format!("deduplicated the allowed-path set of {touched} term(s)"))
    }
}

/// Context pushdown: estimates, per restricted term, how many postings
/// survive the allowed-path filter (from the keyword→path context index) and
/// records the selectivity on the plan.  The filter itself already runs
/// inside sorted access ([`seda_textindex::NodeIndex::evaluate_into`]); the
/// pass quantifies it so the cost model downstream can choose access orders.
struct Pushdown;

impl RewritePass for Pushdown {
    fn name(&self) -> &'static str {
        "pushdown"
    }

    fn apply(&self, plan: &mut QueryPlan, engine: &SedaEngine) -> Option<String> {
        let mut notes = Vec::new();
        plan.term_estimates = estimate_term_postings(plan, engine);
        for (i, input) in plan.term_inputs.iter().enumerate() {
            let Some(paths) = &input.allowed_paths else { continue };
            let (restricted, total) = plan.term_estimates[i];
            notes.push(format!(
                "term {i} filtered to {} path(s) inside sorted access (~{restricted} of \
                 {total} postings)",
                paths.len()
            ));
        }
        (!notes.is_empty()).then(|| notes.join("; "))
    }
}

/// Single-keyword shortcut: a one-term top-k search degenerates to ranked
/// retrieval, so the compiled program scans the sorted posting prefix
/// directly instead of running the join loop.  Applied only when the scan
/// reproduces the join's tuples, stats and termination behaviour exactly
/// (see `seda_topk::SearchStrategy::SingleTermScan`).
struct SingleKeyword;

impl RewritePass for SingleKeyword {
    fn name(&self) -> &'static str {
        "single-keyword"
    }

    fn apply(&self, plan: &mut QueryPlan, _engine: &SedaEngine) -> Option<String> {
        let k = match plan.statement {
            Statement::TopK { k } | Statement::ConnectionSummary { k } => k,
            _ => return None,
        };
        if plan.term_inputs.len() != 1 || plan.topk.candidate_limit < k {
            return None;
        }
        plan.strategy = SearchStrategy::SingleTermScan;
        for step in &mut plan.steps {
            if let PlanStep::ThresholdJoin { k, .. } = step {
                *step = PlanStep::SingleTermScan { k: *k };
            }
        }
        Some("one term: replaced the rank join with a sorted-prefix scan".to_string())
    }
}

/// Component-pruning shortcut: on a graph with a single document component
/// the same-component filter inside the join loop always passes, so the pass
/// elides it (identical results and counters, fewer per-pair lookups).  On
/// multi-component graphs it stays on and the pass records how many
/// components the filter prunes across.
struct ComponentPrune;

impl RewritePass for ComponentPrune {
    fn name(&self) -> &'static str {
        "component-prune"
    }

    fn apply(&self, plan: &mut QueryPlan, engine: &SedaEngine) -> Option<String> {
        if plan.term_inputs.len() < 2 {
            // Only the join loop consults components; nothing to prune.
            return None;
        }
        let components = engine.graph().doc_component_count();
        if components <= 1 {
            plan.topk.prune_components = false;
            Some("single connected component: elided the same-component filter".to_string())
        } else {
            Some(format!(
                "{components} document components: cross-component candidates are skipped \
                 before the connectivity BFS"
            ))
        }
    }
}

/// Cost-based access ordering: chooses, per search term, between
/// context-index-first access (resolve the allowed paths through the
/// keyword→path index, then walk the restricted postings) and postings-first
/// access (walk the full posting list).  The model is fed from engine
/// statistics — postings lengths, idf, document/component counts — plus the
/// prior [`crate::ExecProfile`] counters accumulated in the metrics registry
/// (average rows per request of this statement shape).
struct AccessOrder;

impl RewritePass for AccessOrder {
    fn name(&self) -> &'static str {
        "access-order"
    }

    fn apply(&self, plan: &mut QueryPlan, engine: &SedaEngine) -> Option<String> {
        if plan.term_inputs.is_empty() {
            return None;
        }
        if plan.term_estimates.len() != plan.term_inputs.len() {
            plan.term_estimates = estimate_term_postings(plan, engine);
        }
        let index = engine.node_index();
        let mut notes = Vec::with_capacity(plan.term_inputs.len());
        for (i, input) in plan.term_inputs.iter().enumerate() {
            let (restricted, total) = plan.term_estimates[i];
            let idf =
                input.query.positive_terms().iter().map(|t| index.idf(t)).fold(0.0f64, f64::max);
            // Context-index-first wins when the path filter is selective:
            // the restricted list is materialised from the context index's
            // per-path counts instead of scanning the full postings.
            let context_first = input.allowed_paths.is_some() && restricted * 2 <= total;
            notes.push(format!(
                "term {i} {} (~{restricted} of {total} postings, idf {idf:.2})",
                if context_first { "context-index-first" } else { "postings-first" }
            ));
        }
        let label = plan.statement.name();
        let requests = engine.metrics().counter(names::REQUESTS_TOTAL, label).get();
        if requests > 0 {
            let rows = engine.metrics().counter(names::ROWS_RETURNED_TOTAL, label).get();
            notes.push(format!(
                "prior profile: {:.1} rows/request over {requests} {label} request(s)",
                rows as f64 / requests as f64
            ));
        }
        Some(notes.join("; "))
    }
}

/// Estimates, per term, `(restricted, total)` postings: `total` from the
/// node-index document frequencies (match-all terms count every indexed
/// node), `restricted` from the context index's per-path frequencies when the
/// term carries an allowed-path set.
fn estimate_term_postings(plan: &QueryPlan, engine: &SedaEngine) -> Vec<(usize, usize)> {
    let index = engine.node_index();
    plan.term_inputs
        .iter()
        .map(|input| {
            let keywords = input.query.positive_terms();
            let total = if keywords.is_empty() {
                index.indexed_node_count()
            } else {
                keywords.iter().map(|t| index.document_frequency(t)).min().unwrap_or(0)
            };
            let restricted = match &input.allowed_paths {
                Some(paths) => engine
                    .context_index()
                    .context_bucket(&input.query)
                    .into_iter()
                    .filter(|entry| paths.contains(&entry.path))
                    .map(|entry| entry.frequency)
                    .sum::<usize>()
                    .min(total),
                None => total,
            };
            (restricted, total)
        })
        .collect()
}

/// The optimizer's pass list, in application order.
///
/// Rule 7 of the repo lint checks that every `impl RewritePass for` type in
/// this file appears here — an unregistered pass is dead weight that silently
/// never runs.
pub(crate) fn registered_passes() -> [&'static dyn RewritePass; 5] {
    [&Normalize, &Pushdown, &SingleKeyword, &ComponentPrune, &AccessOrder]
}

/// Runs every registered pass over the plan, returning the pass-by-pass
/// rewrite trail (one entry per pass, `"<name>: <note>"` or
/// `"<name>: unchanged"`).
pub(crate) fn run_passes(plan: &mut QueryPlan, engine: &SedaEngine) -> Vec<String> {
    registered_passes()
        .iter()
        .map(|pass| match pass.apply(plan, engine) {
            Some(note) => format!("{}: {note}", pass.name()),
            None => format!("{}: unchanged", pass.name()),
        })
        .collect()
}

/// Compiles the optimized plan into its instruction stream.
pub(crate) fn compile(plan: &QueryPlan) -> PlanProgram {
    let ops = match &plan.statement {
        Statement::TopK { k } => {
            vec![PlanOp::Search { k: *k, strategy: plan.strategy }, PlanOp::Emit(EmitShape::TopK)]
        }
        Statement::ContextSummary => {
            vec![PlanOp::ContextBuckets, PlanOp::Emit(EmitShape::Contexts)]
        }
        Statement::ConnectionSummary { k } => vec![
            PlanOp::Search { k: *k, strategy: plan.strategy },
            PlanOp::DiscoverConnections,
            PlanOp::Emit(EmitShape::Connections),
        ],
        Statement::CompleteResults => {
            vec![PlanOp::CompleteResults, PlanOp::Emit(EmitShape::Table)]
        }
        Statement::Twig { .. } => vec![PlanOp::TwigEvaluate, PlanOp::Emit(EmitShape::Table)],
        Statement::Cube { .. } => vec![
            PlanOp::CompleteResults,
            PlanOp::DeriveStarSchema,
            PlanOp::Aggregate,
            PlanOp::Emit(EmitShape::Cube),
        ],
    };
    PlanProgram::new(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::request::SedaRequest;
    use seda_olap::Registry;
    use seda_xmlstore::parse_collection;

    fn engine() -> SedaEngine {
        let collection = parse_collection(vec![(
            "us.xml",
            r#"<country><name>United States</name><year>2006</year>
                 <economy><import_partners>
                   <item><trade_country>China</trade_country><percentage>15</percentage></item>
                 </import_partners></economy></country>"#,
        )])
        .unwrap();
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())
            .unwrap()
    }

    #[test]
    fn every_pass_reports_into_the_trail() {
        let e = engine();
        let req = SedaRequest::parse("TOPK 5 FOR (name, *) AND (percentage, *)").unwrap();
        let plan = e.prepare(&req).unwrap();
        let trail = plan.rewrite_trail();
        assert_eq!(trail.len(), registered_passes().len());
        for (pass, line) in registered_passes().iter().zip(trail) {
            assert!(line.starts_with(pass.name()), "{line}");
        }
    }

    #[test]
    fn single_keyword_pass_compiles_a_scan() {
        let e = engine();
        let req = SedaRequest::parse("TOPK 5 FOR (name, *)").unwrap();
        let plan = e.prepare(&req).unwrap();
        assert_eq!(
            plan.program().ops()[0],
            PlanOp::Search { k: 5, strategy: SearchStrategy::SingleTermScan }
        );
        assert!(plan.explain().contains("single-keyword: one term"), "{}", plan.explain());
        // Two terms keep the join.
        let req = SedaRequest::parse("TOPK 5 FOR (name, *) AND (percentage, *)").unwrap();
        let plan = e.prepare(&req).unwrap();
        assert_eq!(
            plan.program().ops()[0],
            PlanOp::Search { k: 5, strategy: SearchStrategy::Join }
        );
    }

    #[test]
    fn component_prune_elides_the_filter_on_one_component() {
        let e = engine();
        assert_eq!(e.graph().doc_component_count(), 1);
        let req = SedaRequest::parse("TOPK 5 FOR (name, *) AND (percentage, *)").unwrap();
        let plan = e.prepare(&req).unwrap();
        assert!(!plan.search_config().prune_components);
        // Single-term plans never consult components; the pass skips them.
        let req = SedaRequest::parse("TOPK 5 FOR (name, *)").unwrap();
        let plan = e.prepare(&req).unwrap();
        assert!(plan.search_config().prune_components);
    }

    #[test]
    fn pushdown_estimates_restricted_postings() {
        let e = engine();
        let req =
            SedaRequest::parse("TOPK 5 FOR (name, *) AND (percentage, *) WITH 0 IN /country/name")
                .unwrap();
        let plan = e.prepare(&req).unwrap();
        let trail = plan.rewrite_trail().join("\n");
        assert!(trail.contains("pushdown: term 0 filtered to 1 path(s)"), "{trail}");
        assert!(trail.contains("access-order: term 0"), "{trail}");
    }

    #[test]
    fn programs_cover_every_statement_shape() {
        let e = engine();
        let q = "(name, *) AND (percentage, *)";
        let cases = [
            (format!("TOPK 5 FOR {q}"), 2),
            (format!("CONTEXTS FOR {q}"), 2),
            (format!("CONNECTIONS 5 FOR {q}"), 3),
            (format!("RESULTS FOR {q}"), 2),
            ("TWIG /country/name".to_string(), 2),
            (format!("CUBE import-trade-percentage BY import-country FOR {q}"), 4),
        ];
        for (text, ops) in cases {
            let plan = e.prepare(&SedaRequest::parse(&text).unwrap()).unwrap();
            assert_eq!(plan.program().len(), ops, "{text}");
            assert!(
                matches!(plan.program().ops().last(), Some(PlanOp::Emit(_))),
                "programs end by emitting a payload: {text}"
            );
            assert!(!plan.program().render().is_empty());
        }
    }

    #[test]
    fn ops_render_for_the_explain_listing() {
        assert_eq!(
            PlanOp::Search { k: 3, strategy: SearchStrategy::Join }.to_string(),
            "search k=3 (threshold join)"
        );
        assert_eq!(
            PlanOp::Search { k: 1, strategy: SearchStrategy::SingleTermScan }.to_string(),
            "search k=1 (single-term scan)"
        );
        assert_eq!(PlanOp::Emit(EmitShape::Cube).to_string(), "emit cube");
        assert_eq!(PlanOp::DeriveStarSchema.to_string(), "derive-star-schema");
    }
}
