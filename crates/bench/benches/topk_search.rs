//! Experiment P1 — top-k search latency and early termination (Sec. 4).
//!
//! The paper claims SEDA "first quickly retrieves top-k tuples" before any
//! expensive complete-result computation.  This bench measures the
//! Threshold-Algorithm searcher for k ∈ {1, 10, 100} against the exhaustive
//! baseline, over Factbook-like corpora of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seda_bench::{factbook_engine, query1};
use seda_core::ContextSelections;
use seda_topk::{TopKConfig, TopKSearcher};

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_search");
    group.sample_size(10);

    for &countries in &[20usize, 60, 120] {
        let engine = factbook_engine(countries, 3);
        let query = query1();
        let selections = ContextSelections::none();
        for &k in &[1usize, 10, 100] {
            group.bench_with_input(
                BenchmarkId::new(format!("ta_{countries}countries"), k),
                &k,
                |b, &k| b.iter(|| engine.top_k(&query, &selections, k).tuples.len()),
            );
        }
        // Naive baseline at k = 10 for comparison (who wins and by how much).
        let collection = engine.collection();
        let searcher = TopKSearcher::new(collection, engine.node_index(), engine.graph());
        let terms: Vec<seda_topk::TermInput> = query
            .terms
            .iter()
            .map(|t| match t.context.allowed_paths(collection) {
                Some(paths) => seda_topk::TermInput::with_paths(t.search.clone(), paths),
                None => seda_topk::TermInput::new(t.search.clone()),
            })
            .collect();
        group.bench_function(format!("naive_{countries}countries/10"), |b| {
            b.iter(|| searcher.search_naive(&terms, &TopKConfig::with_k(10)).tuples.len())
        });

        // Scoring ablation: content-only (structure weight 0) vs combined.
        let mut content_only = TopKConfig::with_k(10);
        content_only.structure_weight = 0.0;
        group.bench_function(format!("ta_content_only_{countries}countries/10"), |b| {
            b.iter(|| searcher.search(&terms, &content_only).tuples.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topk);
criterion_main!(benches);
