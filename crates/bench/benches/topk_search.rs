//! Experiment P1 — top-k search latency and early termination (Sec. 4).
//!
//! The paper claims SEDA "first quickly retrieves top-k tuples" before any
//! expensive complete-result computation.  This bench measures the
//! Threshold-Algorithm searcher for k ∈ {1, 10, 100} against the exhaustive
//! baseline over the googlebase / mondial / factbook workloads (the same
//! workloads `bench_topk` snapshots into `BENCH_topk.json`), plus a
//! factbook scaling series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seda_bench::{factbook_engine, query1, topk_workloads};
use seda_core::ContextSelections;
use seda_topk::{SearchScratch, TopKConfig, TopKSearcher};

/// The three standard workloads, searched through a reused scratch (the
/// steady-state serving configuration).
fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_search");
    group.sample_size(10);

    for workload in topk_workloads() {
        let searcher = TopKSearcher::new(
            workload.engine.collection(),
            workload.engine.node_index(),
            workload.engine.graph(),
        );
        let terms = workload.term_inputs();
        let mut scratch = SearchScratch::new();
        for &k in &[1usize, 10, 100] {
            group.bench_with_input(
                BenchmarkId::new(format!("ta_{}", workload.name), k),
                &k,
                |b, &k| {
                    b.iter(|| {
                        searcher
                            .search_with(&terms, &TopKConfig::with_k(k), &mut scratch)
                            .tuples
                            .len()
                    })
                },
            );
        }
        group.bench_function(format!("naive_{}/10", workload.name), |b| {
            b.iter(|| {
                searcher
                    .search_naive_with(&terms, &TopKConfig::with_k(10), &mut scratch)
                    .tuples
                    .len()
            })
        });
    }
    group.finish();
}

/// Factbook scaling series with the engine-level entry point (cached scratch
/// inside the engine) and a scoring ablation.
fn bench_factbook_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_search_factbook_scaling");
    group.sample_size(10);

    for &countries in &[20usize, 60, 120] {
        let engine = factbook_engine(countries, 3);
        let query = query1();
        let selections = ContextSelections::none();
        for &k in &[1usize, 10, 100] {
            group.bench_with_input(
                BenchmarkId::new(format!("ta_{countries}countries"), k),
                &k,
                |b, &k| b.iter(|| engine.top_k(&query, &selections, k).tuples.len()),
            );
        }
        // Naive baseline at k = 10 for comparison (who wins and by how much).
        let collection = engine.collection();
        let searcher = TopKSearcher::new(collection, engine.node_index(), engine.graph());
        let terms: Vec<seda_topk::TermInput> = query
            .terms
            .iter()
            .map(|t| match t.context.allowed_paths(collection) {
                Some(paths) => seda_topk::TermInput::with_paths(t.search.clone(), paths),
                None => seda_topk::TermInput::new(t.search.clone()),
            })
            .collect();
        let mut scratch = SearchScratch::new();
        group.bench_function(format!("naive_{countries}countries/10"), |b| {
            b.iter(|| {
                searcher
                    .search_naive_with(&terms, &TopKConfig::with_k(10), &mut scratch)
                    .tuples
                    .len()
            })
        });

        // Scoring ablation: content-only (structure weight 0) vs combined.
        let mut content_only = TopKConfig::with_k(10);
        content_only.structure_weight = 0.0;
        group.bench_function(format!("ta_content_only_{countries}countries/10"), |b| {
            b.iter(|| searcher.search_with(&terms, &content_only, &mut scratch).tuples.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads, bench_factbook_scaling);
criterion_main!(benches);
