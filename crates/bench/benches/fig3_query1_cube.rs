//! Experiment F3 — the worked Query 1 example of Figures 1–3: from keyword
//! query terms to the import-trade-percentage fact table with the
//! automatically added year key column.
//!
//! Prints the reproduced Figure 3(c) fact table once, then benchmarks the
//! end-to-end pipeline (complete results + star schema) and the interactive
//! front half (top-k + summaries).

use criterion::{criterion_group, criterion_main, Criterion};

use seda_bench::{factbook_engine, query1, render_query1_fact_table, run_query1_cube};
use seda_core::{ContextSelections, Session};

fn bench_query1(c: &mut Criterion) {
    let engine = factbook_engine(60, 6);
    let build = run_query1_cube(&engine);
    println!("\n=== Experiment F3 (Query 1) ===");
    println!("{}", render_query1_fact_table(&build, 12));
    println!(
        "matched dimensions: {:?}\nmatched facts: {:?}\n",
        build.matching.dimensions, build.matching.facts
    );

    let mut group = c.benchmark_group("fig3_query1");
    group.sample_size(10);
    group.bench_function("topk_and_summaries", |b| {
        b.iter(|| {
            let mut session = Session::new(&engine);
            session.set_k(10);
            let top_len = session.submit(query1()).expect("submit query 1").tuples.len();
            (top_len, session.connection_summary().map(|s| s.len()))
        })
    });
    group.bench_function("complete_results_and_cube", |b| {
        b.iter(|| run_query1_cube(&engine).schema.fact_tables.len())
    });
    group.bench_function("topk_only", |b| {
        b.iter(|| engine.top_k(&query1(), &ContextSelections::none(), 10).tuples.len())
    });
    group.finish();
}

criterion_group!(benches, bench_query1);
criterion_main!(benches);
