//! Experiment P3 — cost of deriving and aggregating the star schema (Sec. 7
//! steps 1–3 plus the OLAP aggregation the paper delegates to an external
//! tool), as a function of the complete-result size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seda_bench::{factbook_engine, query1};
use seda_core::ContextSelections;
use seda_olap::{aggregate, AggFn, BuildOptions, CubeQuery};

fn bench_cube(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_build");
    group.sample_size(10);

    for &countries in &[30usize, 90, 180] {
        let engine = factbook_engine(countries, 6);
        let collection = engine.collection();
        let query = query1();
        let mut selections = ContextSelections::none();
        for (term, path) in [
            (0usize, "/country/name"),
            (1, "/country/economy/import_partners/item/trade_country"),
            (2, "/country/economy/import_partners/item/percentage"),
        ] {
            if let Some(p) = collection.paths().get_str(collection.symbols(), path) {
                selections.select(term, vec![p]);
            }
        }
        let result = engine.complete_results(&query, &selections, &[]);
        group.bench_with_input(
            BenchmarkId::new("star_schema_build", result.len()),
            &result,
            |b, result| {
                b.iter(|| {
                    engine
                        .build_star_schema(result, &BuildOptions::default())
                        .schema
                        .fact_tables
                        .len()
                })
            },
        );

        let build = engine.build_star_schema(&result, &BuildOptions::default());
        if let Some(fact) = build.schema.fact("import-trade-percentage") {
            group.bench_with_input(
                BenchmarkId::new("cube_aggregate_rows", fact.len()),
                fact,
                |b, fact| {
                    b.iter(|| {
                        aggregate(
                            fact,
                            &CubeQuery::sum(&["year", "import-country"], "import-trade-percentage")
                                .with_agg(AggFn::Avg),
                        )
                        .map(|r| r.len())
                        .unwrap_or(0)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cube);
criterion_main!(benches);
