//! Experiment P3 — cost of deriving and aggregating the star schema (Sec. 7
//! steps 1–3 plus the OLAP aggregation the paper delegates to an external
//! tool), as a function of the complete-result size — and experiment P4, the
//! shard-parallel engine build: the same (largest) Factbook-like corpus is
//! indexed sequentially and with a worker pool, so the speedup of the
//! shard → merge lifecycle is measured rather than asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seda_bench::{build_profiles, factbook_engine, query1, render_build_comparison};
use seda_core::{ContextSelections, EngineConfig, SedaEngine};
use seda_datagen::{factbook, FactbookConfig};
use seda_olap::{aggregate, AggFn, BuildOptions, CubeQuery, Registry};

fn bench_cube(c: &mut Criterion) {
    let mut group = c.benchmark_group("cube_build");
    group.sample_size(10);

    for &countries in &[30usize, 90, 180] {
        let engine = factbook_engine(countries, 6);
        let collection = engine.collection();
        let query = query1();
        let mut selections = ContextSelections::none();
        for (term, path) in [
            (0usize, "/country/name"),
            (1, "/country/economy/import_partners/item/trade_country"),
            (2, "/country/economy/import_partners/item/percentage"),
        ] {
            if let Some(p) = collection.paths().get_str(collection.symbols(), path) {
                selections.select(term, vec![p]);
            }
        }
        let result = engine.complete_results(&query, &selections, &[]).expect("complete results");
        group.bench_with_input(
            BenchmarkId::new("star_schema_build", result.len()),
            &result,
            |b, result| {
                b.iter(|| {
                    engine
                        .build_star_schema(result, &BuildOptions::default())
                        .schema
                        .fact_tables
                        .len()
                })
            },
        );

        let build = engine.build_star_schema(&result, &BuildOptions::default());
        if let Some(fact) = build.schema.fact("import-trade-percentage") {
            group.bench_with_input(
                BenchmarkId::new("cube_aggregate_rows", fact.len()),
                fact,
                |b, fact| {
                    b.iter(|| {
                        aggregate(
                            fact,
                            &CubeQuery::sum(&["year", "import-country"], "import-trade-percentage")
                                .with_agg(AggFn::Avg),
                        )
                        .map(|r| r.len())
                        .unwrap_or(0)
                    })
                },
            );
        }
    }
    group.finish();
}

/// Worker count for the parallel engine-build variant; matches the 4-core CI
/// shape by default, override with `SEDA_BUILD_THREADS`.
fn build_threads() -> usize {
    std::env::var("SEDA_BUILD_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4)
}

fn bench_engine_build(c: &mut Criterion) {
    let threads = build_threads();

    // The largest generated factbook collection of the P3 sweep, generated
    // once and shared by the profile printout and the measured benchmark.
    let collection =
        factbook::generate(&FactbookConfig::paper_scaled(180, 6)).expect("generate factbook");

    // Print the measured shard/merge split once for the largest corpus.
    let (sequential, parallel) = build_profiles(&collection, threads);
    println!(
        "\n=== Experiment P4 (engine build, {} docs) ===\n{}",
        sequential.documents,
        render_build_comparison(&sequential, &parallel)
    );

    let mut group = c.benchmark_group("engine_build");
    group.sample_size(10);
    for (label, parallelism) in [("sequential", 1usize), ("parallel", threads)] {
        group.bench_with_input(
            BenchmarkId::new(label, collection.len()),
            &collection,
            |b, collection| {
                b.iter(|| {
                    SedaEngine::build(
                        collection.clone(),
                        Registry::factbook_defaults(),
                        EngineConfig { parallelism, ..EngineConfig::default() },
                    )
                    .expect("engine build")
                    .build_profile()
                    .total_secs
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engine_build, bench_cube);
criterion_main!(benches);
