//! Experiments A1 and A2 — ablation of the dataguide overlap threshold.
//!
//! The paper fixes the threshold at 40% and reports (a) reduction factors
//! between 3× and 100× depending on the data set and (b) that higher
//! thresholds produce fewer false-positive connections.  This bench sweeps
//! the threshold, prints both curves, and benchmarks the merge at selected
//! thresholds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seda_bench::scaled_collection;
use seda_core::{ContextSelections, EngineConfig, SedaEngine};
use seda_datagen::Dataset;
use seda_dataguide::{discover_connections, false_positive_connections, guide_links, DataGuideSet};
use seda_olap::Registry;

fn sweep_thresholds() {
    println!("\n=== Experiment A1: dataguide reduction factor vs overlap threshold ===");
    println!(
        "{:<25} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "data set", "#docs", "0.0", "0.2", "0.4", "0.6", "0.8"
    );
    for dataset in Dataset::ALL {
        let collection = scaled_collection(dataset, 0.05);
        let mut cells = Vec::new();
        for threshold in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let guides = DataGuideSet::build(&collection, threshold).unwrap();
            cells.push(format!("{:.1}x", collection.len() as f64 / guides.len() as f64));
        }
        println!(
            "{:<25} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
            dataset.name(),
            collection.len(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4]
        );
    }
}

fn false_positive_sweep() {
    println!("\n=== Experiment A2: false-positive connections vs overlap threshold ===");
    let collection = scaled_collection(Dataset::WorldFactbook, 0.08);
    let engine = SedaEngine::build(
        collection.clone(),
        Registry::factbook_defaults(),
        EngineConfig::default(),
    )
    .unwrap();
    let query = seda_bench::query1();
    let topk = engine.top_k(&query, &ContextSelections::none(), 20);
    let instantiated = discover_connections(&collection, engine.graph(), &topk.node_tuples(), 12);
    // Candidate pairs: every pair of contexts of the query's context buckets.
    let summary = engine.context_summary(&query);
    let mut pairs = Vec::new();
    for a in summary.buckets[1].paths() {
        for b in summary.buckets[2].paths() {
            pairs.push((a, b));
        }
    }
    println!(
        "{:>9} {:>12} {:>18} {:>16}",
        "threshold", "#dataguides", "guide connections", "false positives"
    );
    for threshold in [0.1, 0.4, 0.7, 1.0] {
        let guides = DataGuideSet::build(&collection, threshold).unwrap();
        let links = guide_links(&collection, engine.graph(), &guides);
        let (fp, total) =
            false_positive_connections(&collection, &guides, &links, &instantiated, &pairs);
        println!("{threshold:>9.1} {:>12} {total:>18} {fp:>16}", guides.len());
    }
    println!();
}

fn bench_threshold(c: &mut Criterion) {
    sweep_thresholds();
    false_positive_sweep();

    let collection = scaled_collection(Dataset::WorldFactbook, 0.05);
    let mut group = c.benchmark_group("ablation_overlap_threshold");
    group.sample_size(10);
    for threshold in [0.2f64, 0.4, 0.8] {
        group.bench_with_input(
            BenchmarkId::new("factbook_merge", format!("{threshold:.1}")),
            &threshold,
            |b, &threshold| b.iter(|| DataGuideSet::build(&collection, threshold).unwrap().len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_threshold);
criterion_main!(benches);
