//! Experiment P2 — complete-result materialisation cost (Sec. 7): holistic
//! twig evaluation over Dewey-ordered streams and cross-twig joins, over
//! corpora of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seda_datagen::{factbook, mondial, FactbookConfig, MondialConfig};
use seda_datagraph::{DataGraph, GraphConfig};
use seda_textindex::FullTextQuery;
use seda_twigjoin::{cross_twig_join, evaluate_twig, JoinPredicate, TwigPattern};

fn query1_pattern() -> TwigPattern {
    let mut pattern = TwigPattern::from_paths(&[
        "/country/name",
        "/country/year",
        "/country/economy/import_partners/item/trade_country",
        "/country/economy/import_partners/item/percentage",
    ])
    .unwrap();
    let name_node =
        pattern.node_indices().into_iter().find(|&i| pattern.node(i).label == "name").unwrap();
    pattern.set_predicate(name_node, FullTextQuery::phrase("United States"));
    pattern
}

fn bench_twig(c: &mut Criterion) {
    let mut group = c.benchmark_group("twig_join");
    group.sample_size(10);

    for &countries in &[30usize, 90, 180] {
        let collection = factbook::generate(&FactbookConfig::paper_scaled(countries, 6)).unwrap();
        let pattern = query1_pattern();
        group.bench_with_input(
            BenchmarkId::new("query1_twig", countries * 6),
            &collection,
            |b, collection| b.iter(|| evaluate_twig(collection, &pattern).len()),
        );
    }

    // Cross-twig join over the Mondial-like corpus: seas joined to the
    // countries they border via IDREF adjacency.
    let mondial = mondial::generate(&MondialConfig::small()).unwrap();
    let graph = DataGraph::build(&mondial, &GraphConfig::default());
    let bordering = evaluate_twig(&mondial, &TwigPattern::from_path("/sea/bordering").unwrap());
    let mut country = TwigPattern::from_path("/country/name").unwrap();
    country.set_output(0, true);
    let countries = evaluate_twig(&mondial, &country);
    group.bench_function("cross_twig_join_idref", |b| {
        b.iter(|| {
            cross_twig_join(
                &mondial,
                &graph,
                &bordering,
                &countries,
                &[JoinPredicate::GraphAdjacency { left: 0, right: 0 }],
            )
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_twig);
criterion_main!(benches);
