//! Experiment T1 — Table 1: dataguide statistics at a 40% overlap threshold
//! for the four data sets (Google Base, Mondial, RecipeML, World Factbook).
//!
//! The harness prints the reproduced table (paper vs measured) once and then
//! benchmarks the dataguide build itself per data set, in two variants: the
//! sequential single-pass build and the shard → merge build whose
//! per-document guide computation fans out across a worker pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seda_bench::{render_table1, scaled_collection, table1};
use seda_core::parallel::parallel_map;
use seda_datagen::Dataset;
use seda_dataguide::DataGuideSet;
use seda_xmlstore::DocId;

/// Corpus scale used for the printed table; override with
/// `SEDA_TABLE1_SCALE=1.0` to reproduce the paper-sized corpora.
fn table_scale() -> f64 {
    std::env::var("SEDA_TABLE1_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.1)
}

fn bench_table1(c: &mut Criterion) {
    let scale = table_scale();
    let rows = table1(scale);
    println!("\n=== Experiment T1 (scale {scale}) ===\n{}", render_table1(&rows));

    let mut group = c.benchmark_group("table1_dataguide_merge");
    group.sample_size(10);
    let threads =
        std::env::var("SEDA_BUILD_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(4usize);
    for dataset in Dataset::ALL {
        let collection = scaled_collection(dataset, 0.05);
        let name = dataset.name().replace(' ', "_");
        group.bench_with_input(
            BenchmarkId::new("sequential_40pct", &name),
            &collection,
            |b, collection| {
                b.iter(|| DataGuideSet::build(collection, 0.4).expect("dataguide build").len())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded_40pct", &name),
            &collection,
            |b, collection| {
                b.iter(|| {
                    let docs: Vec<DocId> = collection.documents().map(|d| d.id).collect();
                    let shards = parallel_map(&docs, threads, |&doc| {
                        DataGuideSet::build_shard(collection, [doc]).expect("dataguide shard")
                    })
                    .expect("no shard panics");
                    DataGuideSet::merge(0.4, shards).len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
