//! Experiments F8 and S1 — the keyword→path context index of Figure 8 and the
//! in-text Factbook statistics (1984 distinct paths, 27 contexts for
//! "United States", `/country` in 1577/1600 documents, long tail of rare
//! paths).
//!
//! Benchmarks context-bucket computation for the Query 1 terms and compares
//! the two count-storage designs the paper discusses.

use criterion::{criterion_group, criterion_main, Criterion};

use seda_bench::factbook_stats;
use seda_datagen::{factbook, FactbookConfig};
use seda_textindex::{ContextIndex, CountStorage, FullTextQuery};

fn corpus_countries() -> usize {
    std::env::var("SEDA_FACTBOOK_COUNTRIES").ok().and_then(|s| s.parse().ok()).unwrap_or(80)
}

fn bench_context_index(c: &mut Criterion) {
    let collection =
        factbook::generate(&FactbookConfig::paper_scaled(corpus_countries(), 6)).unwrap();
    let stats = factbook_stats(&collection);
    println!(
        "\n=== Experiments F8/S1 ===\n\
         documents                     : {} (paper: 1600)\n\
         distinct paths                : {} (paper: 1984)\n\
         contexts matching \"United States\": {} (paper: 27)\n\
         documents with /country       : {} (paper: 1577)\n\
         documents with refugees path  : {} (paper: 186)\n",
        stats.documents,
        stats.distinct_paths,
        stats.united_states_contexts,
        stats.country_documents,
        stats.refugees_documents
    );

    let doc_store = ContextIndex::build(&collection, CountStorage::DocumentStore);
    let postings = ContextIndex::build(&collection, CountStorage::PostingLists);
    println!(
        "count storage ablation: document-store entries = {}, posting-list entries = {}\n",
        doc_store.count_entries(),
        postings.count_entries()
    );

    let mut group = c.benchmark_group("fig8_context_buckets");
    group.sample_size(20);
    let queries = [
        ("united_states_phrase", FullTextQuery::phrase("United States")),
        ("trade_country_tag", FullTextQuery::keywords("trade country")),
        ("percentage_tag", FullTextQuery::keywords("percentage")),
        ("import_keyword", FullTextQuery::keywords("import")),
    ];
    for (name, query) in &queries {
        group.bench_function(format!("document_store/{name}"), |b| {
            b.iter(|| doc_store.context_bucket(query).len())
        });
        group.bench_function(format!("posting_lists/{name}"), |b| {
            b.iter(|| postings.context_bucket(query).len())
        });
    }
    group.bench_function("index_build/document_store", |b| {
        b.iter(|| ContextIndex::build(&collection, CountStorage::DocumentStore).keyword_count())
    });
    group.finish();
}

criterion_group!(benches, bench_context_index);
criterion_main!(benches);
