//! Emits the machine-readable pipeline benchmark report
//! (`BENCH_pipeline.json`): full request → response latency of the unified
//! query facade, per dataset and per statement.
//!
//! Every measurement is one textual request (`TOPK`, `CONTEXTS`,
//! `CONNECTIONS`, and for the factbook workload `RESULTS` and `CUBE`)
//! planned and executed through a `SedaReader` over `BENCH_REPS` (default 30)
//! timed reps, so the numbers include parsing, planning, context resolution
//! and execution — what a serving deployment would observe — with p50/p95/p99
//! columns over the reps.  Each statement appears twice: a `"cold"` row
//! (full request → response per rep) and a `"prepared"` row (planned once
//! via `SedaReader::prepare`, warm re-executions of the compiled program),
//! so the prepared-statement speedup is part of the committed trajectory.  The committed `BENCH_pipeline.json` at the repo
//! root keeps one entry per PR so the bench trajectory is reviewable; CI
//! compiles this binary and validates the committed report's schema with
//! `--check`.
//!
//! Usage:
//! - `cargo run --release -p seda-bench --bin bench_pipeline [-- <out.json>]`
//!   (default output path `BENCH_pipeline.json`; `BENCH_LABEL` tags the run,
//!   `BENCH_REPS` overrides the rep count).
//! - `cargo run -p seda-bench --bin bench_pipeline -- --check [<report.json>]`
//!   validates an existing report against the schema without re-measuring,
//!   failing on any missing key or absent workload — so schema drift between
//!   the emitter and the committed artefact is caught in CI.

use std::process::ExitCode;
use std::time::Instant;

use seda_bench::{measure_pipeline, topk_workloads, PipelineMeasurement};

/// Keys every run row of the report must carry.  `perf_smoke` line-parses
/// `wall_ms` and the BENCH review workflow reads the quantile columns, so a
/// report missing any of these is a broken artefact.
const RUN_KEYS: &[&str] = &[
    "workload",
    "statement",
    "mode",
    "request",
    "rows",
    "wall_ms",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "reps",
    "plan_ms",
    "sorted_accesses",
    "random_accesses",
    "label_probes",
    "budget_spent",
    "degraded",
];

/// Keys every build row must carry.
const BUILD_KEYS: &[&str] = &["workload", "documents", "build_s", "verify_ms"];

/// Workloads the report must cover.
const WORKLOADS: &[&str] = &["googlebase", "mondial", "factbook", "recipeml"];

/// Validates the line-per-object report shape; returns every problem found.
fn check_report(report: &str) -> Vec<String> {
    let mut problems = Vec::new();
    for top in ["\"label\":", "\"builds\":", "\"runs\":"] {
        if !report.contains(top) {
            problems.push(format!("missing top-level key {top}"));
        }
    }
    let mut runs = 0usize;
    let mut builds = 0usize;
    for (n, line) in report.lines().enumerate() {
        let (keys, kind) = if line.contains("\"statement\":") {
            runs += 1;
            (RUN_KEYS, "run")
        } else if line.contains("\"build_s\":") {
            builds += 1;
            (BUILD_KEYS, "build")
        } else {
            continue;
        };
        for key in keys {
            if !line.contains(&format!("\"{key}\":")) {
                problems.push(format!("line {}: {kind} row is missing \"{key}\"", n + 1));
            }
        }
    }
    if runs == 0 {
        problems.push("report has no run rows".to_string());
    }
    if builds == 0 {
        problems.push("report has no build rows".to_string());
    }
    for workload in WORKLOADS {
        if !report.contains(&format!("\"workload\": \"{workload}\"")) {
            problems.push(format!("report covers no \"{workload}\" workload"));
        }
    }
    problems
}

fn run_check(path: &str) -> ExitCode {
    let report = match std::fs::read_to_string(path) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("bench_pipeline --check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let problems = check_report(&report);
    if problems.is_empty() {
        println!("bench_pipeline --check: {path} conforms to the report schema");
        ExitCode::SUCCESS
    } else {
        for problem in &problems {
            eprintln!("bench_pipeline --check: {path}: {problem}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).cloned().unwrap_or_else(|| "BENCH_pipeline.json".to_string());
        return run_check(&path);
    }
    let out_path = args.first().cloned().unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "local".to_string());

    let started = Instant::now();
    let mut measurements: Vec<PipelineMeasurement> = Vec::new();
    let mut builds: Vec<String> = Vec::new();
    for workload in topk_workloads() {
        eprintln!("workload {} ({} docs) ...", workload.name, workload.engine.collection().len());
        // The build-time structural audit cost (BuildProfile::verify_ms) is
        // part of the committed report so audit-cost regressions are
        // reviewable alongside the query latencies.
        let profile = workload.engine.build_profile();
        builds.push(format!(
            "    {{\"workload\": {:?}, \"documents\": {}, \"build_s\": {:.3}, \
             \"verify_ms\": {:.3}}}",
            workload.name, profile.documents, profile.total_secs, profile.verify_ms,
        ));
        measurements.extend(measure_pipeline(&workload));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"label\": {:?},\n", label));
    json.push_str("  \"builds\": [\n");
    json.push_str(&builds.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&m.to_json("    "));
        json.push_str(if i + 1 < measurements.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write bench report");
    println!("{json}");
    eprintln!("wrote {out_path} in {:.1}s", started.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::check_report;

    #[test]
    fn check_flags_missing_keys_and_workloads() {
        let good = concat!(
            "{\n  \"label\": \"x\",\n  \"builds\": [\n",
            "    {\"workload\": \"googlebase\", \"documents\": 1, \"build_s\": 0.1, \"verify_ms\": 0.1}\n",
            "  ],\n  \"runs\": [\n",
            "    {\"workload\": \"googlebase\", \"statement\": \"TOPK\", \"mode\": \"cold\", \"request\": \"r\",",
            "\"rows\": 1, \"wall_ms\": 0.1, \"p50_ms\": 0.1, \"p95_ms\": 0.1, \"p99_ms\": 0.1, ",
            "\"reps\": 30, \"plan_ms\": 0.0, \"sorted_accesses\": 1, \"random_accesses\": 1, ",
            "\"label_probes\": 1, \"budget_spent\": 1, \"degraded\": false},\n",
            "    {\"workload\": \"mondial\", \"statement\": \"TOPK\", \"mode\": \"cold\", \"request\": \"r\",",
            "\"rows\": 1, \"wall_ms\": 0.1, \"p50_ms\": 0.1, \"p95_ms\": 0.1, \"p99_ms\": 0.1, ",
            "\"reps\": 30, \"plan_ms\": 0.0, \"sorted_accesses\": 1, \"random_accesses\": 1, ",
            "\"label_probes\": 1, \"budget_spent\": 1, \"degraded\": false},\n",
            "    {\"workload\": \"factbook\", \"statement\": \"TOPK\", \"mode\": \"cold\", \"request\": \"r\",",
            "\"rows\": 1, \"wall_ms\": 0.1, \"p50_ms\": 0.1, \"p95_ms\": 0.1, \"p99_ms\": 0.1, ",
            "\"reps\": 30, \"plan_ms\": 0.0, \"sorted_accesses\": 1, \"random_accesses\": 1, ",
            "\"label_probes\": 1, \"budget_spent\": 1, \"degraded\": false},\n",
            "    {\"workload\": \"recipeml\", \"statement\": \"TOPK\", \"mode\": \"cold\", \"request\": \"r\",",
            "\"rows\": 1, \"wall_ms\": 0.1, \"p50_ms\": 0.1, \"p95_ms\": 0.1, \"p99_ms\": 0.1, ",
            "\"reps\": 30, \"plan_ms\": 0.0, \"sorted_accesses\": 1, \"random_accesses\": 1, ",
            "\"label_probes\": 1, \"budget_spent\": 1, \"degraded\": false}\n",
            "  ]\n}\n"
        );
        assert!(check_report(good).is_empty(), "{:?}", check_report(good));

        // Dropping the quantile columns (pre-observability report shape) and
        // the recipeml workload must both be flagged.
        let stale = good.replace("\"p99_ms\": 0.1, ", "").replace("recipeml", "oldml");
        let problems = check_report(&stale);
        assert!(problems.iter().any(|p| p.contains("p99_ms")), "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("recipeml")), "{problems:?}");
        assert!(check_report("{}").iter().any(|p| p.contains("no run rows")));
    }
}
