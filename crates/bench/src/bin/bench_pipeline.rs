//! Emits the machine-readable pipeline benchmark report
//! (`BENCH_pipeline.json`): full request → response latency of the unified
//! query facade, per dataset and per statement.
//!
//! Every measurement is one textual request (`TOPK`, `CONTEXTS`,
//! `CONNECTIONS`, and for the factbook workload `RESULTS` and `CUBE`)
//! planned and executed through a `SedaReader`, so the numbers include
//! parsing, planning, context resolution and execution — what a serving
//! deployment would observe.  The committed `BENCH_pipeline.json` at the
//! repo root keeps one entry per PR so the bench trajectory is reviewable;
//! CI only compiles this binary.
//!
//! Usage: `cargo run --release -p seda-bench --bin bench_pipeline [-- <out.json>]`
//! (default output path `BENCH_pipeline.json`; set `BENCH_LABEL` to tag the
//! run).

use std::time::Instant;

use seda_bench::{measure_pipeline, topk_workloads, PipelineMeasurement};

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "local".to_string());

    let started = Instant::now();
    let mut measurements: Vec<PipelineMeasurement> = Vec::new();
    let mut builds: Vec<String> = Vec::new();
    for workload in topk_workloads() {
        eprintln!("workload {} ({} docs) ...", workload.name, workload.engine.collection().len());
        // The build-time structural audit cost (BuildProfile::verify_ms) is
        // part of the committed report so audit-cost regressions are
        // reviewable alongside the query latencies.
        let profile = workload.engine.build_profile();
        builds.push(format!(
            "    {{\"workload\": {:?}, \"documents\": {}, \"build_s\": {:.3}, \
             \"verify_ms\": {:.3}}}",
            workload.name, profile.documents, profile.total_secs, profile.verify_ms,
        ));
        measurements.extend(measure_pipeline(&workload));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"label\": {:?},\n", label));
    json.push_str("  \"builds\": [\n");
    json.push_str(&builds.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&m.to_json("    "));
        json.push_str(if i + 1 < measurements.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write bench report");
    println!("{json}");
    eprintln!("wrote {out_path} in {:.1}s", started.elapsed().as_secs_f64());
}
