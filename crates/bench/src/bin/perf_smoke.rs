//! CI perf smoke check: re-measures the mondial `TOPK` pipeline latency and
//! fails when it regresses past a committed threshold.
//!
//! The baseline is the `mondial` / `TOPK` row of the committed
//! `BENCH_pipeline.json` at the repo root (parsed by plain string matching —
//! the report is emitted one object per line by `bench_pipeline`).  The
//! allowed budget is `max(50ms, 10 × committed wall_ms)`: generous enough to
//! absorb shared-runner noise, tight enough to catch the connectivity oracle
//! silently falling back to per-query BFS (a ~50× regression on this
//! workload).
//!
//! Two overhead checks ride along, each holding its layer to within 5% of
//! the plain run (plus a small floor absorbing timer noise): resource
//! governance under a generous never-breached budget, and span tracing via
//! `SedaReader::set_tracing` — so neither observability layer can quietly
//! tax the hot path.
//!
//! Two optimizer checks complete the gate: the cold (plan + execute) path
//! must stay within 5% of the committed baseline (plus the same noise
//! floor) — the rewrite passes and program compilation may not tax one-shot
//! requests — and prepared re-execution of a mixed statement workload must
//! beat cold execution by at least 1.3x, pinning the prepared-statement
//! speedup the committed `BENCH_pipeline.json` reports.
//!
//! Usage: `cargo run --release -p seda-bench --bin perf_smoke [-- <baseline.json>]`
//! (default baseline path `BENCH_pipeline.json`).  Exits non-zero on
//! regression or when the baseline row cannot be found.

use std::process::ExitCode;

use seda_bench::{best_of_three, measure_pipeline, topk_workloads};
use seda_core::{Budget, RequestContext, SedaRequest};

/// Extracts the `wall_ms` value of the `mondial` `TOPK` row from the report's
/// line-per-object JSON.
fn committed_mondial_topk_ms(report: &str) -> Option<f64> {
    report
        .lines()
        .find(|line| {
            line.contains("\"workload\": \"mondial\"") && line.contains("\"statement\": \"TOPK\"")
        })
        .and_then(|line| {
            let rest = line.split("\"wall_ms\": ").nth(1)?;
            rest.split([',', '}']).next()?.trim().parse().ok()
        })
}

fn main() -> ExitCode {
    let baseline_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let report = match std::fs::read_to_string(&baseline_path) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("perf_smoke: cannot read baseline {baseline_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let Some(committed_ms) = committed_mondial_topk_ms(&report) else {
        eprintln!("perf_smoke: no mondial TOPK row in {baseline_path}");
        return ExitCode::FAILURE;
    };

    let Some(workload) = topk_workloads().into_iter().find(|w| w.name == "mondial") else {
        eprintln!("perf_smoke: no mondial workload");
        return ExitCode::FAILURE;
    };
    let measurements = measure_pipeline(&workload);
    let Some(topk) = measurements.iter().find(|m| m.statement == "TOPK" && m.mode == "cold") else {
        eprintln!("perf_smoke: pipeline measurement has no cold TOPK row");
        return ExitCode::FAILURE;
    };

    let budget_ms = (committed_ms * 10.0).max(50.0);
    println!(
        "perf_smoke: mondial TOPK {:.3}ms (committed {:.3}ms, budget {:.3}ms, {} label probes)",
        topk.wall_ms, committed_ms, budget_ms, topk.label_probes
    );
    if topk.wall_ms > budget_ms {
        eprintln!(
            "perf_smoke: REGRESSION — mondial TOPK took {:.3}ms, budget is {:.3}ms",
            topk.wall_ms, budget_ms
        );
        return ExitCode::FAILURE;
    }

    // The optimizer must not tax the cold path: a freshly planned run stays
    // within 5% of the committed baseline (plus the usual floor absorbing
    // timer noise on millisecond workloads).
    let optimized_budget_ms = (committed_ms * 1.05).max(committed_ms + 5.0);
    println!(
        "perf_smoke: optimized cold TOPK {:.3}ms (committed {:.3}ms, budget {:.3}ms)",
        topk.wall_ms, committed_ms, optimized_budget_ms
    );
    if topk.wall_ms > optimized_budget_ms {
        eprintln!(
            "perf_smoke: OPTIMIZER OVERHEAD — cold TOPK took {:.3}ms, committed baseline \
             is {:.3}ms (allowed {:.3}ms)",
            topk.wall_ms, committed_ms, optimized_budget_ms
        );
        return ExitCode::FAILURE;
    }

    // Resource governance must be close to free when every ceiling is
    // generous: re-run the same TOPK request under a fully specified (but
    // never-breached) Budget and require the governed wall time to stay
    // within 5% of the ungoverned run (plus a small floor absorbing timer
    // noise on sub-millisecond workloads).
    let request = match SedaRequest::parse(&format!("TOPK 10 FOR {}", workload.query_text)) {
        Ok(request) => request,
        Err(err) => {
            eprintln!("perf_smoke: TOPK request failed to parse: {err}");
            return ExitCode::FAILURE;
        }
    };
    let generous = Budget::unlimited()
        .with_deadline(std::time::Duration::from_secs(3600))
        .with_max_sorted_accesses(usize::MAX)
        .with_max_random_accesses(usize::MAX)
        .with_max_candidates(usize::MAX)
        .with_max_label_probes(u64::MAX)
        .with_max_rows(usize::MAX)
        .with_max_twig_matches(usize::MAX)
        .with_max_cube_cells(usize::MAX);
    let mut reader = workload.engine.reader();
    let (governed, governed_ms) = best_of_three(|| {
        let ctx = RequestContext::new(generous.clone());
        reader.execute_governed(&request, &ctx).expect("generous budget never breaches")
    });
    let overhead_budget_ms = (topk.wall_ms * 1.05).max(topk.wall_ms + 5.0);
    println!(
        "perf_smoke: governed TOPK {governed_ms:.3}ms (ungoverned {:.3}ms, budget {overhead_budget_ms:.3}ms)",
        topk.wall_ms
    );
    if governed.profile.degraded {
        eprintln!("perf_smoke: a generous budget must never degrade the response");
        return ExitCode::FAILURE;
    }
    if governed_ms > overhead_budget_ms {
        eprintln!(
            "perf_smoke: GOVERNANCE OVERHEAD — governed TOPK took {governed_ms:.3}ms, \
             ungoverned {:.3}ms (allowed {overhead_budget_ms:.3}ms)",
            topk.wall_ms
        );
        return ExitCode::FAILURE;
    }

    // Span tracing must also be close to free: re-measure the same TOPK
    // request untraced and traced on one reader handle and require the traced
    // wall time to stay within 5% (plus the same timer-noise floor).  A
    // tracing layer that allocates or formats on the hot path shows up here.
    let (_, untraced_ms) =
        best_of_three(|| reader.execute(&request).expect("untraced TOPK executes"));
    reader.set_tracing(true);
    let (traced, traced_ms) =
        best_of_three(|| reader.execute(&request).expect("traced TOPK executes"));
    reader.set_tracing(false);
    let tracing_budget_ms = (untraced_ms * 1.05).max(untraced_ms + 5.0);
    println!(
        "perf_smoke: traced TOPK {traced_ms:.3}ms (untraced {untraced_ms:.3}ms, \
         budget {tracing_budget_ms:.3}ms, {} spans)",
        traced.profile.spans.len()
    );
    if traced.profile.spans.is_empty() {
        eprintln!("perf_smoke: traced run recorded no spans");
        return ExitCode::FAILURE;
    }
    if traced_ms > tracing_budget_ms {
        eprintln!(
            "perf_smoke: TRACING OVERHEAD — traced TOPK took {traced_ms:.3}ms, \
             untraced {untraced_ms:.3}ms (allowed {tracing_budget_ms:.3}ms)"
        );
        return ExitCode::FAILURE;
    }

    // Prepared statements are the optimizer's headline win: on a mixed
    // statement workload, re-executing prepared statements (plan once, warm
    // materialized term lists, warm compactness memo) must beat cold
    // request → response execution by at least 1.3x.  The check runs on the
    // factbook corpus (the paper's Query 1 workload), where the warm
    // compactness memo removes the dominant per-execution cost; on mondial
    // the wall time is random-access bound, so the speedup there is smaller.
    let Some(mixed_workload) = topk_workloads().into_iter().find(|w| w.name == "factbook") else {
        eprintln!("perf_smoke: no factbook workload");
        return ExitCode::FAILURE;
    };
    let mut mixed_reader = mixed_workload.engine.reader();
    let mixed: Vec<SedaRequest> = [
        format!("TOPK 10 FOR {}", mixed_workload.query_text),
        format!("CONTEXTS FOR {}", mixed_workload.query_text),
        format!("CONNECTIONS 10 FOR {}", mixed_workload.query_text),
    ]
    .iter()
    .map(|t| SedaRequest::parse(t).expect("mixed workload request parses"))
    .collect();
    let (_, cold_ms) = best_of_three(|| {
        for request in &mixed {
            mixed_reader.execute(request).expect("cold mixed workload executes");
        }
    });
    let mut prepared: Vec<_> = mixed
        .iter()
        .map(|r| mixed_reader.prepare(r).expect("mixed workload request prepares"))
        .collect();
    let (_, warm_ms) = best_of_three(|| {
        for statement in &mut prepared {
            statement.execute(&mut mixed_reader).expect("prepared mixed workload executes");
        }
    });
    let speedup = if warm_ms > 0.0 { cold_ms / warm_ms } else { f64::INFINITY };
    println!(
        "perf_smoke: mixed workload cold {cold_ms:.3}ms, prepared {warm_ms:.3}ms \
         ({speedup:.2}x speedup)"
    );
    if speedup < 1.3 {
        eprintln!(
            "perf_smoke: PREPARED SPEEDUP — prepared re-execution is only {speedup:.2}x \
             faster than cold execution (required: 1.3x)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::committed_mondial_topk_ms;

    #[test]
    fn parses_the_committed_report_shape() {
        let report = concat!(
            "{\n  \"label\": \"x\",\n  \"runs\": [\n",
            "    {\"workload\": \"googlebase\", \"statement\": \"TOPK\", \"wall_ms\": 0.621},\n",
            "    {\"workload\": \"mondial\", \"statement\": \"TOPK\", \"wall_ms\": 510.631, \"plan_ms\": 0.1},\n",
            "    {\"workload\": \"mondial\", \"statement\": \"CONTEXTS\", \"wall_ms\": 1.0}\n",
            "  ]\n}\n"
        );
        assert_eq!(committed_mondial_topk_ms(report), Some(510.631));
        assert_eq!(committed_mondial_topk_ms("{}"), None);
    }
}
