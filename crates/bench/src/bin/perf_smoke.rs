//! CI perf smoke check: re-measures the mondial `TOPK` pipeline latency and
//! fails when it regresses past a committed threshold.
//!
//! The baseline is the `mondial` / `TOPK` row of the committed
//! `BENCH_pipeline.json` at the repo root (parsed by plain string matching —
//! the report is emitted one object per line by `bench_pipeline`).  The
//! allowed budget is `max(50ms, 10 × committed wall_ms)`: generous enough to
//! absorb shared-runner noise, tight enough to catch the connectivity oracle
//! silently falling back to per-query BFS (a ~50× regression on this
//! workload).
//!
//! Usage: `cargo run --release -p seda-bench --bin perf_smoke [-- <baseline.json>]`
//! (default baseline path `BENCH_pipeline.json`).  Exits non-zero on
//! regression or when the baseline row cannot be found.

use std::process::ExitCode;

use seda_bench::{measure_pipeline, topk_workloads};

/// Extracts the `wall_ms` value of the `mondial` `TOPK` row from the report's
/// line-per-object JSON.
fn committed_mondial_topk_ms(report: &str) -> Option<f64> {
    report
        .lines()
        .find(|line| {
            line.contains("\"workload\": \"mondial\"") && line.contains("\"statement\": \"TOPK\"")
        })
        .and_then(|line| {
            let rest = line.split("\"wall_ms\": ").nth(1)?;
            rest.split([',', '}']).next()?.trim().parse().ok()
        })
}

fn main() -> ExitCode {
    let baseline_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let report = match std::fs::read_to_string(&baseline_path) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("perf_smoke: cannot read baseline {baseline_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let Some(committed_ms) = committed_mondial_topk_ms(&report) else {
        eprintln!("perf_smoke: no mondial TOPK row in {baseline_path}");
        return ExitCode::FAILURE;
    };

    let Some(workload) = topk_workloads().into_iter().find(|w| w.name == "mondial") else {
        eprintln!("perf_smoke: no mondial workload");
        return ExitCode::FAILURE;
    };
    let measurements = measure_pipeline(&workload);
    let Some(topk) = measurements.iter().find(|m| m.statement == "TOPK") else {
        eprintln!("perf_smoke: pipeline measurement has no TOPK row");
        return ExitCode::FAILURE;
    };

    let budget_ms = (committed_ms * 10.0).max(50.0);
    println!(
        "perf_smoke: mondial TOPK {:.3}ms (committed {:.3}ms, budget {:.3}ms, {} label probes)",
        topk.wall_ms, committed_ms, budget_ms, topk.label_probes
    );
    if topk.wall_ms > budget_ms {
        eprintln!(
            "perf_smoke: REGRESSION — mondial TOPK took {:.3}ms, budget is {:.3}ms",
            topk.wall_ms, budget_ms
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::committed_mondial_topk_ms;

    #[test]
    fn parses_the_committed_report_shape() {
        let report = concat!(
            "{\n  \"label\": \"x\",\n  \"runs\": [\n",
            "    {\"workload\": \"googlebase\", \"statement\": \"TOPK\", \"wall_ms\": 0.621},\n",
            "    {\"workload\": \"mondial\", \"statement\": \"TOPK\", \"wall_ms\": 510.631, \"plan_ms\": 0.1},\n",
            "    {\"workload\": \"mondial\", \"statement\": \"CONTEXTS\", \"wall_ms\": 1.0}\n",
            "  ]\n}\n"
        );
        assert_eq!(committed_mondial_topk_ms(report), Some(510.631));
        assert_eq!(committed_mondial_topk_ms("{}"), None);
    }
}
