//! `seda-bench audit` — builds a SEDA engine over every datagen corpus shape
//! and runs the full structural audit ([`seda_core::SedaEngine::verify`])
//! against each, printing the per-corpus verification cost.
//!
//! `SedaEngine::build` already audits the freshly built engine (the cost is
//! the `verify_ms` row of [`seda_core::BuildProfile`]); this binary re-runs
//! the audit explicitly so CI exercises `verify()` on a *settled* engine too,
//! and so the invariant catalog has a one-command smoke check:
//!
//! ```text
//! cargo run --release -p seda-bench --bin audit [-- <scale>]
//! ```
//!
//! The optional scale factor (default `0.1`) is forwarded to
//! [`seda_bench::scaled_collection`].  Exits non-zero when any corpus fails
//! its audit, printing every [`seda_xmlstore::audit::InvariantViolation`] as
//! `substrate/invariant: detail`.

use std::process::ExitCode;

use seda_bench::scaled_collection;
use seda_core::{EngineConfig, SedaEngine, Stopwatch};
use seda_datagen::Dataset;
use seda_olap::Registry;

fn main() -> ExitCode {
    let scale: f64 = match std::env::args().nth(1).map(|s| s.parse()) {
        None => 0.1,
        Some(Ok(scale)) => scale,
        Some(Err(err)) => {
            eprintln!("audit: scale must be a number: {err}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;
    println!("seda audit @ scale {scale}: xmlstore, textindex, datagraph, dataguide, topk, core");
    for dataset in Dataset::ALL {
        let collection = scaled_collection(dataset, scale);
        let documents = collection.len();
        let engine = match SedaEngine::build(
            collection,
            Registry::factbook_defaults(),
            EngineConfig::default(),
        ) {
            Ok(engine) => engine,
            Err(err) => {
                // Build-time audit failures surface here as SedaError::Internal.
                println!("  {:<22} BUILD FAILED: {err}", dataset.name());
                failures += 1;
                continue;
            }
        };
        let settled = Stopwatch::start();
        let audit = engine.verify();
        let settled_ms = settled.elapsed_secs() * 1e3;
        match audit {
            Ok(()) => println!(
                "  {:<22} ok   {:>5} docs   build-audit {:>7.2}ms   settled-audit {:>7.2}ms",
                dataset.name(),
                documents,
                engine.build_profile().verify_ms,
                settled_ms,
            ),
            Err(violations) => {
                println!("  {:<22} FAILED ({} violations)", dataset.name(), violations.len());
                for v in &violations {
                    println!("    {}/{}: {}", v.substrate, v.invariant, v.detail);
                }
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("audit: {failures} corpus audit(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
