//! Emits the machine-readable top-k benchmark report (`BENCH_topk.json`).
//!
//! Runs the Threshold-Algorithm searcher and the exhaustive baseline over the
//! googlebase / mondial / factbook workloads and records wall times plus the
//! work counters of every run.  The committed `BENCH_topk.json` at the repo
//! root keeps one entry per PR so the bench trajectory is reviewable; CI only
//! compiles this binary (`cargo bench --no-run` + `cargo build`), it does not
//! re-measure on shared runners.
//!
//! Usage: `cargo run --release -p seda-bench --bin bench_topk [-- <out.json>]`
//! (default output path `BENCH_topk.json`; set `BENCH_LABEL` to tag the run).

use std::time::Instant;

use seda_bench::{topk_workloads, TopKMeasurement};

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_topk.json".to_string());
    let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "local".to_string());

    let started = Instant::now();
    let mut measurements: Vec<TopKMeasurement> = Vec::new();
    for workload in topk_workloads() {
        eprintln!("workload {} ({} docs) ...", workload.name, workload.engine.collection().len());
        measurements.extend(workload.measure());
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"label\": {:?},\n", label));
    json.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&m.to_json("    "));
        json.push_str(if i + 1 < measurements.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write bench report");
    println!("{json}");
    eprintln!("wrote {out_path} in {:.1}s", started.elapsed().as_secs_f64());
}
