//! # seda-bench
//!
//! Shared fixtures and report generators for the benchmark harness that
//! regenerates every table and figure of the SEDA paper (see `DESIGN.md` for
//! the experiment index and `EXPERIMENTS.md` for paper-vs-measured numbers).
//!
//! The heavy lifting lives here so that the individual Criterion benches stay
//! small and the same reports can be produced by examples and integration
//! tests.

use seda_core::{
    BuildProfile, EngineConfig, Histogram, SedaEngine, SedaQuery, SedaRequest, SedaResponse,
};
use seda_datagen::{
    factbook, googlebase, mondial, recipeml, Dataset, FactbookConfig, GoogleBaseConfig,
    MondialConfig, RecipeMlConfig,
};
use seda_dataguide::DataGuideSet;
use seda_olap::{BuildOptions, Registry, StarSchemaBuild};
use seda_textindex::{ContextIndex, CountStorage, FullTextQuery};
use seda_xmlstore::Collection;

/// Scale factor applied to the paper-sized corpora.  `1.0` reproduces the
/// Table 1 document counts exactly; smaller values keep bench iterations
/// affordable.
pub fn scaled_collection(dataset: Dataset, scale: f64) -> Collection {
    let scale = scale.clamp(0.005, 1.0);
    match dataset {
        Dataset::GoogleBase => {
            let mut config = GoogleBaseConfig::paper();
            config.items = ((config.items as f64 * scale) as usize).max(50);
            googlebase::generate(&config).expect("generate google base")
        }
        Dataset::Mondial => {
            let mut config = MondialConfig::paper();
            config.countries = ((config.countries as f64 * scale) as usize).max(10);
            config.provinces = ((config.provinces as f64 * scale) as usize).max(10);
            config.cities = ((config.cities as f64 * scale) as usize).max(20);
            config.seas = ((config.seas as f64 * scale) as usize).max(4);
            config.rivers = ((config.rivers as f64 * scale) as usize).max(4);
            config.organizations = ((config.organizations as f64 * scale) as usize).max(3);
            config.features = ((config.features as f64 * scale) as usize).max(4);
            mondial::generate(&config).expect("generate mondial")
        }
        Dataset::RecipeMl => {
            let mut config = RecipeMlConfig::paper();
            config.recipes = ((config.recipes as f64 * scale) as usize).max(50);
            recipeml::generate(&config).expect("generate recipeml")
        }
        Dataset::WorldFactbook => {
            let countries = ((267.0 * scale) as usize).max(10);
            let years = if scale >= 0.5 { 6 } else { 3 };
            factbook::generate(&FactbookConfig::paper_scaled(countries, years))
                .expect("generate factbook")
        }
    }
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Data set name.
    pub dataset: &'static str,
    /// Documents generated.
    pub documents: usize,
    /// Dataguides measured at the 40% threshold.
    pub dataguides: usize,
    /// Documents reported by the paper.
    pub paper_documents: usize,
    /// Dataguides reported by the paper.
    pub paper_dataguides: usize,
}

/// Reproduces Table 1 (dataguide statistics at a 40% overlap threshold) at the
/// given corpus scale.
pub fn table1(scale: f64) -> Vec<Table1Row> {
    Dataset::ALL
        .iter()
        .map(|&dataset| {
            let collection = scaled_collection(dataset, scale);
            let guides = DataGuideSet::build(&collection, 0.4).expect("dataguide build");
            Table1Row {
                dataset: dataset.name(),
                documents: collection.len(),
                dataguides: guides.len(),
                paper_documents: dataset.paper_document_count(),
                paper_dataguides: dataset.paper_dataguide_count(),
            }
        })
        .collect()
}

/// Renders Table 1 in the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "Table 1: Dataguide statistics for threshold of 40%\n\
         data set                  # documents   # data guides   (paper: docs -> guides)\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<25} {:>11} {:>15}   ({} -> {})\n",
            row.dataset, row.documents, row.dataguides, row.paper_documents, row.paper_dataguides
        ));
    }
    out
}

/// Statistics of the Factbook-like corpus reported in the paper's text
/// (Sec. 1 and Sec. 5): distinct paths, number of contexts matching
/// "United States", and document frequencies of prominent vs rare paths.
#[derive(Debug, Clone)]
pub struct FactbookStats {
    /// Total documents.
    pub documents: usize,
    /// Distinct root-to-leaf paths (paper: 1984).
    pub distinct_paths: usize,
    /// Distinct contexts matching the content "United States" (paper: 27).
    pub united_states_contexts: usize,
    /// Documents containing the `/country` path (paper: 1577 of 1600).
    pub country_documents: usize,
    /// Documents containing the refugees country-of-origin path (paper: 186).
    pub refugees_documents: usize,
}

/// Computes the Factbook text statistics over a collection.
pub fn factbook_stats(collection: &Collection) -> FactbookStats {
    let index = ContextIndex::build(collection, CountStorage::DocumentStore);
    let us_paths = index.paths_matching(&FullTextQuery::phrase("United States"));
    let freq = collection.path_document_frequency();
    let country = collection.paths().get_str(collection.symbols(), "/country");
    let refugees = collection
        .paths()
        .get_str(collection.symbols(), "/country/transnational_issues/refugees/country_of_origin");
    FactbookStats {
        documents: collection.len(),
        distinct_paths: collection.distinct_path_count(),
        united_states_contexts: us_paths.len(),
        country_documents: country.map(|p| freq.get(&p).copied().unwrap_or(0)).unwrap_or(0),
        refugees_documents: refugees.map(|p| freq.get(&p).copied().unwrap_or(0)).unwrap_or(0),
    }
}

/// Builds a SEDA engine over a Factbook-like corpus of the given size.
pub fn factbook_engine(countries: usize, years: usize) -> SedaEngine {
    factbook_engine_with(countries, years, 1)
}

/// Builds a SEDA engine over a Factbook-like corpus with the given build
/// parallelism (`1` = sequential single-pass, `0` = auto, `n` = `n` workers).
pub fn factbook_engine_with(countries: usize, years: usize, parallelism: usize) -> SedaEngine {
    let collection = factbook::generate(&FactbookConfig::paper_scaled(countries, years))
        .expect("generate factbook");
    SedaEngine::build(
        collection,
        Registry::factbook_defaults(),
        EngineConfig { parallelism, ..EngineConfig::default() },
    )
    .expect("engine build")
}

/// Builds the given collection sequentially and with `threads` workers and
/// returns both [`BuildProfile`]s, so benches and reports can show the
/// measured shard/merge split and the parallel speedup without regenerating
/// the corpus per variant.
pub fn build_profiles(collection: &Collection, threads: usize) -> (BuildProfile, BuildProfile) {
    let profile = |parallelism: usize| {
        SedaEngine::build(
            collection.clone(),
            Registry::factbook_defaults(),
            EngineConfig { parallelism, ..EngineConfig::default() },
        )
        .expect("engine build")
        .build_profile()
        .clone()
    };
    (profile(1), profile(threads))
}

/// Renders a sequential-vs-parallel build comparison from two profiles.
pub fn render_build_comparison(sequential: &BuildProfile, parallel: &BuildProfile) -> String {
    let speedup =
        if parallel.total_secs > 0.0 { sequential.total_secs / parallel.total_secs } else { 0.0 };
    format!(
        "sequential:\n{}parallel ({} threads):\n{}speedup: {speedup:.2}x\n",
        sequential.render(),
        parallel.parallelism,
        parallel.render()
    )
}

/// The paper's Query 1.
pub fn query1() -> SedaQuery {
    SedaQuery::parse(r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#)
        .expect("query 1 parses")
}

/// One top-k benchmark workload: an engine plus the query that exercises it.
pub struct TopKWorkload {
    /// Workload name (`googlebase`, `mondial`, `factbook`).
    pub name: &'static str,
    /// The query text (parseable by [`SedaQuery::parse`]).
    pub query_text: &'static str,
    /// The engine built over the workload's corpus.
    pub engine: SedaEngine,
}

/// One measured top-k run, serialisable into the `BENCH_topk.json` report.
#[derive(Debug, Clone)]
pub struct TopKMeasurement {
    /// Workload name.
    pub workload: &'static str,
    /// Query text.
    pub query: &'static str,
    /// `ta` or `naive`.
    pub algo: &'static str,
    /// Requested k.
    pub k: usize,
    /// Result tuples returned.
    pub tuples: usize,
    /// Best-of-reps wall time in milliseconds.
    pub wall_ms: f64,
    /// Latency quantiles over every timed rep.
    pub stats: RepStats,
    /// Entries consumed from sorted posting lists.
    pub sorted_accesses: usize,
    /// Random-access score probes.
    pub random_accesses: usize,
    /// Candidate tuples scored (connectivity + compactness).
    pub tuples_scored: usize,
    /// Label entries scanned by connectivity-oracle intersections.
    pub label_probes: u64,
    /// Candidate combinations clipped by the candidate limit.
    pub candidates_truncated: usize,
    /// Whether the Threshold Algorithm terminated early.
    pub early_terminated: bool,
}

impl TopKMeasurement {
    /// Renders the measurement as one indented JSON object (no trailing
    /// newline).
    pub fn to_json(&self, indent: &str) -> String {
        format!(
            "{indent}{{\"workload\": {:?}, \"query\": {:?}, \"algo\": {:?}, \"k\": {}, \
             \"tuples\": {}, \"wall_ms\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"reps\": {}, \"sorted_accesses\": {}, \
             \"random_accesses\": {}, \"tuples_scored\": {}, \"label_probes\": {}, \
             \"candidates_truncated\": {}, \"early_terminated\": {}}}",
            self.workload,
            self.query,
            self.algo,
            self.k,
            self.tuples,
            self.wall_ms,
            self.stats.p50_ms,
            self.stats.p95_ms,
            self.stats.p99_ms,
            self.stats.reps,
            self.sorted_accesses,
            self.random_accesses,
            self.tuples_scored,
            self.label_probes,
            self.candidates_truncated,
            self.early_terminated,
        )
    }
}

impl TopKWorkload {
    /// Resolves the workload's query into concrete top-k term inputs.
    pub fn term_inputs(&self) -> Vec<seda_topk::TermInput> {
        let collection = self.engine.collection();
        SedaQuery::parse(self.query_text)
            .expect("workload query parses")
            .terms
            .iter()
            .map(|t| match t.context.allowed_paths(collection) {
                Some(paths) => seda_topk::TermInput::with_paths(t.search.clone(), paths),
                None => seda_topk::TermInput::new(t.search.clone()),
            })
            .collect()
    }

    /// Measures TA at k ∈ {1, 10, 100} through a [`seda_core::SedaReader`]
    /// (the facade's steady-state serving configuration: one per-thread
    /// handle, scratch reused across queries), plus the exhaustive naive
    /// baseline at k = 10 via the raw searcher.  Each row is measured over
    /// [`bench_reps`] timed reps after one warm-up run (`wall_ms` is the
    /// best rep; the quantile columns summarise all reps).  The request is
    /// planned once outside the timed loop, so the TA and naive numbers both
    /// measure pure execution over pre-resolved term inputs.
    pub fn measure(&self) -> Vec<TopKMeasurement> {
        let mut reader = self.engine.reader();
        let mut out = Vec::new();
        for &k in &[1usize, 10, 100] {
            let request = SedaRequest::parse(&format!("TOPK {k} FOR {}", self.query_text))
                .expect("workload request parses");
            let plan = self.engine.prepare(&request).expect("workload request plans");
            let (response, stats) =
                measure_reps(|| reader.execute_plan(&plan).expect("workload executes"));
            let result = response.top_k().expect("TOPK response carries a result").clone();
            out.push(self.measurement("ta", k, stats, &result));
        }
        // The naive baseline is not part of the public facade: it exists to
        // quantify the Threshold Algorithm's early termination.
        let searcher = seda_topk::TopKSearcher::new(
            self.engine.collection(),
            self.engine.node_index(),
            self.engine.graph(),
        );
        let terms = self.term_inputs();
        let mut scratch = seda_topk::SearchScratch::new();
        let config = seda_topk::TopKConfig::with_k(10);
        let (result, stats) =
            measure_reps(|| searcher.search_naive_with(&terms, &config, &mut scratch));
        out.push(self.measurement("naive", 10, stats, &result));
        out
    }

    fn measurement(
        &self,
        algo: &'static str,
        k: usize,
        stats: RepStats,
        result: &seda_topk::TopKResult,
    ) -> TopKMeasurement {
        TopKMeasurement {
            workload: self.name,
            query: self.query_text,
            algo,
            k,
            tuples: result.tuples.len(),
            wall_ms: stats.best_ms,
            stats,
            sorted_accesses: result.stats.sorted_accesses,
            random_accesses: result.stats.random_accesses,
            tuples_scored: result.stats.tuples_scored,
            label_probes: result.stats.label_probes,
            candidates_truncated: result.stats.candidates_truncated,
            early_terminated: result.stats.early_terminated,
        }
    }
}

/// Runs `f` once for warm-up and then three timed times, returning the last
/// result together with the best wall time in milliseconds.
pub fn best_of_three<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let warmup = f();
    let mut best = f64::INFINITY;
    let mut result = warmup;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        result = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (result, best)
}

/// Wall-time statistics of one repeated measurement: the best rep (the
/// committed `wall_ms`, least affected by scheduler noise) plus latency
/// quantiles over every rep, so the reports expose tail behaviour too.
#[derive(Debug, Clone, Copy)]
pub struct RepStats {
    /// Best single-rep wall time in milliseconds.
    pub best_ms: f64,
    /// Median rep wall time in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile rep wall time in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile rep wall time in milliseconds.
    pub p99_ms: f64,
    /// Timed repetitions measured (excluding the warm-up run).
    pub reps: usize,
}

impl RepStats {
    /// Element-wise sum of two measurements, for synthetic rows composed of
    /// separately measured phases (an upper bound on the composed quantiles).
    pub fn plus(&self, other: &RepStats) -> RepStats {
        RepStats {
            best_ms: self.best_ms + other.best_ms,
            p50_ms: self.p50_ms + other.p50_ms,
            p95_ms: self.p95_ms + other.p95_ms,
            p99_ms: self.p99_ms + other.p99_ms,
            reps: self.reps.min(other.reps),
        }
    }
}

/// Timed repetitions per measurement: `BENCH_REPS` when set, else 30 (the
/// minimum for the committed p95/p99 columns to be meaningful).
pub fn bench_reps() -> usize {
    std::env::var("BENCH_REPS").ok().and_then(|v| v.parse().ok()).filter(|&r| r > 0).unwrap_or(30)
}

/// Runs `f` once for warm-up and then [`bench_reps`] timed times, feeding
/// every rep into a metrics [`Histogram`] — the same log-bucketed ladder the
/// serving path records request latencies on — and returning the last result
/// together with the rep statistics.
pub fn measure_reps<T>(mut f: impl FnMut() -> T) -> (T, RepStats) {
    let reps = bench_reps();
    let histogram = Histogram::new();
    let mut best = f64::INFINITY;
    let mut result = f();
    for _ in 0..reps {
        let t = std::time::Instant::now();
        result = f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        histogram.observe_secs(ms / 1e3);
    }
    let stats = RepStats {
        best_ms: best,
        p50_ms: histogram.quantile_ms(0.50),
        p95_ms: histogram.quantile_ms(0.95),
        p99_ms: histogram.quantile_ms(0.99),
        reps,
    };
    (result, stats)
}

/// The four standard top-k benchmark workloads: googlebase, mondial,
/// factbook and recipeml corpora with queries that exercise joins,
/// cross-document BFS, phrase scoring and deep ingredient nesting
/// respectively.
pub fn topk_workloads() -> Vec<TopKWorkload> {
    let build = |collection: Collection| {
        SedaEngine::build(collection, Registry::factbook_defaults(), EngineConfig::default())
            .expect("workload engine build")
    };
    vec![
        TopKWorkload {
            name: "googlebase",
            query_text: "(title, model) AND (price, *) AND (condition, new)",
            engine: build(
                googlebase::generate(&GoogleBaseConfig::small()).expect("generate googlebase"),
            ),
        },
        TopKWorkload {
            name: "mondial",
            query_text: "(name, *) AND (population, *)",
            engine: build(mondial::generate(&MondialConfig::small()).expect("generate mondial")),
        },
        TopKWorkload {
            name: "factbook",
            query_text: r#"(*, "United States") AND (trade_country, *) AND (percentage, *)"#,
            engine: factbook_engine(40, 3),
        },
        TopKWorkload {
            name: "recipeml",
            query_text: "(title, *) AND (item, *)",
            engine: build(recipeml::generate(&RecipeMlConfig::small()).expect("generate recipeml")),
        },
    ]
}

/// The Query 1 refinement as a facade request: every term pinned to its
/// import-partner context.  Paths absent from the corpus are dropped from
/// the refinement (small corpora may lack import partners).
pub fn query1_request(engine: &SedaEngine, statement: &str) -> SedaRequest {
    let mut text = format!("{statement} FOR {}", query1());
    for (term, path) in [
        (0usize, "/country/name"),
        (1, "/country/economy/import_partners/item/trade_country"),
        (2, "/country/economy/import_partners/item/percentage"),
    ] {
        if engine.resolve_path(path).is_ok() {
            text.push_str(&format!(" WITH {term} IN {path}"));
        }
    }
    SedaRequest::parse(&text).expect("query 1 request parses")
}

/// Runs the full Query 1 pipeline (context refinement to import partners,
/// complete results, star schema) through the request facade and returns the
/// build — the Figure 3 artefact.
pub fn run_query1_cube(engine: &SedaEngine) -> StarSchemaBuild {
    let request = query1_request(engine, "RESULTS");
    let mut reader = engine.reader();
    let response = reader.execute(&request).expect("query 1 complete-results request");
    let result = response.table().expect("RESULTS response carries a table");
    engine.build_star_schema(result, &BuildOptions::default())
}

/// One measured request → response trip through the facade, serialisable
/// into the `BENCH_pipeline.json` report.
#[derive(Debug, Clone)]
pub struct PipelineMeasurement {
    /// Workload name.
    pub workload: &'static str,
    /// Statement verb of the request (`TOPK`, `CONTEXTS`, …).
    pub statement: String,
    /// `"cold"` (parse + plan + execute per rep) or `"prepared"` (planned
    /// once via `SedaReader::prepare`; every timed rep is a warm
    /// re-execution of the compiled program).
    pub mode: &'static str,
    /// Canonical textual form of the request.
    pub request: String,
    /// Rows in the response payload.
    pub rows: usize,
    /// Best-of-reps request → response wall time in milliseconds
    /// (plan + execution).
    pub wall_ms: f64,
    /// Latency quantiles over every timed rep.
    pub stats: RepStats,
    /// Planning share of the measured run, in milliseconds.
    pub plan_ms: f64,
    /// Sorted posting-list accesses of the measured run.
    pub sorted_accesses: usize,
    /// Random-access probes of the measured run.
    pub random_accesses: usize,
    /// Label probes of the measured run.
    pub label_probes: u64,
    /// Aggregate budget work units of the measured run
    /// ([`seda_core::ExecProfile::budget_spent`]).
    pub budget_spent: u64,
    /// True when the response was degraded by a budget breach (never the
    /// case for the ungoverned benchmark runs; recorded so regressions in
    /// the governance layer are visible in the report).
    pub degraded: bool,
}

impl PipelineMeasurement {
    /// Renders the measurement as one indented JSON object (no trailing
    /// newline).
    pub fn to_json(&self, indent: &str) -> String {
        format!(
            "{indent}{{\"workload\": {:?}, \"statement\": {:?}, \"mode\": {:?}, \
             \"request\": {:?}, \
             \"rows\": {}, \"wall_ms\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"reps\": {}, \"plan_ms\": {:.3}, \
             \"sorted_accesses\": {}, \"random_accesses\": {}, \"label_probes\": {}, \
             \"budget_spent\": {}, \"degraded\": {}}}",
            self.workload,
            self.statement,
            self.mode,
            self.request,
            self.rows,
            self.wall_ms,
            self.stats.p50_ms,
            self.stats.p95_ms,
            self.stats.p99_ms,
            self.stats.reps,
            self.plan_ms,
            self.sorted_accesses,
            self.random_accesses,
            self.label_probes,
            self.budget_spent,
            self.degraded,
        )
    }
}

/// Measures the full request → response pipeline of one workload: every
/// statement of the Fig. 4 engine, [`bench_reps`] timed reps through one
/// reader handle (`wall_ms` is the best rep; the quantile columns summarise
/// all reps).
///
/// Each statement is measured in two modes.  The `"cold"` rows parse, plan
/// and execute per rep — what a one-shot request observes.  The `"prepared"`
/// rows plan once through [`seda_core::SedaReader::prepare`] and re-execute
/// the compiled program per rep with warm materialized term lists and a warm
/// compactness memo — the steady state of a repeated statement.  Cold rows
/// are emitted first, so first-match consumers of the report (`perf_smoke`)
/// keep reading the cold baseline.
///
/// The cold `CONNECTIONS` statement derives its summary from a top-k result,
/// so its row reuses the tuples of the measured `TOPK` run instead of
/// re-running the search: the row reports the *incremental* cost of
/// connection discovery (planning plus the pairwise oracle walk).  Its search
/// counters are zero by construction — that work is already accounted to the
/// `TOPK` row.  The prepared `CONNECTIONS` row runs the full compiled program
/// (search included), so the two are not directly comparable.
pub fn measure_pipeline(workload: &TopKWorkload) -> Vec<PipelineMeasurement> {
    let engine = &workload.engine;
    let mut reader = engine.reader();
    let parse = |text: String| SedaRequest::parse(&text).expect("pipeline request parses");
    let mut measure = |request: &SedaRequest| {
        let (response, stats): (SedaResponse, RepStats) =
            measure_reps(|| reader.execute(request).expect("pipeline request executes"));
        let row = PipelineMeasurement {
            workload: workload.name,
            statement: request.statement.name().to_string(),
            mode: "cold",
            request: request.render(),
            rows: response.profile.rows,
            wall_ms: stats.best_ms,
            stats,
            plan_ms: response.profile.plan_secs * 1e3,
            sorted_accesses: response.profile.sorted_accesses,
            random_accesses: response.profile.random_accesses,
            label_probes: response.profile.label_probes,
            budget_spent: response.profile.budget_spent,
            degraded: response.profile.degraded,
        };
        (response, row)
    };

    let (topk_response, topk_row) = measure(&parse(format!("TOPK 10 FOR {}", workload.query_text)));
    let mut out = vec![topk_row];
    out.push(measure(&parse(format!("CONTEXTS FOR {}", workload.query_text))).1);

    // CONNECTIONS: share the already-scored top-k tuples.
    let connections_request = parse(format!("CONNECTIONS 10 FOR {}", workload.query_text));
    let top_k = topk_response.top_k().expect("TOPK response carries a result").clone();
    let (_, plan_stats) =
        measure_reps(|| engine.prepare(&connections_request).expect("pipeline request plans"));
    let (summary, discover_stats) = measure_reps(|| engine.connection_summary(&top_k));
    let stats = plan_stats.plus(&discover_stats);
    out.push(PipelineMeasurement {
        workload: workload.name,
        statement: connections_request.statement.name().to_string(),
        mode: "cold",
        request: connections_request.render(),
        rows: summary.len(),
        wall_ms: stats.best_ms,
        stats,
        plan_ms: plan_stats.best_ms,
        sorted_accesses: 0,
        random_accesses: 0,
        label_probes: 0,
        budget_spent: 0,
        degraded: false,
    });

    if workload.name == "factbook" {
        // The complete-result / cube stages need the paper's refined
        // contexts to stay tractable, which only the factbook corpus has.
        out.push(measure(&query1_request(engine, "RESULTS")).1);
        out.push(
            measure(&query1_request(
                engine,
                "CUBE import-trade-percentage BY import-country AGG sum",
            ))
            .1,
        );
    }

    // Prepared rows: the same statements planned once and re-executed per
    // rep (the first, untimed `measure_reps` warm-up fills the compactness
    // memo, so every timed rep measures the warm steady state).
    let mut prepared_requests = vec![
        parse(format!("TOPK 10 FOR {}", workload.query_text)),
        parse(format!("CONTEXTS FOR {}", workload.query_text)),
        parse(format!("CONNECTIONS 10 FOR {}", workload.query_text)),
    ];
    if workload.name == "factbook" {
        prepared_requests.push(query1_request(engine, "RESULTS"));
        prepared_requests
            .push(query1_request(engine, "CUBE import-trade-percentage BY import-country AGG sum"));
    }
    for request in &prepared_requests {
        let mut prepared = reader.prepare(request).expect("pipeline request prepares");
        let (response, stats): (SedaResponse, RepStats) =
            measure_reps(|| prepared.execute(&mut reader).expect("prepared request executes"));
        out.push(PipelineMeasurement {
            workload: workload.name,
            statement: request.statement.name().to_string(),
            mode: "prepared",
            request: request.render(),
            rows: response.profile.rows,
            wall_ms: stats.best_ms,
            stats,
            plan_ms: response.profile.plan_secs * 1e3,
            sorted_accesses: response.profile.sorted_accesses,
            random_accesses: response.profile.random_accesses,
            label_probes: response.profile.label_probes,
            budget_spent: response.profile.budget_spent,
            degraded: response.profile.degraded,
        });
    }
    out
}

/// Renders the Figure 3(c) fact table (restricted to the United States rows
/// for readability).
pub fn render_query1_fact_table(build: &StarSchemaBuild, limit: usize) -> String {
    let mut out = String::from(
        "Fact table (import-trade-percentage): country, year, import-country, percentage\n",
    );
    if let Some(fact) = build.schema.fact("import-trade-percentage") {
        for row in fact.rows.iter().filter(|r| r.dimensions[0] == "United States").take(limit) {
            out.push_str(&format!(
                "  {:<20} {:<6} {:<15} {}\n",
                row.dimensions[0], row.dimensions[1], row.dimensions[2], row.measures[0]
            ));
        }
        out.push_str(&format!("  ({} rows total)\n", fact.len()));
    } else {
        out.push_str("  <no fact table derived>\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds_at_small_scale() {
        let rows = table1(0.1);
        assert_eq!(rows.len(), 4);
        let by_name = |n: &str| rows.iter().find(|r| r.dataset.contains(n)).unwrap().clone();
        // RecipeML collapses to 3 dataguides at any scale.
        assert_eq!(by_name("RecipeML").dataguides, 3);
        // Google Base and Mondial reduce by an order of magnitude or more.
        assert!(by_name("Google").dataguides * 10 <= by_name("Google").documents);
        assert!(by_name("Mondial").dataguides * 10 <= by_name("Mondial").documents);
        // The Factbook reduces far less (heterogeneous corpus).
        let fb = by_name("Factbook");
        assert!(fb.dataguides * 2 >= fb.documents / 10, "factbook stays heterogeneous");
        let rendered = render_table1(&rows);
        assert!(rendered.contains("RecipeML"));
    }

    #[test]
    fn query1_cube_reproduces_fixed_facts() {
        let engine = factbook_engine(20, 3);
        let build = run_query1_cube(&engine);
        let fact = build.schema.fact("import-trade-percentage").expect("fact table");
        let rendered = render_query1_fact_table(&build, 50);
        assert!(rendered.contains("China"));
        assert!(fact.dimensions_form_key());
    }

    #[test]
    fn build_profiles_surface_the_shard_merge_split() {
        let collection = factbook::generate(&FactbookConfig::paper_scaled(20, 3)).unwrap();
        let (sequential, parallel) = build_profiles(&collection, 4);
        assert_eq!(sequential.parallelism, 1);
        assert_eq!(sequential.shards, 1);
        assert_eq!(sequential.merge_secs(), 0.0);
        assert_eq!(parallel.parallelism, 4);
        assert_eq!(parallel.shards, parallel.documents);
        assert!(parallel.merge_secs() > 0.0);
        assert_eq!(sequential.documents, parallel.documents);
        let rendered = render_build_comparison(&sequential, &parallel);
        assert!(rendered.contains("speedup"));
    }

    #[test]
    fn pipeline_rows_carry_the_execution_mode() {
        let stats = RepStats { best_ms: 0.1, p50_ms: 0.1, p95_ms: 0.1, p99_ms: 0.1, reps: 3 };
        let row = PipelineMeasurement {
            workload: "w",
            statement: "TOPK".to_string(),
            mode: "prepared",
            request: "r".to_string(),
            rows: 1,
            wall_ms: 0.1,
            stats,
            plan_ms: 0.0,
            sorted_accesses: 0,
            random_accesses: 0,
            label_probes: 0,
            budget_spent: 0,
            degraded: false,
        };
        assert!(row.to_json("").contains("\"mode\": \"prepared\""));
    }

    #[test]
    fn measure_reps_reports_ordered_quantiles() {
        let (value, stats) = measure_reps(|| 42u32);
        assert_eq!(value, 42);
        assert_eq!(stats.reps, bench_reps());
        assert!(stats.best_ms >= 0.0);
        assert!(stats.p50_ms <= stats.p95_ms);
        assert!(stats.p95_ms <= stats.p99_ms);
        let doubled = stats.plus(&stats);
        assert!(doubled.p99_ms >= stats.p99_ms);
        assert_eq!(doubled.reps, stats.reps);
    }

    #[test]
    fn factbook_stats_capture_the_long_tail() {
        let collection = factbook::generate(&FactbookConfig::paper_scaled(40, 3)).unwrap();
        let stats = factbook_stats(&collection);
        assert_eq!(stats.documents, 120);
        assert!(stats.distinct_paths > 100);
        assert!(stats.united_states_contexts >= 3);
        assert!(stats.country_documents as f64 >= 0.9 * stats.documents as f64);
        assert!(stats.refugees_documents < stats.documents / 2);
    }
}
