//! # seda-topk
//!
//! The top-k search unit of SEDA (Sec. 4): a Threshold-Algorithm/rank-join
//! search over the full-text node index that scores candidate result tuples by
//! content relevance *and* structural compactness of the connecting subgraph,
//! with early termination.  A naive exhaustive baseline is included for
//! validation and benchmarking.
//!
//! ```
//! use seda_datagraph::{DataGraph, GraphConfig};
//! use seda_textindex::{FullTextQuery, NodeIndex};
//! use seda_topk::{TermInput, TopKConfig, TopKSearcher};
//! use seda_xmlstore::parse_collection;
//!
//! let collection = parse_collection(vec![
//!     ("us.xml", "<country><name>United States</name><year>2006</year></country>"),
//! ]).unwrap();
//! let index = NodeIndex::build(&collection);
//! let graph = DataGraph::build(&collection, &GraphConfig::default());
//! let searcher = TopKSearcher::new(&collection, &index, &graph);
//! let result = searcher.search(
//!     &[TermInput::new(FullTextQuery::phrase("United States"))],
//!     &TopKConfig::with_k(3),
//! );
//! assert_eq!(result.tuples.len(), 1);
//! ```

pub mod audit;
pub mod searcher;
pub mod types;

pub use searcher::{SearchScratch, TopKSearcher};
pub use types::{
    LimitBreach, MaterializedTerms, ResultTuple, SearchLimits, SearchStats, SearchStrategy,
    TermInput, TopKConfig, TopKResult, TupleScoreCache,
};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::{TermInput, TopKConfig, TopKSearcher};
    use seda_datagraph::{DataGraph, GraphConfig};
    use seda_textindex::{FullTextQuery, NodeIndex};
    use seda_xmlstore::Collection;

    /// A small random two-level collection of `docs` documents, each with a
    /// few leaves drawn from a tiny vocabulary.
    fn random_collection(words: &[u8]) -> Collection {
        let mut c = Collection::new();
        let vocab = ["alpha", "beta", "gamma", "delta"];
        for (i, chunk) in words.chunks(3).enumerate() {
            c.add_document(format!("d{i}.xml"), |b| {
                b.start_element("doc")?;
                for (j, &w) in chunk.iter().enumerate() {
                    b.leaf(&format!("field{j}"), vocab[w as usize % vocab.len()])?;
                }
                b.end_element()?;
                Ok(())
            })
            .unwrap();
        }
        c
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The Threshold Algorithm returns exactly the same top-k scores as
        /// the exhaustive baseline on arbitrary small collections.
        #[test]
        fn ta_agrees_with_naive(words in proptest::collection::vec(0u8..4, 3..18), k in 1usize..6) {
            let c = random_collection(&words);
            let index = NodeIndex::build(&c);
            let graph = DataGraph::build(&c, &GraphConfig::default());
            let searcher = TopKSearcher::new(&c, &index, &graph);
            let terms = vec![
                TermInput::new(FullTextQuery::keywords("alpha")),
                TermInput::new(FullTextQuery::Any),
            ];
            let config = TopKConfig::with_k(k);
            let ta = searcher.search(&terms, &config);
            let naive = searcher.search_naive(&terms, &config);
            prop_assert_eq!(ta.tuples.len(), naive.tuples.len());
            for (a, b) in ta.tuples.iter().zip(naive.tuples.iter()) {
                prop_assert!((a.score - b.score).abs() < 1e-9);
            }
        }

        /// Results are sorted by non-increasing score and contain at most k
        /// tuples, each with one node per term and positive compactness.
        #[test]
        fn result_invariants(words in proptest::collection::vec(0u8..4, 3..18), k in 1usize..6) {
            let c = random_collection(&words);
            let index = NodeIndex::build(&c);
            let graph = DataGraph::build(&c, &GraphConfig::default());
            let searcher = TopKSearcher::new(&c, &index, &graph);
            let terms = vec![
                TermInput::new(FullTextQuery::keywords("beta")),
                TermInput::new(FullTextQuery::Any),
            ];
            let result = searcher.search(&terms, &TopKConfig::with_k(k));
            prop_assert!(result.tuples.len() <= k);
            for w in result.tuples.windows(2) {
                prop_assert!(w[0].score >= w[1].score);
            }
            for t in &result.tuples {
                prop_assert_eq!(t.nodes.len(), 2);
                prop_assert!(t.compactness > 0.0);
            }
        }
    }
}
