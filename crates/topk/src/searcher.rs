//! The Threshold-Algorithm top-k search unit (Sec. 4).
//!
//! SEDA "employs a top-k search algorithm based on the family of threshold
//! algorithms (TA) [Fagin et al.]: it retrieves the results from full-text
//! indexes and calculates top answers according to a ranking function which
//! takes into account both the content score as well as the structural
//! properties of the matched nodes".
//!
//! The implementation is a rank-join-style TA:
//!
//! * each query term contributes one posting list sorted by descending
//!   content score (sorted access on the [`seda_textindex::NodeIndex`]);
//! * lists are consumed round-robin; every newly seen node is joined with the
//!   nodes already seen for the other terms, candidate tuples are checked for
//!   connectivity in the data graph and scored
//!   `content_weight · Σ content + structure_weight · compactness`;
//! * the algorithm maintains the classic rank-join threshold
//!   `max_i ( frontier_i + Σ_{j≠i} best_j )` plus the maximal structural
//!   bonus, and stops as soon as `k` buffered tuples score at least the
//!   threshold — the early-termination property the paper relies on for
//!   interactive response times.

use std::collections::{BinaryHeap, HashMap};

use seda_datagraph::{compactness, DataGraph};
use seda_textindex::{NodeIndex, ScoredNode};
use seda_xmlstore::{Collection, DocId, NodeId};

use crate::types::{ResultTuple, SearchStats, TermInput, TopKConfig, TopKResult};

/// Union-find over documents connected by non-tree edges.  A result tuple can
/// only be connected (Definition 4) if all of its nodes live in documents of
/// the same component, so both searchers prune combinations across components
/// before paying for a breadth-first connectivity check.
struct DocComponents {
    component: HashMap<DocId, u32>,
}

impl DocComponents {
    fn build(collection: &Collection, graph: &DataGraph) -> Self {
        let mut parent: HashMap<DocId, DocId> =
            collection.documents().map(|d| (d.id, d.id)).collect();
        fn find(parent: &mut HashMap<DocId, DocId>, mut x: DocId) -> DocId {
            while parent[&x] != x {
                let grand = parent[&parent[&x]];
                parent.insert(x, grand);
                x = grand;
            }
            x
        }
        for edge in graph.edges() {
            let a = find(&mut parent, edge.from.doc);
            let b = find(&mut parent, edge.to.doc);
            if a != b {
                parent.insert(a, b);
            }
        }
        let docs: Vec<DocId> = collection.documents().map(|d| d.id).collect();
        let mut component = HashMap::with_capacity(docs.len());
        let mut ids: HashMap<DocId, u32> = HashMap::new();
        let mut next = 0u32;
        for doc in docs {
            let root = find(&mut parent, doc);
            let id = *ids.entry(root).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            component.insert(doc, id);
        }
        DocComponents { component }
    }

    fn of(&self, doc: DocId) -> u32 {
        self.component.get(&doc).copied().unwrap_or(u32::MAX)
    }

    fn same(&self, a: NodeId, b: NodeId) -> bool {
        self.of(a.doc) == self.of(b.doc)
    }
}

/// Top-k searcher over a collection, its node index and its data graph.
pub struct TopKSearcher<'a> {
    collection: &'a Collection,
    index: &'a NodeIndex,
    graph: &'a DataGraph,
}

/// Max-heap entry ordered by combined score.
#[derive(Debug)]
struct HeapTuple(ResultTuple);

impl PartialEq for HeapTuple {
    fn eq(&self, other: &Self) -> bool {
        self.0.score == other.0.score && self.0.nodes == other.0.nodes
    }
}
impl Eq for HeapTuple {}
impl PartialOrd for HeapTuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapTuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .score
            .partial_cmp(&other.0.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.0.nodes.cmp(&self.0.nodes))
    }
}

impl<'a> TopKSearcher<'a> {
    /// Creates a searcher over prebuilt structures.
    pub fn new(collection: &'a Collection, index: &'a NodeIndex, graph: &'a DataGraph) -> Self {
        TopKSearcher { collection, index, graph }
    }

    fn term_list(&self, term: &TermInput) -> Vec<ScoredNode> {
        match &term.allowed_paths {
            Some(paths) => self.index.evaluate_in_paths(&term.query, paths),
            None => self.index.evaluate(&term.query),
        }
    }

    /// Scores one candidate tuple, returning `None` for disconnected tuples.
    fn score_tuple(
        &self,
        nodes: &[NodeId],
        content: f64,
        config: &TopKConfig,
        stats: &mut SearchStats,
    ) -> Option<ResultTuple> {
        stats.tuples_scored += 1;
        let compact = compactness(self.graph, self.collection, nodes, config.max_depth);
        if compact == 0.0 && nodes.len() > 1 {
            stats.tuples_disconnected += 1;
            return None;
        }
        let score = config.content_weight * content + config.structure_weight * compact;
        Some(ResultTuple {
            nodes: nodes.to_vec(),
            content_score: content,
            compactness: compact,
            score,
        })
    }

    /// Runs the Threshold-Algorithm search.
    pub fn search(&self, terms: &[TermInput], config: &TopKConfig) -> TopKResult {
        let mut stats = SearchStats::default();
        if terms.is_empty() {
            return TopKResult { tuples: Vec::new(), stats };
        }

        // Sorted-access lists, one per term.
        let lists: Vec<Vec<ScoredNode>> = terms.iter().map(|t| self.term_list(t)).collect();
        if lists.iter().any(Vec::is_empty) {
            // Some term has no match at all: the result is empty (Definition 4
            // requires every term to be satisfied).
            return TopKResult { tuples: Vec::new(), stats };
        }
        let best_scores: Vec<f64> = lists.iter().map(|l| l[0].score).collect();
        let m = lists.len();
        let components = DocComponents::build(self.collection, self.graph);

        // Seen prefixes per list.
        let mut seen: Vec<Vec<ScoredNode>> = vec![Vec::new(); m];
        let mut positions = vec![0usize; m];
        let mut buffer: BinaryHeap<HeapTuple> = BinaryHeap::new();
        let mut exhausted = false;

        'outer: loop {
            let mut advanced = false;
            for i in 0..m {
                let pos = positions[i];
                if pos >= lists[i].len() {
                    continue;
                }
                positions[i] += 1;
                advanced = true;
                stats.sorted_accesses += 1;
                let new_node = lists[i][pos].clone();

                // Join the new node with every combination of already-seen
                // nodes from the other lists.
                let mut combos: Vec<(Vec<NodeId>, f64)> = vec![(Vec::new(), 0.0)];
                for (j, seen_j) in seen.iter().enumerate() {
                    let mut next = Vec::new();
                    if j == i {
                        for (nodes, content) in &combos {
                            let mut nodes = nodes.clone();
                            nodes.push(new_node.node);
                            next.push((nodes, content + new_node.score));
                        }
                    } else {
                        for (nodes, content) in &combos {
                            for candidate in seen_j {
                                // Component pruning: a tuple spanning two
                                // disconnected document components can never
                                // be connected, so skip it before the BFS.
                                if !components.same(candidate.node, new_node.node) {
                                    continue;
                                }
                                stats.random_accesses += 1;
                                let mut nodes = nodes.clone();
                                nodes.push(candidate.node);
                                next.push((nodes, content + candidate.score));
                            }
                        }
                    }
                    combos = next;
                    if combos.is_empty() {
                        break;
                    }
                    if stats.tuples_scored + combos.len() > config.candidate_limit {
                        combos.truncate(config.candidate_limit.saturating_sub(stats.tuples_scored));
                    }
                }
                for (nodes, content) in combos {
                    if nodes.len() != m {
                        continue;
                    }
                    if let Some(tuple) = self.score_tuple(&nodes, content, config, &mut stats) {
                        buffer.push(HeapTuple(tuple));
                    }
                    if stats.tuples_scored >= config.candidate_limit {
                        break 'outer;
                    }
                }
                seen[i].push(new_node);

                // Threshold test: an unseen combination can score at most
                //   max_i ( frontier_i + Σ_{j≠i} best_j )
                // in content, plus the maximal structural bonus.
                let frontier: Vec<f64> = (0..m)
                    .map(|j| {
                        if positions[j] == 0 {
                            best_scores[j]
                        } else if positions[j] <= lists[j].len() {
                            lists[j][positions[j] - 1].score
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let mut threshold_content = f64::NEG_INFINITY;
                for (j, &front) in frontier.iter().enumerate().take(m) {
                    let mut bound = front;
                    for (l, best) in best_scores.iter().enumerate() {
                        if l != j {
                            bound += best;
                        }
                    }
                    threshold_content = threshold_content.max(bound);
                }
                let threshold =
                    config.content_weight * threshold_content + config.structure_weight * 1.0;

                if buffer.len() >= config.k {
                    let kth_score = kth_best_score(&buffer, config.k);
                    if kth_score >= threshold {
                        stats.early_terminated = true;
                        break 'outer;
                    }
                }
            }
            if !advanced {
                exhausted = true;
                break;
            }
        }
        let _ = exhausted;

        let mut tuples: Vec<ResultTuple> =
            buffer.into_sorted_vec().into_iter().map(|h| h.0).collect();
        // `into_sorted_vec` is ascending; we want best-first.
        tuples.reverse();
        tuples.dedup_by(|a, b| a.nodes == b.nodes);
        tuples.truncate(config.k);
        TopKResult { tuples, stats }
    }

    /// Exhaustive baseline: enumerates every combination of matching nodes,
    /// scores them all and returns the best `k`.  Used to validate the TA
    /// implementation and as the comparison point in the benchmark harness.
    pub fn search_naive(&self, terms: &[TermInput], config: &TopKConfig) -> TopKResult {
        let mut stats = SearchStats::default();
        if terms.is_empty() {
            return TopKResult { tuples: Vec::new(), stats };
        }
        let lists: Vec<Vec<ScoredNode>> = terms.iter().map(|t| self.term_list(t)).collect();
        if lists.iter().any(Vec::is_empty) {
            return TopKResult { tuples: Vec::new(), stats };
        }
        stats.sorted_accesses = lists.iter().map(Vec::len).sum();
        let components = DocComponents::build(self.collection, self.graph);

        let mut combos: Vec<(Vec<NodeId>, f64)> = vec![(Vec::new(), 0.0)];
        for list in &lists {
            let mut next = Vec::with_capacity(combos.len() * list.len());
            for (nodes, content) in &combos {
                for candidate in list {
                    if let Some(&first) = nodes.first() {
                        if !components.same(first, candidate.node) {
                            continue;
                        }
                    }
                    let mut nodes = nodes.clone();
                    nodes.push(candidate.node);
                    next.push((nodes, content + candidate.score));
                    if next.len() > config.candidate_limit {
                        break;
                    }
                }
            }
            combos = next;
        }

        let mut tuples: Vec<ResultTuple> = combos
            .into_iter()
            .filter_map(|(nodes, content)| self.score_tuple(&nodes, content, config, &mut stats))
            .collect();
        tuples.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.nodes.cmp(&b.nodes))
        });
        tuples.truncate(config.k);
        TopKResult { tuples, stats }
    }
}

fn kth_best_score(buffer: &BinaryHeap<HeapTuple>, k: usize) -> f64 {
    // BinaryHeap gives no direct k-th access; clone the scores (buffer stays
    // small: it holds scored tuples only).
    let mut scores: Vec<f64> = buffer.iter().map(|h| h.0.score).collect();
    scores.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    scores.get(k - 1).copied().unwrap_or(f64::NEG_INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_datagraph::GraphConfig;
    use seda_textindex::FullTextQuery;
    use seda_xmlstore::parse_collection;

    fn factbook_fragment() -> Collection {
        parse_collection(vec![
            (
                "us2006.xml",
                r#"<country><name>United States</name><year>2006</year>
                     <economy><GDP_ppp>12.31T</GDP_ppp>
                       <import_partners>
                         <item><trade_country>China</trade_country><percentage>15</percentage></item>
                         <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                       </import_partners>
                     </economy></country>"#,
            ),
            (
                "mexico2003.xml",
                r#"<country><name>Mexico</name><year>2003</year>
                     <economy><GDP>924.4B</GDP>
                       <export_partners>
                         <item><trade_country>United States</trade_country><percentage>70.6</percentage></item>
                       </export_partners>
                     </economy></country>"#,
            ),
            (
                "canada2006.xml",
                r#"<country><name>Canada</name><year>2006</year>
                     <economy><GDP_ppp>1.1T</GDP_ppp></economy></country>"#,
            ),
        ])
        .unwrap()
    }

    fn searcher_parts(c: &Collection) -> (NodeIndex, DataGraph) {
        (NodeIndex::build(c), DataGraph::build(c, &GraphConfig::default()))
    }

    fn query1_terms(c: &Collection) -> Vec<TermInput> {
        // Query 1: (∗, "United States") ∧ (trade_country, ∗) ∧ (percentage, ∗)
        let tc_paths: Vec<_> = c
            .paths()
            .iter()
            .filter(|(_, p)| {
                p.leaf().map(|l| c.symbols().resolve(l) == "trade_country").unwrap_or(false)
            })
            .map(|(id, _)| id)
            .collect();
        let pct_paths: Vec<_> = c
            .paths()
            .iter()
            .filter(|(_, p)| {
                p.leaf().map(|l| c.symbols().resolve(l) == "percentage").unwrap_or(false)
            })
            .map(|(id, _)| id)
            .collect();
        vec![
            TermInput::new(FullTextQuery::phrase("United States")),
            TermInput::with_paths(FullTextQuery::Any, tc_paths),
            TermInput::with_paths(FullTextQuery::Any, pct_paths),
        ]
    }

    #[test]
    fn query1_returns_connected_tuples_only() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let result = searcher.search(&query1_terms(&c), &TopKConfig::with_k(5));
        assert!(!result.tuples.is_empty());
        for tuple in &result.tuples {
            assert_eq!(tuple.nodes.len(), 3);
            assert!(tuple.compactness > 0.0, "tuples must be connected");
            // All three nodes of a connected tuple live in the same document
            // in this fragment (no cross-document edges).
            let doc = tuple.nodes[0].doc;
            assert!(tuple.nodes.iter().all(|n| n.doc == doc));
        }
    }

    #[test]
    fn tight_tuples_rank_above_loose_ones() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let result = searcher.search(&query1_terms(&c), &TopKConfig::with_k(10));
        // The best US tuple must pair China with 15 or Canada with 16.9 (the
        // same-item pairing), not a cross-item combination.
        let best = &result.tuples[0];
        let contents: Vec<String> = best.nodes.iter().map(|&n| c.content(n).unwrap()).collect();
        let same_item = (contents.contains(&"China".to_string())
            && contents.contains(&"15".to_string()))
            || (contents.contains(&"Canada".to_string()) && contents.contains(&"16.9".to_string()))
            || (contents.contains(&"United States".to_string())
                && contents.contains(&"70.6".to_string()));
        assert!(
            same_item,
            "best tuple should pair a trade country with its own percentage: {contents:?}"
        );
    }

    #[test]
    fn ta_matches_naive_baseline() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let config = TopKConfig::with_k(4);
        let terms = query1_terms(&c);
        let ta = searcher.search(&terms, &config);
        let naive = searcher.search_naive(&terms, &config);
        assert_eq!(ta.tuples.len(), naive.tuples.len());
        for (a, b) in ta.tuples.iter().zip(naive.tuples.iter()) {
            assert!(
                (a.score - b.score).abs() < 1e-9,
                "TA and naive disagree: {} vs {}",
                a.score,
                b.score
            );
        }
    }

    #[test]
    fn k_limits_the_result_size() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);
        let one = searcher.search(&terms, &TopKConfig::with_k(1));
        assert_eq!(one.tuples.len(), 1);
        let many = searcher.search(&terms, &TopKConfig::with_k(50));
        assert!(many.tuples.len() >= one.tuples.len());
        // Results are sorted best-first.
        for w in many.tuples.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn empty_term_list_and_unmatchable_terms() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        assert!(searcher.search(&[], &TopKConfig::default()).tuples.is_empty());
        let impossible = vec![
            TermInput::new(FullTextQuery::keywords("zzzunknownzzz")),
            TermInput::new(FullTextQuery::Any),
        ];
        assert!(searcher.search(&impossible, &TopKConfig::default()).tuples.is_empty());
    }

    #[test]
    fn single_term_queries_degenerate_to_ranked_retrieval() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = vec![TermInput::new(FullTextQuery::phrase("United States"))];
        let result = searcher.search(&terms, &TopKConfig::with_k(10));
        assert_eq!(result.tuples.len(), 2, "US appears as a country name and as a trade partner");
        for t in &result.tuples {
            assert_eq!(t.compactness, 1.0, "singleton tuples are maximally compact");
        }
    }

    #[test]
    fn context_restriction_filters_terms() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let name_path = c.paths().get_str(c.symbols(), "/country/name").unwrap();
        let terms =
            vec![TermInput::with_paths(FullTextQuery::phrase("United States"), vec![name_path])];
        let result = searcher.search(&terms, &TopKConfig::default());
        assert_eq!(result.tuples.len(), 1);
        assert_eq!(c.context_string(result.tuples[0].nodes[0]).unwrap(), "/country/name");
    }

    #[test]
    fn stats_record_work_and_early_termination_does_less_of_it() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);
        let small_k = searcher.search(&terms, &TopKConfig::with_k(1));
        let naive = searcher.search_naive(&terms, &TopKConfig::with_k(1));
        assert!(small_k.stats.sorted_accesses > 0);
        assert!(small_k.stats.tuples_scored <= naive.stats.tuples_scored);
    }
}
