//! The Threshold-Algorithm top-k search unit (Sec. 4).
//!
//! SEDA "employs a top-k search algorithm based on the family of threshold
//! algorithms (TA) [Fagin et al.]: it retrieves the results from full-text
//! indexes and calculates top answers according to a ranking function which
//! takes into account both the content score as well as the structural
//! properties of the matched nodes".
//!
//! The implementation is a rank-join-style TA:
//!
//! * each query term contributes one posting list sorted by descending
//!   content score (sorted access on the [`seda_textindex::NodeIndex`]);
//! * lists are consumed round-robin; every newly seen node is joined with the
//!   nodes already seen for the other terms, candidate tuples are checked for
//!   connectivity in the data graph and scored
//!   `content_weight · Σ content + structure_weight · compactness`;
//! * the algorithm maintains the classic rank-join threshold
//!   `max_i ( frontier_i + Σ_{j≠i} best_j )` plus the maximal structural
//!   bonus, and stops as soon as `k` buffered tuples score at least the
//!   threshold — the early-termination property the paper relies on for
//!   interactive response times.
//!
//! # Allocation discipline
//!
//! The join loop performs no per-candidate allocation: candidate tuples live
//! in two flat ping-pong arenas (`m`-strided `NodeId` runs plus a parallel
//! score array), connectivity/compactness checks are label intersections
//! against the graph's precomputed connectivity oracle (probes counted
//! through a reusable [`TraversalScratch`]), and document-component pruning
//! reads the components cached on the [`DataGraph`] at build time.  Callers that issue many queries should hold a
//! [`SearchScratch`] and use [`TopKSearcher::search_with`] /
//! [`TopKSearcher::search_naive_with`] so even the posting-list buffers are
//! reused across queries.

use std::collections::BinaryHeap;

use seda_datagraph::{compactness_with, DataGraph, TraversalScratch};
use seda_textindex::{NodeIndex, ScoredNode};
use seda_xmlstore::{Collection, NodeId};

use crate::types::{
    LimitBreach, MaterializedTerms, ResultTuple, SearchLimits, SearchStats, SearchStrategy,
    TermInput, TopKConfig, TopKResult, TupleScoreCache,
};

/// Reusable buffers of the top-k search: posting lists, the flat candidate
/// arenas of the join loop and the traversal scratch of the connectivity
/// checks.
///
/// A scratch serves any number of searches over any engine; reuse it across
/// queries to keep the read path allocation-free once the buffers have grown
/// to their working size.
#[derive(Debug, Default)]
pub struct SearchScratch {
    pub(crate) traversal: TraversalScratch,
    /// Per-term sorted-access lists (reused; only the first `m` are live).
    lists: Vec<Vec<ScoredNode>>,
    /// Candidate buffer handed to [`NodeIndex::evaluate_into`].
    eval_candidates: Vec<NodeId>,
    /// Current combo arena: `stride`-sized `NodeId` runs.
    combo_nodes: Vec<NodeId>,
    /// Content score per combo (parallel to `combo_nodes` runs).
    combo_scores: Vec<f64>,
    /// Next-stage combo arena (ping-pong partner).
    next_nodes: Vec<NodeId>,
    next_scores: Vec<f64>,
    /// The `k` best scores buffered so far, kept sorted descending so the
    /// threshold test reads the k-th best in O(1) instead of re-sorting the
    /// whole candidate buffer per sorted access.
    pub(crate) kth_scores: Vec<f64>,
    positions: Vec<usize>,
    best_scores: Vec<f64>,
}

impl SearchScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// The traversal scratch, for callers that interleave their own graph
    /// traversals (connectivity checks, shortest paths) with searches over
    /// the same reusable buffers — e.g. a per-thread reader handle serving a
    /// whole query pipeline from one allocation-free scratch.
    pub fn traversal_mut(&mut self) -> &mut TraversalScratch {
        &mut self.traversal
    }
}

/// Top-k searcher over a collection, its node index and its data graph.
pub struct TopKSearcher<'a> {
    collection: &'a Collection,
    index: &'a NodeIndex,
    graph: &'a DataGraph,
}

/// Max-heap entry ordered by combined score.
#[derive(Debug)]
struct HeapTuple(ResultTuple);

impl PartialEq for HeapTuple {
    fn eq(&self, other: &Self) -> bool {
        self.0.score == other.0.score && self.0.nodes == other.0.nodes
    }
}
impl Eq for HeapTuple {}
impl PartialOrd for HeapTuple {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapTuple {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .score
            .partial_cmp(&other.0.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.0.nodes.cmp(&self.0.nodes))
    }
}

/// Scores one candidate tuple, returning `None` for disconnected tuples.
fn score_tuple(
    graph: &DataGraph,
    traversal: &mut TraversalScratch,
    nodes: &[NodeId],
    content: f64,
    config: &TopKConfig,
    stats: &mut SearchStats,
) -> Option<ResultTuple> {
    stats.tuples_scored += 1;
    let compact = compactness_with(graph, traversal, nodes, config.max_depth);
    if compact == 0.0 && nodes.len() > 1 {
        stats.tuples_disconnected += 1;
        return None;
    }
    let score = config.content_weight * content + config.structure_weight * compact;
    Some(ResultTuple { nodes: nodes.to_vec(), content_score: content, compactness: compact, score })
}

impl<'a> TopKSearcher<'a> {
    /// Creates a searcher over prebuilt structures.  Document components are
    /// read from the graph (a build-time artifact), never recomputed here.
    pub fn new(collection: &'a Collection, index: &'a NodeIndex, graph: &'a DataGraph) -> Self {
        TopKSearcher { collection, index, graph }
    }

    /// The collection the searcher works over.
    pub fn collection(&self) -> &Collection {
        self.collection
    }

    /// Fills `scratch.lists[..terms.len()]` with the per-term sorted-access
    /// lists, reusing the list buffers.
    fn fill_term_lists(&self, terms: &[TermInput], scratch: &mut SearchScratch) {
        while scratch.lists.len() < terms.len() {
            scratch.lists.push(Vec::new());
        }
        for (term, list) in terms.iter().zip(scratch.lists.iter_mut()) {
            self.index.evaluate_into(
                &term.query,
                term.allowed_paths.as_deref(),
                &mut scratch.eval_candidates,
                list,
            );
        }
    }

    /// Runs the Threshold-Algorithm search with a fresh scratch.
    ///
    /// Convenience wrapper over [`TopKSearcher::search_with`]; callers that
    /// search repeatedly should reuse a [`SearchScratch`].
    pub fn search(&self, terms: &[TermInput], config: &TopKConfig) -> TopKResult {
        self.search_with(terms, config, &mut SearchScratch::new())
    }

    /// Runs the Threshold-Algorithm search, reusing `scratch` for every
    /// buffer the join loop needs.
    ///
    /// At most [`TopKConfig::candidate_limit`] candidate tuples are scored;
    /// when the limit clips the candidate set, the number of dropped
    /// combinations is recorded in [`SearchStats::candidates_truncated`].
    pub fn search_with(
        &self,
        terms: &[TermInput],
        config: &TopKConfig,
        scratch: &mut SearchScratch,
    ) -> TopKResult {
        self.search_governed(terms, config, &SearchLimits::unlimited(), scratch).0
    }

    /// [`TopKSearcher::search_with`] under per-request resource ceilings.
    ///
    /// The [`SearchLimits`] ceilings are checked at the loop's existing
    /// counter sites (sorted access, random access, tuple scoring, label
    /// probes) plus a per-sorted-access deadline/cancellation test.  On a
    /// breach the loop stops and returns the top-k prefix computed so far —
    /// exact over the combinations enumerated up to the stop, thanks to TA's
    /// monotone threshold — together with the tripped [`LimitBreach`];
    /// `None` means the search ran to its normal termination.
    pub fn search_governed(
        &self,
        terms: &[TermInput],
        config: &TopKConfig,
        limits: &SearchLimits,
        scratch: &mut SearchScratch,
    ) -> (TopKResult, Option<LimitBreach>) {
        self.search_governed_with(terms, config, limits, scratch, None, SearchStrategy::Join)
    }

    /// [`TopKSearcher::search_governed`] with the optimizer's knobs: an
    /// optional compactness memo and the compiled [`SearchStrategy`].  The
    /// strategy only short-circuits when it reproduces the join loop exactly
    /// (one term, candidate limit ≥ k), so results and stats always match
    /// the plain governed search.
    pub fn search_governed_with(
        &self,
        terms: &[TermInput],
        config: &TopKConfig,
        limits: &SearchLimits,
        scratch: &mut SearchScratch,
        cache: Option<&mut TupleScoreCache>,
        strategy: SearchStrategy,
    ) -> (TopKResult, Option<LimitBreach>) {
        if terms.is_empty() || config.k == 0 {
            return (TopKResult { tuples: Vec::new(), stats: SearchStats::default() }, None);
        }
        self.fill_term_lists(terms, scratch);
        if strategy == SearchStrategy::SingleTermScan
            && terms.len() == 1
            && config.candidate_limit >= config.k
        {
            return self.scan_single_term(config, limits, scratch);
        }
        self.search_filled(terms.len(), config, limits, scratch, cache)
    }

    /// Materialises the per-term sorted-access lists once, for reuse across
    /// executions of a prepared statement.
    ///
    /// The returned lists are exactly what [`TopKSearcher::search_governed`]
    /// would fill into its scratch, so
    /// [`TopKSearcher::search_materialized_governed`] over them is equivalent
    /// to a fresh search over the same terms.
    pub fn materialize_terms(&self, terms: &[TermInput]) -> MaterializedTerms {
        let mut candidates = Vec::new();
        let mut lists = Vec::with_capacity(terms.len());
        for term in terms {
            let mut list = Vec::new();
            self.index.evaluate_into(
                &term.query,
                term.allowed_paths.as_deref(),
                &mut candidates,
                &mut list,
            );
            lists.push(list);
        }
        MaterializedTerms::from_lists(lists)
    }

    /// Runs the governed search over pre-materialised term lists, optionally
    /// memoising compactness scores in `cache` and short-circuiting through
    /// `strategy`.
    ///
    /// The lists are copied into the scratch buffers (reusing their capacity)
    /// and the identical join loop runs over them, so results are equal to
    /// [`TopKSearcher::search_governed`] over the terms the lists were
    /// materialised from.  With [`SearchStrategy::SingleTermScan`] and exactly
    /// one list, the degenerate single-term case is answered by a direct scan
    /// of the sorted prefix (same tuples, same termination behaviour, no join
    /// machinery).
    pub fn search_materialized_governed(
        &self,
        materialized: &MaterializedTerms,
        config: &TopKConfig,
        limits: &SearchLimits,
        scratch: &mut SearchScratch,
        cache: Option<&mut TupleScoreCache>,
        strategy: SearchStrategy,
    ) -> (TopKResult, Option<LimitBreach>) {
        let m = materialized.lists.len();
        if m == 0 || config.k == 0 {
            return (TopKResult { tuples: Vec::new(), stats: SearchStats::default() }, None);
        }
        while scratch.lists.len() < m {
            scratch.lists.push(Vec::new());
        }
        for (src, dst) in materialized.lists.iter().zip(scratch.lists.iter_mut()) {
            dst.clone_from(src);
        }
        if strategy == SearchStrategy::SingleTermScan
            && m == 1
            && config.candidate_limit >= config.k
        {
            return self.scan_single_term(config, limits, scratch);
        }
        self.search_filled(m, config, limits, scratch, cache)
    }

    /// Degenerate single-term search: with one list the Threshold Algorithm
    /// consumes exactly `min(k, len)` sorted accesses (after the k-th access
    /// the threshold equals the k-th buffered score), every singleton tuple
    /// is maximally compact (`1.0`, zero oracle probes) and no joins happen.
    /// This scan reproduces that behaviour — tuples, stats and breach
    /// semantics — without the join machinery.
    fn scan_single_term(
        &self,
        config: &TopKConfig,
        limits: &SearchLimits,
        scratch: &mut SearchScratch,
    ) -> (TopKResult, Option<LimitBreach>) {
        let mut stats = SearchStats::default();
        let list = &scratch.lists[0];
        if list.is_empty() {
            return (TopKResult { tuples: Vec::new(), stats }, None);
        }
        let mut breach: Option<LimitBreach> = None;
        let mut tuples: Vec<ResultTuple> = Vec::with_capacity(config.k.min(list.len()));
        for entry in list.iter().take(config.k) {
            if let Some(deadline) = limits.deadline {
                if std::time::Instant::now() >= deadline {
                    breach = Some(LimitBreach { resource: "deadline", spent: 0, budget: 0 });
                    break;
                }
            }
            if let Some(cancel) = &limits.cancel {
                if cancel.load(std::sync::atomic::Ordering::Relaxed) {
                    breach = Some(LimitBreach { resource: "cancelled", spent: 0, budget: 0 });
                    break;
                }
            }
            if let Some(max) = limits.max_sorted_accesses {
                if stats.sorted_accesses >= max {
                    breach = Some(LimitBreach {
                        resource: "sorted accesses",
                        spent: stats.sorted_accesses as u64,
                        budget: max as u64,
                    });
                    break;
                }
            }
            stats.sorted_accesses += 1;
            // The join loop checks the tuple ceiling after the sorted access
            // that produced the candidate; mirror that order so breach stats
            // line up with the general path.
            if let Some(max) = limits.max_tuples_scored {
                if stats.tuples_scored >= max {
                    breach = Some(LimitBreach {
                        resource: "candidate tuples",
                        spent: stats.tuples_scored as u64,
                        budget: max as u64,
                    });
                    break;
                }
            }
            stats.tuples_scored += 1;
            let score = config.content_weight * entry.score + config.structure_weight * 1.0;
            tuples.push(ResultTuple {
                nodes: vec![entry.node],
                content_score: entry.score,
                compactness: 1.0,
                score,
            });
        }
        if breach.is_none() && list.len() >= config.k {
            // The TA loop flags early termination once the k-th buffered
            // score meets the threshold, which for one list happens on the
            // k-th sorted access — including when the list is exactly k long.
            stats.early_terminated = true;
        }
        tuples.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.nodes.cmp(&b.nodes))
        });
        tuples.dedup_by(|a, b| a.nodes == b.nodes);
        (TopKResult { tuples, stats }, breach)
    }

    /// The Threshold-Algorithm join loop over `scratch.lists[..m]`, already
    /// filled by the caller.  `cache`, when given, memoises compactness
    /// scores across executions (the connecting-tree size of a node tuple
    /// depends only on the immutable graph and `max_depth`).
    fn search_filled(
        &self,
        m: usize,
        config: &TopKConfig,
        limits: &SearchLimits,
        scratch: &mut SearchScratch,
        mut cache: Option<&mut TupleScoreCache>,
    ) -> (TopKResult, Option<LimitBreach>) {
        let mut stats = SearchStats::default();
        let SearchScratch {
            traversal,
            lists,
            combo_nodes,
            combo_scores,
            next_nodes,
            next_scores,
            kth_scores,
            positions,
            best_scores,
            ..
        } = scratch;
        let label_probes_before = traversal.label_probes;
        // Arm the BFS probe ceiling so even oracle fallbacks inside
        // compactness checks respect the label-probe budget; disarmed before
        // returning on every path out of the loop.
        if let Some(max) = limits.max_label_probes {
            traversal.probe_ceiling =
                Some((label_probes_before + traversal.bfs_visits).saturating_add(max));
        }
        let lists = &lists[..m];
        if lists.iter().any(Vec::is_empty) {
            // Some term has no match at all: the result is empty (Definition 4
            // requires every term to be satisfied).
            traversal.probe_ceiling = None;
            return (TopKResult { tuples: Vec::new(), stats }, None);
        }
        best_scores.clear();
        best_scores.extend(lists.iter().map(|l| l[0].score));
        positions.clear();
        positions.resize(m, 0);
        kth_scores.clear();

        let mut buffer: BinaryHeap<HeapTuple> = BinaryHeap::new();
        let mut breach: Option<LimitBreach> = None;

        'outer: loop {
            let mut advanced = false;
            for i in 0..m {
                if let Some(deadline) = limits.deadline {
                    if std::time::Instant::now() >= deadline {
                        breach = Some(LimitBreach { resource: "deadline", spent: 0, budget: 0 });
                        break 'outer;
                    }
                }
                if let Some(cancel) = &limits.cancel {
                    if cancel.load(std::sync::atomic::Ordering::Relaxed) {
                        breach = Some(LimitBreach { resource: "cancelled", spent: 0, budget: 0 });
                        break 'outer;
                    }
                }
                let pos = positions[i];
                if pos >= lists[i].len() {
                    continue;
                }
                if let Some(max) = limits.max_sorted_accesses {
                    if stats.sorted_accesses >= max {
                        breach = Some(LimitBreach {
                            resource: "sorted accesses",
                            spent: stats.sorted_accesses as u64,
                            budget: max as u64,
                        });
                        break 'outer;
                    }
                }
                positions[i] += 1;
                advanced = true;
                stats.sorted_accesses += 1;
                let new_node = lists[i][pos];

                // Join the new node with every combination of already-seen
                // nodes from the other lists (their consumed prefixes).  The
                // combos live in two flat ping-pong arenas: at stage j each
                // combo is a j-sized NodeId run plus a running content score.
                combo_nodes.clear();
                combo_scores.clear();
                combo_scores.push(0.0);
                for j in 0..m {
                    next_nodes.clear();
                    next_scores.clear();
                    let stride = j;
                    if j == i {
                        for (c, &content) in combo_scores.iter().enumerate() {
                            next_nodes
                                .extend_from_slice(&combo_nodes[c * stride..(c + 1) * stride]);
                            next_nodes.push(new_node.node);
                            next_scores.push(content + new_node.score);
                        }
                    } else {
                        let seen_j = &lists[j][..positions[j]];
                        for (c, &content) in combo_scores.iter().enumerate() {
                            for candidate in seen_j {
                                // Component pruning: a tuple spanning two
                                // disconnected document components can never
                                // be connected, so skip it before the BFS.
                                // The optimizer clears the flag on
                                // single-component graphs, where the check
                                // always passes.
                                if config.prune_components
                                    && !self.graph.same_component(candidate.node, new_node.node)
                                {
                                    continue;
                                }
                                stats.random_accesses += 1;
                                next_nodes
                                    .extend_from_slice(&combo_nodes[c * stride..(c + 1) * stride]);
                                next_nodes.push(candidate.node);
                                next_scores.push(content + candidate.score);
                            }
                        }
                    }
                    std::mem::swap(combo_nodes, next_nodes);
                    std::mem::swap(combo_scores, next_scores);
                    if combo_scores.is_empty() {
                        break;
                    }
                    if stats.tuples_scored + combo_scores.len() > config.candidate_limit {
                        let keep = config.candidate_limit.saturating_sub(stats.tuples_scored);
                        stats.candidates_truncated += combo_scores.len() - keep;
                        combo_scores.truncate(keep);
                        combo_nodes.truncate(keep * (j + 1));
                    }
                }
                if let Some(max) = limits.max_random_accesses {
                    if stats.random_accesses > max {
                        breach = Some(LimitBreach {
                            resource: "random accesses",
                            spent: stats.random_accesses as u64,
                            budget: max as u64,
                        });
                        break 'outer;
                    }
                }
                if combo_nodes.len() == combo_scores.len() * m {
                    for (c, &content) in combo_scores.iter().enumerate() {
                        if let Some(max) = limits.max_tuples_scored {
                            if stats.tuples_scored >= max {
                                breach = Some(LimitBreach {
                                    resource: "candidate tuples",
                                    spent: stats.tuples_scored as u64,
                                    budget: max as u64,
                                });
                                break 'outer;
                            }
                        }
                        let nodes = &combo_nodes[c * m..(c + 1) * m];
                        stats.tuples_scored += 1;
                        let compact = match cache.as_deref_mut() {
                            Some(memo) => match memo.lookup(config.max_depth, nodes) {
                                Some(hit) => hit,
                                None => {
                                    let fresh = compactness_with(
                                        self.graph,
                                        traversal,
                                        nodes,
                                        config.max_depth,
                                    );
                                    memo.store(config.max_depth, nodes, fresh);
                                    fresh
                                }
                            },
                            None => {
                                compactness_with(self.graph, traversal, nodes, config.max_depth)
                            }
                        };
                        if compact == 0.0 && m > 1 {
                            stats.tuples_disconnected += 1;
                        } else {
                            let score =
                                config.content_weight * content + config.structure_weight * compact;
                            note_score(kth_scores, config.k, score);
                            // Buffer only tuples still inside the provisional
                            // top-k (ties at the k-th score included): a tuple
                            // strictly below k better ones can never re-enter,
                            // and the small buffer keeps the final sort cheap.
                            if score
                                >= *kth_scores.last().expect(
                                    "invariant: note_score keeps at least one entry (kth-order)",
                                )
                            {
                                buffer.push(HeapTuple(ResultTuple {
                                    nodes: nodes.to_vec(),
                                    content_score: content,
                                    compactness: compact,
                                    score,
                                }));
                            }
                        }
                        if stats.tuples_scored >= config.candidate_limit {
                            break 'outer;
                        }
                    }
                }
                if let Some(max) = limits.max_label_probes {
                    let spent = traversal.label_probes - label_probes_before;
                    if spent > max {
                        breach = Some(LimitBreach { resource: "label probes", spent, budget: max });
                        break 'outer;
                    }
                }

                // Threshold test: an unseen combination can score at most
                //   max_i ( frontier_i + Σ_{j≠i} best_j )
                // in content, plus the maximal structural bonus.
                let mut threshold_content = f64::NEG_INFINITY;
                for j in 0..m {
                    let front = if positions[j] == 0 {
                        best_scores[j]
                    } else if positions[j] <= lists[j].len() {
                        lists[j][positions[j] - 1].score
                    } else {
                        0.0
                    };
                    let mut bound = front;
                    for (l, best) in best_scores.iter().enumerate() {
                        if l != j {
                            bound += best;
                        }
                    }
                    threshold_content = threshold_content.max(bound);
                }
                let threshold =
                    config.content_weight * threshold_content + config.structure_weight * 1.0;

                if kth_scores.len() >= config.k {
                    let kth_score = kth_scores[config.k - 1];
                    if kth_score >= threshold {
                        stats.early_terminated = true;
                        break 'outer;
                    }
                }
            }
            if !advanced {
                break;
            }
        }
        traversal.probe_ceiling = None;
        stats.label_probes = traversal.label_probes - label_probes_before;

        let mut tuples: Vec<ResultTuple> =
            buffer.into_sorted_vec().into_iter().map(|h| h.0).collect();
        // `into_sorted_vec` is ascending; we want best-first.
        tuples.reverse();
        tuples.dedup_by(|a, b| a.nodes == b.nodes);
        tuples.truncate(config.k);
        (TopKResult { tuples, stats }, breach)
    }

    /// Exhaustive baseline with a fresh scratch: enumerates every combination
    /// of matching nodes, scores them all and returns the best `k`.  Used to
    /// validate the TA implementation and as the comparison point in the
    /// benchmark harness.
    pub fn search_naive(&self, terms: &[TermInput], config: &TopKConfig) -> TopKResult {
        self.search_naive_with(terms, config, &mut SearchScratch::new())
    }

    /// [`TopKSearcher::search_naive`] reusing a caller-owned scratch.
    ///
    /// Like the TA search, at most [`TopKConfig::candidate_limit`] candidate
    /// tuples are materialised; clipped combinations are counted in
    /// [`SearchStats::candidates_truncated`].
    pub fn search_naive_with(
        &self,
        terms: &[TermInput],
        config: &TopKConfig,
        scratch: &mut SearchScratch,
    ) -> TopKResult {
        let mut stats = SearchStats::default();
        if terms.is_empty() || config.k == 0 {
            return TopKResult { tuples: Vec::new(), stats };
        }
        self.fill_term_lists(terms, scratch);
        let SearchScratch {
            traversal,
            lists,
            combo_nodes,
            combo_scores,
            next_nodes,
            next_scores,
            ..
        } = scratch;
        let label_probes_before = traversal.label_probes;
        let lists = &lists[..terms.len()];
        if lists.iter().any(Vec::is_empty) {
            return TopKResult { tuples: Vec::new(), stats };
        }
        stats.sorted_accesses = lists.iter().map(Vec::len).sum();
        let m = lists.len();

        combo_nodes.clear();
        combo_scores.clear();
        combo_scores.push(0.0);
        for (j, list) in lists.iter().enumerate() {
            next_nodes.clear();
            next_scores.clear();
            let stride = j;
            'combos: for (c, &content) in combo_scores.iter().enumerate() {
                let run = &combo_nodes[c * stride..(c + 1) * stride];
                for (ci, candidate) in list.iter().enumerate() {
                    if config.prune_components {
                        if let Some(&first) = run.first() {
                            if !self.graph.same_component(first, candidate.node) {
                                continue;
                            }
                        }
                    }
                    next_nodes.extend_from_slice(run);
                    next_nodes.push(candidate.node);
                    next_scores.push(content + candidate.score);
                    if next_scores.len() > config.candidate_limit {
                        // Candidate-limit guard against combinatorial
                        // blow-up: everything after this point in the stage
                        // is dropped and accounted for.
                        stats.candidates_truncated +=
                            (list.len() - ci - 1) + (combo_scores.len() - c - 1) * list.len();
                        break 'combos;
                    }
                }
            }
            std::mem::swap(combo_nodes, next_nodes);
            std::mem::swap(combo_scores, next_scores);
            if combo_scores.is_empty() {
                break;
            }
        }

        let mut tuples: Vec<ResultTuple> = Vec::new();
        if combo_nodes.len() == combo_scores.len() * m {
            for (c, &content) in combo_scores.iter().enumerate() {
                let nodes = &combo_nodes[c * m..(c + 1) * m];
                if let Some(tuple) =
                    score_tuple(self.graph, traversal, nodes, content, config, &mut stats)
                {
                    tuples.push(tuple);
                }
            }
        }
        stats.label_probes = traversal.label_probes - label_probes_before;
        tuples.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.nodes.cmp(&b.nodes))
        });
        tuples.truncate(config.k);
        TopKResult { tuples, stats }
    }
}

/// Folds one buffered score into the descending top-`k` score list
/// (`scores.len() <= k` always): the k-th best buffered score is
/// `scores[k - 1]` once `k` tuples have been buffered.
fn note_score(scores: &mut Vec<f64>, k: usize, score: f64) {
    let pos = scores.partition_point(|&s| s > score);
    if pos < k {
        if scores.len() == k {
            scores.pop();
        }
        scores.insert(pos, score);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seda_datagraph::GraphConfig;
    use seda_textindex::FullTextQuery;
    use seda_xmlstore::parse_collection;

    fn factbook_fragment() -> Collection {
        parse_collection(vec![
            (
                "us2006.xml",
                r#"<country><name>United States</name><year>2006</year>
                     <economy><GDP_ppp>12.31T</GDP_ppp>
                       <import_partners>
                         <item><trade_country>China</trade_country><percentage>15</percentage></item>
                         <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                       </import_partners>
                     </economy></country>"#,
            ),
            (
                "mexico2003.xml",
                r#"<country><name>Mexico</name><year>2003</year>
                     <economy><GDP>924.4B</GDP>
                       <export_partners>
                         <item><trade_country>United States</trade_country><percentage>70.6</percentage></item>
                       </export_partners>
                     </economy></country>"#,
            ),
            (
                "canada2006.xml",
                r#"<country><name>Canada</name><year>2006</year>
                     <economy><GDP_ppp>1.1T</GDP_ppp></economy></country>"#,
            ),
        ])
        .unwrap()
    }

    fn searcher_parts(c: &Collection) -> (NodeIndex, DataGraph) {
        (NodeIndex::build(c), DataGraph::build(c, &GraphConfig::default()))
    }

    fn query1_terms(c: &Collection) -> Vec<TermInput> {
        // Query 1: (∗, "United States") ∧ (trade_country, ∗) ∧ (percentage, ∗)
        let tc_paths: Vec<_> = c
            .paths()
            .iter()
            .filter(|(_, p)| {
                p.leaf().map(|l| c.symbols().resolve(l) == "trade_country").unwrap_or(false)
            })
            .map(|(id, _)| id)
            .collect();
        let pct_paths: Vec<_> = c
            .paths()
            .iter()
            .filter(|(_, p)| {
                p.leaf().map(|l| c.symbols().resolve(l) == "percentage").unwrap_or(false)
            })
            .map(|(id, _)| id)
            .collect();
        vec![
            TermInput::new(FullTextQuery::phrase("United States")),
            TermInput::with_paths(FullTextQuery::Any, tc_paths),
            TermInput::with_paths(FullTextQuery::Any, pct_paths),
        ]
    }

    #[test]
    fn query1_returns_connected_tuples_only() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let result = searcher.search(&query1_terms(&c), &TopKConfig::with_k(5));
        assert!(!result.tuples.is_empty());
        for tuple in &result.tuples {
            assert_eq!(tuple.nodes.len(), 3);
            assert!(tuple.compactness > 0.0, "tuples must be connected");
            // All three nodes of a connected tuple live in the same document
            // in this fragment (no cross-document edges).
            let doc = tuple.nodes[0].doc;
            assert!(tuple.nodes.iter().all(|n| n.doc == doc));
        }
    }

    #[test]
    fn tight_tuples_rank_above_loose_ones() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let result = searcher.search(&query1_terms(&c), &TopKConfig::with_k(10));
        // The best US tuple must pair China with 15 or Canada with 16.9 (the
        // same-item pairing), not a cross-item combination.
        let best = &result.tuples[0];
        let contents: Vec<String> = best.nodes.iter().map(|&n| c.content(n).unwrap()).collect();
        let same_item = (contents.contains(&"China".to_string())
            && contents.contains(&"15".to_string()))
            || (contents.contains(&"Canada".to_string()) && contents.contains(&"16.9".to_string()))
            || (contents.contains(&"United States".to_string())
                && contents.contains(&"70.6".to_string()));
        assert!(
            same_item,
            "best tuple should pair a trade country with its own percentage: {contents:?}"
        );
    }

    #[test]
    fn ta_matches_naive_baseline() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let config = TopKConfig::with_k(4);
        let terms = query1_terms(&c);
        let ta = searcher.search(&terms, &config);
        let naive = searcher.search_naive(&terms, &config);
        assert_eq!(ta.tuples.len(), naive.tuples.len());
        for (a, b) in ta.tuples.iter().zip(naive.tuples.iter()) {
            assert!(
                (a.score - b.score).abs() < 1e-9,
                "TA and naive disagree: {} vs {}",
                a.score,
                b.score
            );
        }
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_scratch() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);
        let mut scratch = SearchScratch::new();
        for k in [1usize, 3, 10] {
            let config = TopKConfig::with_k(k);
            let reused = searcher.search_with(&terms, &config, &mut scratch);
            let fresh = searcher.search(&terms, &config);
            assert_eq!(reused.tuples, fresh.tuples, "scratch reuse changed results at k={k}");
            let reused_naive = searcher.search_naive_with(&terms, &config, &mut scratch);
            let fresh_naive = searcher.search_naive(&terms, &config);
            assert_eq!(reused_naive.tuples, fresh_naive.tuples);
        }
    }

    #[test]
    fn k_limits_the_result_size() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);
        let one = searcher.search(&terms, &TopKConfig::with_k(1));
        assert_eq!(one.tuples.len(), 1);
        let many = searcher.search(&terms, &TopKConfig::with_k(50));
        assert!(many.tuples.len() >= one.tuples.len());
        // Results are sorted best-first.
        for w in many.tuples.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn empty_term_list_and_unmatchable_terms() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        assert!(searcher.search(&[], &TopKConfig::default()).tuples.is_empty());
        let impossible = vec![
            TermInput::new(FullTextQuery::keywords("zzzunknownzzz")),
            TermInput::new(FullTextQuery::Any),
        ];
        assert!(searcher.search(&impossible, &TopKConfig::default()).tuples.is_empty());
    }

    #[test]
    fn single_term_queries_degenerate_to_ranked_retrieval() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = vec![TermInput::new(FullTextQuery::phrase("United States"))];
        let result = searcher.search(&terms, &TopKConfig::with_k(10));
        assert_eq!(result.tuples.len(), 2, "US appears as a country name and as a trade partner");
        for t in &result.tuples {
            assert_eq!(t.compactness, 1.0, "singleton tuples are maximally compact");
        }
    }

    #[test]
    fn context_restriction_filters_terms() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let name_path = c.paths().get_str(c.symbols(), "/country/name").unwrap();
        let terms =
            vec![TermInput::with_paths(FullTextQuery::phrase("United States"), vec![name_path])];
        let result = searcher.search(&terms, &TopKConfig::default());
        assert_eq!(result.tuples.len(), 1);
        assert_eq!(c.context_string(result.tuples[0].nodes[0]).unwrap(), "/country/name");
    }

    #[test]
    fn stats_record_work_and_early_termination_does_less_of_it() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);
        let small_k = searcher.search(&terms, &TopKConfig::with_k(1));
        let naive = searcher.search_naive(&terms, &TopKConfig::with_k(1));
        assert!(small_k.stats.sorted_accesses > 0);
        assert!(small_k.stats.tuples_scored <= naive.stats.tuples_scored);
        assert!(small_k.stats.label_probes > 0, "connectivity checks are accounted");
        assert!(naive.stats.label_probes > 0);
    }

    #[test]
    fn unlimited_governed_search_matches_ungoverned() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);
        let config = TopKConfig::with_k(5);
        let plain = searcher.search(&terms, &config);
        let (governed, breach) = searcher.search_governed(
            &terms,
            &config,
            &SearchLimits::unlimited(),
            &mut SearchScratch::new(),
        );
        assert!(breach.is_none());
        assert_eq!(plain.tuples, governed.tuples);
        assert_eq!(plain.stats, governed.stats);
    }

    #[test]
    fn each_search_limit_breaches_with_its_resource_name() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);
        let config = TopKConfig::with_k(5);
        let mut scratch = SearchScratch::new();
        let cases: Vec<(&str, SearchLimits)> = vec![
            (
                "sorted accesses",
                SearchLimits { max_sorted_accesses: Some(0), ..SearchLimits::unlimited() },
            ),
            (
                "random accesses",
                SearchLimits { max_random_accesses: Some(0), ..SearchLimits::unlimited() },
            ),
            (
                "candidate tuples",
                SearchLimits { max_tuples_scored: Some(0), ..SearchLimits::unlimited() },
            ),
            (
                "label probes",
                SearchLimits { max_label_probes: Some(0), ..SearchLimits::unlimited() },
            ),
            (
                "deadline",
                SearchLimits {
                    deadline: Some(std::time::Instant::now()),
                    ..SearchLimits::unlimited()
                },
            ),
        ];
        for (resource, limits) in cases {
            let (result, breach) = searcher.search_governed(&terms, &config, &limits, &mut scratch);
            let breach = breach.unwrap_or_else(|| panic!("{resource} limit must trip"));
            assert_eq!(breach.resource, resource);
            // The prefix is well-formed even when empty.
            for t in &result.tuples {
                assert_eq!(t.nodes.len(), terms.len());
            }
        }
    }

    #[test]
    fn cancellation_stops_the_search() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let flag = Arc::new(AtomicBool::new(true));
        let limits = SearchLimits { cancel: Some(flag), ..SearchLimits::unlimited() };
        let (result, breach) = searcher.search_governed(
            &query1_terms(&c),
            &TopKConfig::with_k(5),
            &limits,
            &mut SearchScratch::new(),
        );
        assert_eq!(breach.expect("cancelled search must report a breach").resource, "cancelled");
        assert!(result.tuples.is_empty());
    }

    #[test]
    fn generous_limits_do_not_change_the_result() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);
        let config = TopKConfig::with_k(5);
        let limits = SearchLimits {
            deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(600)),
            max_sorted_accesses: Some(usize::MAX),
            max_random_accesses: Some(usize::MAX),
            max_tuples_scored: Some(usize::MAX),
            max_label_probes: Some(u64::MAX),
            cancel: Some(std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false))),
        };
        assert!(!limits.is_unlimited());
        let (governed, breach) =
            searcher.search_governed(&terms, &config, &limits, &mut SearchScratch::new());
        assert!(breach.is_none());
        assert_eq!(governed.tuples, searcher.search(&terms, &config).tuples);
    }

    #[test]
    fn materialized_search_matches_fresh_search() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);
        let config = TopKConfig::with_k(5);
        let limits = SearchLimits::unlimited();
        let materialized = searcher.materialize_terms(&terms);
        assert_eq!(materialized.term_count(), terms.len());
        let mut scratch = SearchScratch::new();
        let (fresh, _) = searcher.search_governed(&terms, &config, &limits, &mut scratch);
        let (replayed, breach) = searcher.search_materialized_governed(
            &materialized,
            &config,
            &limits,
            &mut scratch,
            None,
            SearchStrategy::Join,
        );
        assert!(breach.is_none());
        assert_eq!(fresh.tuples, replayed.tuples);
        assert_eq!(fresh.stats, replayed.stats);
    }

    #[test]
    fn warm_cache_reproduces_cold_tuples_with_fewer_probes() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);
        let config = TopKConfig::with_k(5);
        let limits = SearchLimits::unlimited();
        let materialized = searcher.materialize_terms(&terms);
        let mut scratch = SearchScratch::new();
        let mut cache = TupleScoreCache::new();
        let (cold, _) = searcher.search_materialized_governed(
            &materialized,
            &config,
            &limits,
            &mut scratch,
            Some(&mut cache),
            SearchStrategy::Join,
        );
        assert!(cold.stats.label_probes > 0);
        assert!(cache.misses() > 0 && cache.hits() == 0);
        let (warm, _) = searcher.search_materialized_governed(
            &materialized,
            &config,
            &limits,
            &mut scratch,
            Some(&mut cache),
            SearchStrategy::Join,
        );
        assert_eq!(cold.tuples, warm.tuples, "memoisation must not change the answer");
        assert!(cache.hits() > 0);
        assert!(
            warm.stats.label_probes < cold.stats.label_probes,
            "warm runs answer compactness from the memo: {} vs {}",
            warm.stats.label_probes,
            cold.stats.label_probes
        );
    }

    #[test]
    fn single_term_scan_matches_the_join_loop_exactly() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        // "United States" matches 2 nodes; exercise k below, at and above the
        // list length to pin tuples, stats and the early-termination flag.
        let terms = vec![TermInput::new(FullTextQuery::phrase("United States"))];
        let materialized = searcher.materialize_terms(&terms);
        let limits = SearchLimits::unlimited();
        let mut scratch = SearchScratch::new();
        for k in [1usize, 2, 10] {
            let config = TopKConfig::with_k(k);
            let (join, _) = searcher.search_governed(&terms, &config, &limits, &mut scratch);
            let (scan, breach) = searcher.search_materialized_governed(
                &materialized,
                &config,
                &limits,
                &mut scratch,
                None,
                SearchStrategy::SingleTermScan,
            );
            assert!(breach.is_none());
            assert_eq!(join.tuples, scan.tuples, "k={k}");
            assert_eq!(join.stats, scan.stats, "k={k}");
        }
    }

    #[test]
    fn disabling_component_pruning_on_one_component_changes_nothing() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);
        let pruned = searcher.search(&terms, &TopKConfig::with_k(5));
        let mut unpruned_config = TopKConfig::with_k(5);
        unpruned_config.prune_components = false;
        let unpruned = searcher.search(&terms, &unpruned_config);
        if graph.doc_component_count() == 1 {
            assert_eq!(pruned, unpruned);
        } else {
            // Cross-component tuples are scored but stay disconnected: same
            // tuples, more work.
            assert_eq!(pruned.tuples, unpruned.tuples);
            assert!(unpruned.stats.tuples_scored >= pruned.stats.tuples_scored);
        }
    }

    #[test]
    fn candidate_truncation_is_recorded_not_silent() {
        let c = factbook_fragment();
        let (index, graph) = searcher_parts(&c);
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let terms = query1_terms(&c);

        // A generous limit loses nothing and reports nothing.
        let unclipped = searcher.search(&terms, &TopKConfig::with_k(10));
        assert_eq!(unclipped.stats.candidates_truncated, 0);

        // A tiny limit clips the candidate set and must say so.
        let mut tight = TopKConfig::with_k(10);
        tight.candidate_limit = 3;
        let clipped = searcher.search(&terms, &tight);
        assert!(clipped.stats.tuples_scored <= 3);
        assert!(
            clipped.stats.candidates_truncated > 0,
            "clipped combos must be counted: {:?}",
            clipped.stats
        );
        let clipped_naive = searcher.search_naive(&terms, &tight);
        assert!(
            clipped_naive.stats.candidates_truncated > 0,
            "naive clipping must be counted: {:?}",
            clipped_naive.stats
        );
    }
}
