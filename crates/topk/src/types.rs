//! Shared types of the top-k search unit.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use seda_textindex::{FullTextQuery, ScoredNode};
use seda_xmlstore::{NodeId, PathId};

/// One search input per query term: the full-text expression plus an optional
/// context restriction (the set of allowed root-to-leaf paths the user picked
/// in the context summary).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermInput {
    /// The full-text search expression of the query term.
    pub query: FullTextQuery,
    /// When present, only nodes whose context is in this set may satisfy the
    /// term (Sec. 5: "SEDA re-computes top-k results, with the additional
    /// constraint that the results satisfy the contexts chosen by the user").
    pub allowed_paths: Option<Vec<PathId>>,
}

impl TermInput {
    /// Unrestricted term.
    pub fn new(query: FullTextQuery) -> Self {
        TermInput { query, allowed_paths: None }
    }

    /// Term restricted to the given contexts.
    pub fn with_paths(query: FullTextQuery, allowed_paths: Vec<PathId>) -> Self {
        TermInput { query, allowed_paths: Some(allowed_paths) }
    }
}

/// Configuration of a top-k search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopKConfig {
    /// Number of result tuples to return.
    pub k: usize,
    /// Maximum number of hops when testing connectivity / compactness.
    pub max_depth: usize,
    /// Weight of the summed content scores in the combined score.
    pub content_weight: f64,
    /// Weight of the structural compactness in the combined score.
    pub structure_weight: f64,
    /// Upper bound on the number of candidate tuples the algorithm will score
    /// (guards against combinatorial blow-up on match-all terms).
    ///
    /// When the bound clips the candidate set, the search result is a
    /// **best-effort** top-k over the combinations enumerated up to that
    /// point; the number of dropped combinations is reported in
    /// [`SearchStats::candidates_truncated`] rather than lost silently.
    pub candidate_limit: usize,
    /// When true (the default), candidate pairs spanning two disconnected
    /// document components are skipped before the connectivity BFS.  The
    /// optimizer clears this on graphs with a single component, where the
    /// check always passes: results and stats are identical either way (the
    /// random-access counter is bumped after the check), the per-pair
    /// component lookups just disappear.
    pub prune_components: bool,
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig {
            k: 10,
            max_depth: 12,
            content_weight: 1.0,
            structure_weight: 1.0,
            candidate_limit: 200_000,
            prune_components: true,
        }
    }
}

impl TopKConfig {
    /// Convenience constructor fixing only `k`.
    pub fn with_k(k: usize) -> Self {
        TopKConfig { k, ..TopKConfig::default() }
    }
}

/// Resource ceilings enforced inside the Threshold-Algorithm loop by
/// [`crate::TopKSearcher::search_governed`].
///
/// Every field defaults to "unlimited"; the searcher only pays for the checks
/// whose ceilings are set.  Breaches stop the loop at the next check point and
/// are reported as a [`LimitBreach`] alongside the prefix computed so far —
/// TA's monotone threshold makes that prefix an exact top-k over the
/// combinations enumerated up to the stop.
#[derive(Debug, Clone, Default)]
pub struct SearchLimits {
    /// Hard wall-clock deadline; checked once per sorted access.
    pub deadline: Option<std::time::Instant>,
    /// Ceiling on entries consumed from sorted posting lists.
    pub max_sorted_accesses: Option<usize>,
    /// Ceiling on random-access score probes.
    pub max_random_accesses: Option<usize>,
    /// Ceiling on candidate tuples scored (connectivity + compactness).
    pub max_tuples_scored: Option<usize>,
    /// Ceiling on label entries scanned by connectivity-oracle probes.  Also
    /// arms the traversal scratch's BFS probe ceiling so oracle fallbacks
    /// cannot run unbounded.
    pub max_label_probes: Option<u64>,
    /// Cooperative cancellation flag; checked once per sorted access.  A
    /// breach is reported with resource name `"cancelled"`.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl SearchLimits {
    /// Limits that never trip — [`crate::TopKSearcher::search_with`] runs
    /// under these.
    pub fn unlimited() -> Self {
        SearchLimits::default()
    }

    /// True when no ceiling is set (the governed loop degenerates to the
    /// ungoverned one except for a handful of `is_some` tests).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_sorted_accesses.is_none()
            && self.max_random_accesses.is_none()
            && self.max_tuples_scored.is_none()
            && self.max_label_probes.is_none()
            && self.cancel.is_none()
    }
}

/// A tripped [`SearchLimits`] ceiling: which resource ran out, how much was
/// spent when the loop stopped, and what the ceiling was.
///
/// For the `"deadline"` and `"cancelled"` resources the searcher has no
/// request-relative clock, so `spent`/`budget` are reported as `0`; the
/// serving layer rebuilds them from its `RequestContext`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitBreach {
    /// Human-readable resource name (e.g. `"sorted accesses"`).
    pub resource: &'static str,
    /// Amount consumed when the search stopped.
    pub spent: u64,
    /// The configured ceiling.
    pub budget: u64,
}

/// A scored result tuple `<n1, …, nm>` (Definition 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultTuple {
    /// One node per query term, in query-term order.
    pub nodes: Vec<NodeId>,
    /// Sum of the per-term content scores.
    pub content_score: f64,
    /// Structural compactness of the connecting subgraph (1 / (1 + size)).
    pub compactness: f64,
    /// Combined score used for ranking.
    pub score: f64,
}

/// Counters describing the work a search performed; used to demonstrate the
/// Threshold Algorithm's early termination.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Entries consumed from sorted posting lists.
    pub sorted_accesses: usize,
    /// Random-access score probes.
    pub random_accesses: usize,
    /// Candidate tuples whose connectivity/compactness was evaluated.
    pub tuples_scored: usize,
    /// Candidate tuples discarded because they were not connected.
    pub tuples_disconnected: usize,
    /// Candidate combinations dropped because
    /// [`TopKConfig::candidate_limit`] clipped the candidate set.  Non-zero
    /// means the result is a best-effort top-k rather than an exact one.
    pub candidates_truncated: usize,
    /// Label entries scanned by the connectivity-oracle intersections of the
    /// connectivity/compactness checks.
    pub label_probes: u64,
    /// True when the algorithm stopped via the threshold condition rather
    /// than exhausting all lists.
    pub early_terminated: bool,
}

/// Result of a top-k search.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TopKResult {
    /// The top tuples, best first.
    pub tuples: Vec<ResultTuple>,
    /// Work counters.
    pub stats: SearchStats,
}

impl TopKResult {
    /// Nodes of every tuple (convenience for the connection summary, which
    /// consumes the top-k node tuples).
    pub fn node_tuples(&self) -> Vec<Vec<NodeId>> {
        self.tuples.iter().map(|t| t.nodes.clone()).collect()
    }
}

/// How the compiled plan drives the top-k search.
///
/// Chosen by the plan optimizer at prepare time; the default is the general
/// Threshold-Algorithm rank join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// The Threshold-Algorithm rank join over all term lists (general case).
    #[default]
    Join,
    /// Single-keyword shortcut: one term degenerates to ranked retrieval — a
    /// direct scan of the sorted posting prefix with no join machinery.  Only
    /// applied when it reproduces the join's tuples, stats and termination
    /// behaviour exactly (one term, candidate limit ≥ k).
    SingleTermScan,
}

/// Per-term sorted-access lists materialised once at prepare time, so a
/// prepared statement's re-executions skip full-text evaluation entirely.
///
/// The lists are exactly what a fresh search would compute for the same
/// [`TermInput`]s: searching over them is equivalent to searching the terms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaterializedTerms {
    pub(crate) lists: Vec<Vec<ScoredNode>>,
}

impl MaterializedTerms {
    /// Number of materialised term lists.
    pub fn term_count(&self) -> usize {
        self.lists.len()
    }

    /// Posting-list length of term `i` (sorted-access upper bound).
    pub fn list_len(&self, i: usize) -> usize {
        self.lists.get(i).map(Vec::len).unwrap_or(0)
    }

    pub(crate) fn from_lists(lists: Vec<Vec<ScoredNode>>) -> Self {
        MaterializedTerms { lists }
    }
}

/// Memoised compactness scores of candidate node tuples.
///
/// The connecting-tree size of a node tuple depends only on the immutable
/// data graph and the search depth, so a prepared statement can carry one
/// cache across executions: warm runs answer the dominant cost of the join
/// loop — connectivity-oracle label probes — from the memo instead of
/// re-intersecting labels.  Warm-run [`SearchStats::label_probes`] therefore
/// legitimately drop below the cold run's.
#[derive(Debug, Clone, Default)]
pub struct TupleScoreCache {
    map: HashMap<Vec<NodeId>, f64>,
    /// Depth the memoised scores were computed at; a different depth
    /// invalidates the whole cache.
    max_depth: Option<usize>,
    hits: u64,
    misses: u64,
}

impl TupleScoreCache {
    /// Entry ceiling: beyond this the cache stops absorbing new tuples (reads
    /// keep working), bounding memory on adversarial workloads.
    const MAX_ENTRIES: usize = 1 << 20;

    /// Creates an empty cache.
    pub fn new() -> Self {
        TupleScoreCache::default()
    }

    /// Number of memoised tuples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is memoised yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups answered from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to a fresh BFS so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Memoised compactness of `nodes` at `max_depth`, if present.
    pub fn lookup(&mut self, max_depth: usize, nodes: &[NodeId]) -> Option<f64> {
        self.reset_on_depth_change(max_depth);
        let hit = self.map.get(nodes).copied();
        match hit {
            Some(_) => self.hits += 1,
            None => self.misses += 1,
        }
        hit
    }

    /// Memoises the compactness of `nodes` at `max_depth` (no-op at the entry
    /// ceiling).
    pub fn store(&mut self, max_depth: usize, nodes: &[NodeId], compactness: f64) {
        self.reset_on_depth_change(max_depth);
        if self.map.len() < Self::MAX_ENTRIES {
            self.map.insert(nodes.to_vec(), compactness);
        }
    }

    fn reset_on_depth_change(&mut self, max_depth: usize) {
        if self.max_depth != Some(max_depth) {
            self.map.clear();
            self.max_depth = Some(max_depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = TopKConfig::default();
        assert_eq!(c.k, 10);
        assert!(c.max_depth > 0);
        assert!(c.content_weight > 0.0 && c.structure_weight > 0.0);
        assert!(c.prune_components, "component pruning is on unless the optimizer clears it");
        assert_eq!(TopKConfig::with_k(3).k, 3);
    }

    #[test]
    fn tuple_score_cache_memoises_per_depth() {
        let mut cache = TupleScoreCache::new();
        let nodes = vec![NodeId::new(seda_xmlstore::DocId(0), 1)];
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(12, &nodes), None);
        cache.store(12, &nodes, 0.5);
        assert_eq!(cache.lookup(12, &nodes), Some(0.5));
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different depth invalidates the memo.
        assert_eq!(cache.lookup(3, &nodes), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn materialized_terms_report_list_shapes() {
        let m = MaterializedTerms::from_lists(vec![vec![], vec![]]);
        assert_eq!(m.term_count(), 2);
        assert_eq!(m.list_len(0), 0);
        assert_eq!(m.list_len(7), 0, "out-of-range terms read as empty");
        assert_eq!(SearchStrategy::default(), SearchStrategy::Join);
    }

    #[test]
    fn term_input_constructors() {
        let t = TermInput::new(FullTextQuery::Any);
        assert!(t.allowed_paths.is_none());
        let t = TermInput::with_paths(FullTextQuery::Any, vec![PathId(1)]);
        assert_eq!(t.allowed_paths.unwrap(), vec![PathId(1)]);
    }

    #[test]
    fn node_tuples_projects_nodes() {
        let r = TopKResult {
            tuples: vec![ResultTuple {
                nodes: vec![NodeId::new(seda_xmlstore::DocId(0), 1)],
                content_score: 1.0,
                compactness: 1.0,
                score: 2.0,
            }],
            stats: SearchStats::default(),
        };
        assert_eq!(r.node_tuples().len(), 1);
        assert_eq!(r.node_tuples()[0].len(), 1);
    }
}
