//! Structural invariant auditing — the `seda-audit` layer for the top-k
//! search unit.
//!
//! # Invariant catalog (substrate `topk`)
//!
//! | class | invariant |
//! |---|---|
//! | `scratch-epoch` | the embedded traversal scratch keeps its epoch discipline (delegated to the datagraph audit) |
//! | `kth-order` | the buffered k-best score list stays sorted descending and free of NaN |
//! | `stats-counters` | [`SearchStats`] counters are mutually consistent (disconnected ≤ scored) |
//!
//! A [`SearchScratch`] passes between searches; the check is cheap enough to
//! run after every governed search in a paranoid build.

use seda_xmlstore::audit::{finish, AuditResult, InvariantViolation};

use crate::searcher::SearchScratch;
use crate::types::SearchStats;

const SUBSTRATE: &str = "topk";

impl SearchScratch {
    /// Verifies the reusable search state: the traversal scratch's epoch
    /// discipline plus the descending order of the buffered k-best scores.
    pub fn verify(&self) -> AuditResult {
        let mut violations = self.traversal.verify().err().unwrap_or_default();
        for (i, pair) in self.kth_scores.windows(2).enumerate() {
            // NaNs are reported by the dedicated check below, so a plain
            // ascending comparison suffices here.
            if pair[0] < pair[1] {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "kth-order",
                    format!("k-best scores not descending at {i}: {} then {}", pair[0], pair[1]),
                ));
            }
        }
        if self.kth_scores.iter().any(|s| s.is_nan()) {
            violations.push(InvariantViolation::new(
                SUBSTRATE,
                "kth-order",
                "k-best score list holds a NaN".to_string(),
            ));
        }
        finish(violations)
    }

    /// Test-only corruption hook: appends a score above the current best,
    /// breaking the descending order (`kth-order`) once two entries exist.
    #[doc(hidden)]
    pub fn corrupt_push_kth_score(&mut self, score: f64) {
        self.kth_scores.push(score);
    }
}

/// Verifies the mutual consistency of one search's work counters: a tuple can
/// only be counted disconnected after being scored, so
/// `tuples_disconnected <= tuples_scored` (the `stats-counters` class).
pub fn verify_search_stats(stats: &SearchStats) -> AuditResult {
    let mut violations = Vec::new();
    if stats.tuples_disconnected > stats.tuples_scored {
        violations.push(InvariantViolation::new(
            SUBSTRATE,
            "stats-counters",
            format!(
                "{} disconnected tuples out of only {} scored",
                stats.tuples_disconnected, stats.tuples_scored
            ),
        ));
    }
    finish(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TermInput, TopKConfig, TopKSearcher};
    use seda_datagraph::{DataGraph, GraphConfig};
    use seda_textindex::{FullTextQuery, NodeIndex};
    use seda_xmlstore::parse_collection;

    #[test]
    fn used_scratch_passes_and_corruption_fails() {
        let c = parse_collection(vec![
            ("a.xml", "<doc><t>alpha beta</t><u>beta</u></doc>"),
            ("b.xml", "<doc><t>alpha</t></doc>"),
        ])
        .unwrap();
        let index = NodeIndex::build(&c);
        let graph = DataGraph::build(&c, &GraphConfig::default());
        let searcher = TopKSearcher::new(&c, &index, &graph);
        let mut scratch = SearchScratch::new();
        scratch.verify().unwrap();
        let terms = vec![
            TermInput::new(FullTextQuery::keywords("alpha")),
            TermInput::new(FullTextQuery::keywords("beta")),
        ];
        let result = searcher.search_with(&terms, &TopKConfig::with_k(3), &mut scratch);
        assert!(!result.tuples.is_empty());
        scratch.verify().unwrap();
        verify_search_stats(&result.stats).unwrap();

        scratch.corrupt_push_kth_score(f64::INFINITY);
        let violations = scratch.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "kth-order"), "{violations:?}");
    }

    #[test]
    fn inconsistent_stats_fail() {
        let stats = SearchStats { tuples_disconnected: 3, tuples_scored: 1, ..Default::default() };
        let violations = verify_search_stats(&stats).unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "stats-counters"));
        verify_search_stats(&SearchStats::default()).unwrap();
    }
}
