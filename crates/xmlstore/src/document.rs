//! Documents and the programmatic document builder.

use serde::{Deserialize, Serialize};

use crate::dewey::DeweyId;
use crate::error::{Result, XmlStoreError};
use crate::node::{DocId, Node, NodeId, NodeKind};
use crate::path::{LabelPath, PathId, PathTable};
use crate::symbol::{Symbol, SymbolTable};

/// A stored XML document: an arena of nodes in document order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    /// Identifier of the document within its collection.
    pub id: DocId,
    /// Source URI or generated name of the document.
    pub uri: String,
    nodes: Vec<Node>,
}

impl Document {
    pub(crate) fn from_parts(id: DocId, uri: String, nodes: Vec<Node>) -> Self {
        Document { id, uri, nodes }
    }

    /// Ordinal of the root element (always 0 for non-empty documents).
    pub fn root(&self) -> u32 {
        0
    }

    /// Number of nodes in the document.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the document holds no nodes (never the case for documents
    /// produced by the builder or parser).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node by its ordinal.
    pub fn node(&self, ordinal: u32) -> Result<&Node> {
        self.nodes
            .get(ordinal as usize)
            .ok_or(XmlStoreError::UnknownNode { doc: self.id.0, node: ordinal })
    }

    /// Borrow a node by its ordinal without bounds diagnostics.
    pub fn node_unchecked(&self, ordinal: u32) -> &Node {
        &self.nodes[ordinal as usize]
    }

    /// Iterates over `(ordinal, node)` pairs in document order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (i as u32, n))
    }

    /// Global node ids of all nodes, in document order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(move |n| NodeId::new(self.id, n))
    }

    /// Ordinals of the children of `ordinal`, in document order.
    pub fn children(&self, ordinal: u32) -> &[u32] {
        &self.nodes[ordinal as usize].children
    }

    /// Ordinal of the parent of `ordinal`, if any.
    pub fn parent(&self, ordinal: u32) -> Option<u32> {
        self.nodes[ordinal as usize].parent
    }

    /// The SEDA `content(n)` of a node: the concatenation of the node's own
    /// text and all descendant text, in document order, separated by single
    /// spaces.
    pub fn content(&self, ordinal: u32) -> String {
        let mut pieces: Vec<&str> = Vec::new();
        let mut stack = vec![ordinal];
        // Iterative pre-order walk; children are pushed in reverse so they are
        // visited in document order.
        while let Some(current) = stack.pop() {
            let node = &self.nodes[current as usize];
            if let Some(text) = node.text.as_deref() {
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    pieces.push(trimmed);
                }
            }
            for &child in node.children.iter().rev() {
                stack.push(child);
            }
        }
        pieces.join(" ")
    }

    /// Finds the node with the given Dewey id, if present.
    pub fn node_by_dewey(&self, dewey: &DeweyId) -> Option<u32> {
        // Nodes are in document order and Dewey order coincides with document
        // order, so a binary search over the arena works.
        self.nodes.binary_search_by(|n| n.dewey.cmp(dewey)).ok().map(|i| i as u32)
    }

    /// Ordinals of all nodes whose context equals `path`.
    pub fn nodes_with_path(&self, path: PathId) -> Vec<u32> {
        self.iter().filter(|(_, n)| n.path == path).map(|(i, _)| i).collect()
    }

    /// Ordinals of all nodes with the given name.
    pub fn nodes_with_name(&self, name: Symbol) -> Vec<u32> {
        self.iter().filter(|(_, n)| n.name == name).map(|(i, _)| i).collect()
    }

    /// The set of distinct context paths occurring in this document.
    pub fn distinct_paths(&self) -> Vec<PathId> {
        let mut paths: Vec<PathId> = self.nodes.iter().map(|n| n.path).collect();
        paths.sort_unstable();
        paths.dedup();
        paths
    }

    /// Backing store for the test-only corruption hook in [`crate::audit`];
    /// kept here because the node arena is private to this module.
    pub(crate) fn corrupt_node_dewey_impl(&mut self, ordinal: u32, dewey: DeweyId) {
        self.nodes[ordinal as usize].dewey = dewey;
    }

    /// Evaluates a relative step expression from `ordinal`.
    ///
    /// Relative XML keys (Sec. 7 of the paper) use steps such as
    /// `../trade_country`: each `..` moves to the parent, each label moves to
    /// the children with that label.  Returns every node reached.
    pub fn eval_relative_steps(
        &self,
        ordinal: u32,
        steps: &[RelativeStep],
        symbols: &SymbolTable,
    ) -> Vec<u32> {
        let mut frontier = vec![ordinal];
        for step in steps {
            let mut next = Vec::new();
            for &current in &frontier {
                match step {
                    RelativeStep::Parent => {
                        if let Some(p) = self.parent(current) {
                            next.push(p);
                        }
                    }
                    RelativeStep::Child(label) => {
                        for &child in self.children(current) {
                            if symbols.resolve(self.nodes[child as usize].name) == label {
                                next.push(child);
                            }
                        }
                    }
                    RelativeStep::SelfNode => next.push(current),
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        frontier
    }
}

/// One step of a relative path expression (used by relative XML keys).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelativeStep {
    /// `..` — move to the parent.
    Parent,
    /// `label` — move to children with this label.
    Child(String),
    /// `.` — stay on the current node.
    SelfNode,
}

impl RelativeStep {
    /// Parses a `.`, `..`, or label-separated relative expression such as
    /// `../trade_country` into steps.
    pub fn parse_expr(expr: &str) -> Vec<RelativeStep> {
        expr.split('/')
            .filter(|s| !s.is_empty())
            .map(|s| match s {
                "." => RelativeStep::SelfNode,
                ".." => RelativeStep::Parent,
                label => RelativeStep::Child(label.to_string()),
            })
            .collect()
    }
}

/// Streaming builder for a single document.
///
/// The builder assigns Dewey ids and interned context paths while elements are
/// opened and closed, so the finished [`Document`] is immediately usable by the
/// indexes without a second pass.
pub struct DocumentBuilder<'a> {
    symbols: &'a mut SymbolTable,
    paths: &'a mut PathTable,
    doc_id: DocId,
    uri: String,
    nodes: Vec<Node>,
    /// Stack of open element ordinals.
    open: Vec<u32>,
    /// Stack of label symbols from root to the current open element.
    label_stack: Vec<Symbol>,
}

impl<'a> DocumentBuilder<'a> {
    /// Creates a builder that interns names and paths into the given tables.
    pub fn new(
        symbols: &'a mut SymbolTable,
        paths: &'a mut PathTable,
        doc_id: DocId,
        uri: impl Into<String>,
    ) -> Self {
        DocumentBuilder {
            symbols,
            paths,
            doc_id,
            uri: uri.into(),
            nodes: Vec::new(),
            open: Vec::new(),
            label_stack: Vec::new(),
        }
    }

    fn push_node(&mut self, name: Symbol, kind: NodeKind, text: Option<String>) -> u32 {
        let ordinal = self.nodes.len() as u32;
        let (parent, dewey) = match self.open.last() {
            Some(&parent) => {
                let parent_node = &self.nodes[parent as usize];
                let child_ordinal = parent_node.children.len() as u32 + 1;
                (Some(parent), parent_node.dewey.child(child_ordinal))
            }
            None => (None, DeweyId::root()),
        };
        self.label_stack.push(name);
        let path = self.paths.intern(LabelPath::new(self.label_stack.clone()));
        self.label_stack.pop();
        if let Some(parent) = parent {
            self.nodes[parent as usize].children.push(ordinal);
        }
        self.nodes.push(Node { name, kind, parent, children: Vec::new(), text, dewey, path });
        ordinal
    }

    /// Opens a new element.  Returns its ordinal.
    pub fn start_element(&mut self, name: &str) -> Result<u32> {
        if self.open.is_empty() && !self.nodes.is_empty() {
            return Err(XmlStoreError::BuilderState(format!(
                "second root element {name:?} in document {}",
                self.uri
            )));
        }
        let sym = self.symbols.intern(name);
        let ordinal = self.push_node(sym, NodeKind::Element, None);
        self.open.push(ordinal);
        self.label_stack.push(sym);
        Ok(ordinal)
    }

    /// Closes the most recently opened element.
    pub fn end_element(&mut self) -> Result<()> {
        self.open.pop().ok_or_else(|| {
            XmlStoreError::BuilderState("end_element without matching start_element".into())
        })?;
        self.label_stack.pop();
        Ok(())
    }

    /// Adds an attribute to the currently open element.
    pub fn attribute(&mut self, name: &str, value: &str) -> Result<u32> {
        if self.open.is_empty() {
            return Err(XmlStoreError::BuilderState(format!(
                "attribute {name:?} outside of any element"
            )));
        }
        let sym = self.symbols.intern(name);
        Ok(self.push_node(sym, NodeKind::Attribute, Some(value.to_string())))
    }

    /// Appends text to the currently open element.
    pub fn text(&mut self, value: &str) -> Result<()> {
        let &current = self.open.last().ok_or_else(|| {
            XmlStoreError::BuilderState("text content outside of any element".into())
        })?;
        let node = &mut self.nodes[current as usize];
        match &mut node.text {
            Some(existing) => {
                existing.push(' ');
                existing.push_str(value);
            }
            None => node.text = Some(value.to_string()),
        }
        Ok(())
    }

    /// Convenience: `start_element`, `text`, `end_element` in one call.
    pub fn leaf(&mut self, name: &str, value: &str) -> Result<u32> {
        let ordinal = self.start_element(name)?;
        self.text(value)?;
        self.end_element()?;
        Ok(ordinal)
    }

    /// Finishes the document.  Fails if elements are still open or the
    /// document is empty.
    pub fn finish(self) -> Result<Document> {
        if !self.open.is_empty() {
            return Err(XmlStoreError::BuilderState(format!(
                "{} element(s) still open at finish",
                self.open.len()
            )));
        }
        if self.nodes.is_empty() {
            return Err(XmlStoreError::EmptyDocument);
        }
        Ok(Document::from_parts(self.doc_id, self.uri, self.nodes))
    }

    /// The document id this builder was created for.
    pub fn doc_id(&self) -> DocId {
        self.doc_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample() -> (SymbolTable, PathTable, Document) {
        let mut symbols = SymbolTable::new();
        let mut paths = PathTable::new();
        let mut b = DocumentBuilder::new(&mut symbols, &mut paths, DocId(0), "sample.xml");
        b.start_element("country").unwrap();
        b.attribute("name", "United States").unwrap();
        b.leaf("year", "2006").unwrap();
        b.start_element("economy").unwrap();
        b.leaf("GDP_ppp", "12.31T").unwrap();
        b.start_element("import_partners").unwrap();
        b.start_element("item").unwrap();
        b.leaf("trade_country", "China").unwrap();
        b.leaf("percentage", "15").unwrap();
        b.end_element().unwrap();
        b.start_element("item").unwrap();
        b.leaf("trade_country", "Canada").unwrap();
        b.leaf("percentage", "16.9").unwrap();
        b.end_element().unwrap();
        b.end_element().unwrap();
        b.end_element().unwrap();
        b.end_element().unwrap();
        let doc = b.finish().unwrap();
        (symbols, paths, doc)
    }

    #[test]
    fn builder_assigns_dewey_ids_in_document_order() {
        let (_, _, doc) = build_sample();
        let root = doc.node(0).unwrap();
        assert_eq!(root.dewey, DeweyId::root());
        let mut previous = DeweyId::root();
        for (i, node) in doc.iter().skip(1) {
            assert!(node.dewey > previous, "node {i} out of Dewey order");
            previous = node.dewey.clone();
        }
    }

    #[test]
    fn builder_interns_contexts() {
        let (symbols, paths, doc) = build_sample();
        let percentage_path =
            paths.get_str(&symbols, "/country/economy/import_partners/item/percentage").unwrap();
        let hits = doc.nodes_with_path(percentage_path);
        assert_eq!(hits.len(), 2);
        for h in hits {
            assert_eq!(symbols.resolve(doc.node(h).unwrap().name), "percentage");
        }
    }

    #[test]
    fn content_concatenates_descendant_text_in_document_order() {
        let (symbols, _, doc) = build_sample();
        let item_name = symbols.get("item").unwrap();
        let first_item = doc.nodes_with_name(item_name)[0];
        assert_eq!(doc.content(first_item), "China 15");
        assert!(doc.content(0).contains("United States"));
        assert!(doc.content(0).contains("16.9"));
    }

    #[test]
    fn node_by_dewey_finds_nodes() {
        let (_, _, doc) = build_sample();
        for (i, node) in doc.iter() {
            assert_eq!(doc.node_by_dewey(&node.dewey), Some(i));
        }
        assert_eq!(doc.node_by_dewey(&"1.99".parse().unwrap()), None);
    }

    #[test]
    fn attributes_are_children_with_text() {
        let (symbols, paths, doc) = build_sample();
        let name_path = paths.get_str(&symbols, "/country/name").unwrap();
        let hits = doc.nodes_with_path(name_path);
        assert_eq!(hits.len(), 1);
        let attr = doc.node(hits[0]).unwrap();
        assert_eq!(attr.kind, NodeKind::Attribute);
        assert_eq!(attr.text.as_deref(), Some("United States"));
        assert_eq!(attr.parent, Some(0));
    }

    #[test]
    fn relative_steps_navigate_siblings() {
        let (symbols, paths, doc) = build_sample();
        let percentage_path =
            paths.get_str(&symbols, "/country/economy/import_partners/item/percentage").unwrap();
        let percentage_nodes = doc.nodes_with_path(percentage_path);
        let steps = RelativeStep::parse_expr("../trade_country");
        let siblings = doc.eval_relative_steps(percentage_nodes[0], &steps, &symbols);
        assert_eq!(siblings.len(), 1);
        assert_eq!(doc.content(siblings[0]), "China");
    }

    #[test]
    fn relative_step_parsing() {
        assert_eq!(
            RelativeStep::parse_expr("../trade_country"),
            vec![RelativeStep::Parent, RelativeStep::Child("trade_country".into())]
        );
        assert_eq!(RelativeStep::parse_expr("."), vec![RelativeStep::SelfNode]);
        assert_eq!(RelativeStep::parse_expr(""), vec![]);
    }

    #[test]
    fn builder_rejects_unbalanced_usage() {
        let mut symbols = SymbolTable::new();
        let mut paths = PathTable::new();
        let mut b = DocumentBuilder::new(&mut symbols, &mut paths, DocId(0), "bad.xml");
        assert!(b.end_element().is_err());
        assert!(b.text("dangling").is_err());
        assert!(b.attribute("a", "b").is_err());
        b.start_element("root").unwrap();
        let unfinished = b.finish();
        assert!(unfinished.is_err());
    }

    #[test]
    fn builder_rejects_second_root() {
        let mut symbols = SymbolTable::new();
        let mut paths = PathTable::new();
        let mut b = DocumentBuilder::new(&mut symbols, &mut paths, DocId(0), "two_roots.xml");
        b.start_element("a").unwrap();
        b.end_element().unwrap();
        assert!(b.start_element("b").is_err());
    }

    #[test]
    fn empty_document_rejected() {
        let mut symbols = SymbolTable::new();
        let mut paths = PathTable::new();
        let b = DocumentBuilder::new(&mut symbols, &mut paths, DocId(0), "empty.xml");
        assert!(matches!(b.finish(), Err(XmlStoreError::EmptyDocument)));
    }

    #[test]
    fn distinct_paths_deduplicates() {
        let (_, _, doc) = build_sample();
        let distinct = doc.distinct_paths();
        // 9 distinct contexts in the sample document even though `item`,
        // `trade_country` and `percentage` occur twice each.
        assert_eq!(distinct.len(), 9);
    }
}
