//! Interning of root-to-leaf label paths ("contexts" in SEDA terminology).
//!
//! The *context* of a data node is its root-to-leaf path following only
//! parent/child edges (Definition 2 of the paper), e.g.
//! `/country/economy/import_partners/item/percentage`.  Contexts are the unit
//! the context summary, the keyword→path index (Fig. 8), dataguides, and the
//! fact/dimension definitions all operate on, so the store interns every
//! distinct path once and hands out a dense [`PathId`].

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::symbol::{Symbol, SymbolTable};

/// Interned identifier for a distinct root-to-leaf label path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathId(pub u32);

impl PathId {
    /// Raw index into the owning [`PathTable`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single interned path: the sequence of label symbols from the document
/// root to the node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabelPath {
    steps: Vec<Symbol>,
}

impl LabelPath {
    /// Builds a label path from label symbols, root label first.
    pub fn new(steps: Vec<Symbol>) -> Self {
        LabelPath { steps }
    }

    /// The label symbols, root first.
    pub fn steps(&self) -> &[Symbol] {
        &self.steps
    }

    /// The last (leaf) label of the path, if any.
    pub fn leaf(&self) -> Option<Symbol> {
        self.steps.last().copied()
    }

    /// Number of steps (the depth of nodes with this context).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty path (never produced for real nodes).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// True iff `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &LabelPath) -> bool {
        other.steps.len() >= self.steps.len() && other.steps[..self.steps.len()] == self.steps[..]
    }

    /// Renders the path in the `/a/b/c` notation used throughout the paper.
    pub fn display(&self, symbols: &SymbolTable) -> String {
        let mut s = String::new();
        for step in &self.steps {
            s.push('/');
            s.push_str(symbols.resolve(*step));
        }
        if s.is_empty() {
            s.push('/');
        }
        s
    }
}

/// Append-only intern table for label paths.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct PathTable {
    paths: Vec<LabelPath>,
    #[serde(skip)]
    lookup: HashMap<LabelPath, PathId>,
}

impl PathTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a label path, returning the existing id if it was seen before.
    pub fn intern(&mut self, path: LabelPath) -> PathId {
        if let Some(&id) = self.lookup.get(&path) {
            return id;
        }
        let id = PathId(self.paths.len() as u32);
        self.lookup.insert(path.clone(), id);
        self.paths.push(path);
        id
    }

    /// Looks up an already-interned path without inserting.
    pub fn get(&self, path: &LabelPath) -> Option<PathId> {
        self.lookup.get(path).copied()
    }

    /// Resolves a path id back to the label path.
    pub fn resolve(&self, id: PathId) -> &LabelPath {
        &self.paths[id.index()]
    }

    /// Number of distinct paths interned so far.  For the World Factbook data
    /// set the paper reports 1984 distinct paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when no path has been interned.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Iterates over `(id, path)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &LabelPath)> {
        self.paths.iter().enumerate().map(|(i, p)| (PathId(i as u32), p))
    }

    /// All path ids whose leaf label equals `leaf`.
    pub fn paths_with_leaf(&self, leaf: Symbol) -> Vec<PathId> {
        self.iter().filter(|(_, p)| p.leaf() == Some(leaf)).map(|(id, _)| id).collect()
    }

    /// All path ids that contain `label` anywhere on the path.
    pub fn paths_containing(&self, label: Symbol) -> Vec<PathId> {
        self.iter().filter(|(_, p)| p.steps().contains(&label)).map(|(id, _)| id).collect()
    }

    /// Parses a `/a/b/c` string against a symbol table, interning any label
    /// that has not been seen yet, and returns the interned path id.
    pub fn intern_str(&mut self, symbols: &mut SymbolTable, path: &str) -> PathId {
        let steps: Vec<Symbol> =
            path.split('/').filter(|s| !s.is_empty()).map(|s| symbols.intern(s)).collect();
        self.intern(LabelPath::new(steps))
    }

    /// Looks up a `/a/b/c` string without interning. Returns `None` when the
    /// path (or any of its labels) is unknown.
    pub fn get_str(&self, symbols: &SymbolTable, path: &str) -> Option<PathId> {
        let steps: Option<Vec<Symbol>> =
            path.split('/').filter(|s| !s.is_empty()).map(|s| symbols.get(s)).collect();
        self.get(&LabelPath::new(steps?))
    }

    /// Rebuilds the reverse lookup map after deserialisation.
    pub fn rebuild_lookup(&mut self) {
        self.lookup =
            self.paths.iter().enumerate().map(|(i, p)| (p.clone(), PathId(i as u32))).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(paths: &[&str]) -> (SymbolTable, PathTable, Vec<PathId>) {
        let mut symbols = SymbolTable::new();
        let mut table = PathTable::new();
        let ids = paths.iter().map(|p| table.intern_str(&mut symbols, p)).collect();
        (symbols, table, ids)
    }

    #[test]
    fn intern_str_is_idempotent() {
        let (_, table, ids) = table_with(&["/country/economy/GDP", "/country/economy/GDP"]);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn display_roundtrips_slash_notation() {
        let (symbols, table, ids) = table_with(&["/country/economy/import_partners/item"]);
        let rendered = table.resolve(ids[0]).display(&symbols);
        assert_eq!(rendered, "/country/economy/import_partners/item");
    }

    #[test]
    fn get_str_finds_interned_paths_only() {
        let (symbols, table, _) = table_with(&["/country/year"]);
        assert!(table.get_str(&symbols, "/country/year").is_some());
        assert!(table.get_str(&symbols, "/country/economy").is_none());
        assert!(table.get_str(&symbols, "/unknown_label").is_none());
    }

    #[test]
    fn paths_with_leaf_filters_by_last_label() {
        let (symbols, table, _) = table_with(&[
            "/country/economy/import_partners/item/trade_country",
            "/country/economy/export_partners/item/trade_country",
            "/country/economy/GDP",
        ]);
        let leaf = symbols.get("trade_country").unwrap();
        assert_eq!(table.paths_with_leaf(leaf).len(), 2);
        let gdp = symbols.get("GDP").unwrap();
        assert_eq!(table.paths_with_leaf(gdp).len(), 1);
    }

    #[test]
    fn paths_containing_matches_interior_labels() {
        let (symbols, table, _) = table_with(&[
            "/country/economy/import_partners/item/percentage",
            "/country/economy/export_partners/item/percentage",
            "/country/geography",
        ]);
        let economy = symbols.get("economy").unwrap();
        assert_eq!(table.paths_containing(economy).len(), 2);
    }

    #[test]
    fn prefix_relation() {
        let mut symbols = SymbolTable::new();
        let a = LabelPath::new(vec![symbols.intern("country")]);
        let b = LabelPath::new(vec![symbols.intern("country"), symbols.intern("economy")]);
        assert!(a.is_prefix_of(&b));
        assert!(a.is_prefix_of(&a));
        assert!(!b.is_prefix_of(&a));
    }

    #[test]
    fn leaf_and_len() {
        let (symbols, table, ids) = table_with(&["/country/economy/GDP"]);
        let p = table.resolve(ids[0]);
        assert_eq!(p.len(), 3);
        assert_eq!(symbols.resolve(p.leaf().unwrap()), "GDP");
    }

    #[test]
    fn rebuild_lookup_restores_get() {
        let (_, table, _) = table_with(&["/a/b", "/a/c"]);
        let mut clone = PathTable { paths: table.paths.clone(), lookup: HashMap::new() };
        clone.rebuild_lookup();
        assert_eq!(clone.get(table.resolve(PathId(1))), Some(PathId(1)));
    }
}
