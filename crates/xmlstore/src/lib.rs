//! # seda-xmlstore
//!
//! Native XML document store underpinning the SEDA reproduction.  It plays the
//! role DB2 pureXML plays in the paper: it stores XML documents, assigns Dewey
//! order identifiers to nodes, interns element names and root-to-leaf *context*
//! paths, and supports retrieval of node content by node id.
//!
//! The store is deliberately simple — an in-memory arena per document with
//! shared intern tables per collection — because the paper's algorithms only
//! need ordered node references, context lookup and content retrieval from the
//! storage layer.
//!
//! ```
//! use seda_xmlstore::{Collection, parse_into};
//!
//! let mut collection = Collection::new();
//! parse_into(&mut collection, "us.xml",
//!     "<country><name>United States</name><year>2006</year></country>").unwrap();
//! let year = collection.paths().get_str(collection.symbols(), "/country/year").unwrap();
//! let nodes = collection.nodes_with_path(year);
//! assert_eq!(collection.content(nodes[0]).unwrap(), "2006");
//! ```

pub mod audit;
pub mod collection;
pub mod dewey;
pub mod document;
pub mod error;
pub mod node;
pub mod parse;
pub mod path;
pub mod symbol;

pub use audit::{AuditResult, InvariantViolation};
pub use collection::Collection;
pub use dewey::DeweyId;
pub use document::{Document, DocumentBuilder, RelativeStep};
pub use error::{Result, XmlStoreError};
pub use node::{DocId, Node, NodeId, NodeKind};
pub use parse::{parse_collection, parse_into};
pub use path::{LabelPath, PathId, PathTable};
pub use symbol::{Symbol, SymbolTable};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::dewey::DeweyId;

    fn arb_dewey() -> impl Strategy<Value = DeweyId> {
        proptest::collection::vec(1u32..20, 1..8).prop_map(|v| DeweyId::new(v).unwrap())
    }

    proptest! {
        /// The ordering must be a total order consistent with equality.
        #[test]
        fn dewey_ordering_is_consistent(a in arb_dewey(), b in arb_dewey()) {
            use std::cmp::Ordering;
            match a.cmp(&b) {
                Ordering::Equal => prop_assert_eq!(&a, &b),
                Ordering::Less => prop_assert!(b.cmp(&a) == Ordering::Greater),
                Ordering::Greater => prop_assert!(b.cmp(&a) == Ordering::Less),
            }
        }

        /// An ancestor's Dewey id always sorts before its descendants.
        #[test]
        fn ancestors_sort_before_descendants(a in arb_dewey(), extra in proptest::collection::vec(1u32..20, 1..4)) {
            let mut child = a.clone();
            for c in extra { child = child.child(c); }
            prop_assert!(a.is_ancestor_of(&child));
            prop_assert!(a < child);
            prop_assert_eq!(a.common_ancestor(&child).unwrap(), a.clone());
        }

        /// tree_distance is a metric: symmetric, zero iff equal, triangle holds
        /// for nodes within one document tree.
        #[test]
        fn tree_distance_is_a_metric(a in arb_dewey(), b in arb_dewey(), c in arb_dewey()) {
            prop_assert_eq!(a.tree_distance(&b), b.tree_distance(&a));
            prop_assert_eq!(a.tree_distance(&a), 0);
            if a.tree_distance(&b) == 0 { prop_assert_eq!(&a, &b); }
            prop_assert!(a.tree_distance(&c) <= a.tree_distance(&b) + b.tree_distance(&c));
        }

        /// parent() undoes child().
        #[test]
        fn parent_undoes_child(a in arb_dewey(), ord in 1u32..50) {
            prop_assert_eq!(a.child(ord).parent().unwrap(), a);
        }

        /// Display/FromStr round-trip.
        #[test]
        fn dewey_display_roundtrip(a in arb_dewey()) {
            let parsed: DeweyId = a.to_string().parse().unwrap();
            prop_assert_eq!(parsed, a);
        }
    }
}
