//! Interning of element/attribute names.
//!
//! Heterogeneous XML corpora repeat a small vocabulary of tag names across a
//! very large number of nodes, so the store keeps each distinct name once and
//! refers to it by a dense `Symbol` index everywhere else.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Interned identifier for an element or attribute name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index into the owning [`SymbolTable`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only intern table for names.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct SymbolTable {
    names: Vec<String>,
    #[serde(skip)]
    lookup: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing symbol if it was seen before.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.lookup.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.lookup.insert(name.to_string(), sym);
        sym
    }

    /// Looks up an already-interned name without inserting.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.lookup.get(name).copied()
    }

    /// Resolves a symbol back to its name. Panics if the symbol came from a
    /// different table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct names interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no name has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }

    /// Rebuilds the reverse lookup map; needed after deserialisation because
    /// the map is not serialised.
    pub fn rebuild_lookup(&mut self) {
        self.lookup =
            self.names.iter().enumerate().map(|(i, n)| (n.clone(), Symbol(i as u32))).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("country");
        let b = t.intern("country");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_symbols() {
        let mut t = SymbolTable::new();
        let a = t.intern("country");
        let b = t.intern("economy");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "country");
        assert_eq!(t.resolve(b), "economy");
    }

    #[test]
    fn get_does_not_insert() {
        let mut t = SymbolTable::new();
        assert!(t.get("gdp").is_none());
        t.intern("gdp");
        assert!(t.get("gdp").is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iteration_preserves_interning_order() {
        let mut t = SymbolTable::new();
        for name in ["a", "b", "c"] {
            t.intern(name);
        }
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn rebuild_lookup_restores_get() {
        let mut t = SymbolTable::new();
        t.intern("x");
        t.intern("y");
        let mut clone = SymbolTable { names: t.names.clone(), lookup: HashMap::new() };
        assert!(clone.get("x").is_none(), "lookup is empty before rebuild");
        clone.rebuild_lookup();
        assert_eq!(clone.get("x"), Some(Symbol(0)));
        assert_eq!(clone.get("y"), Some(Symbol(1)));
    }
}
