//! Parsing XML text into the store.
//!
//! The parser is a small hand-rolled scanner (the build environment has no
//! crates.io access, so `quick-xml` is not available): it handles elements,
//! attributes, self-closing tags, character data, CDATA sections, comments,
//! processing instructions, DOCTYPE declarations and the five predefined
//! entities plus numeric character references.  End tags are checked against
//! the open-element stack, so unbalanced documents are rejected.

use crate::collection::Collection;
use crate::error::{Result, XmlStoreError};
use crate::node::DocId;

/// Parses a single XML document from text and inserts it into the collection.
///
/// Namespaces are not expanded: SEDA's contexts and query terms operate on the
/// literal tag names that appear in the data, so prefixed names are kept
/// verbatim.  Comments, processing instructions and the XML declaration are
/// skipped; CDATA is treated as text.
pub fn parse_into(collection: &mut Collection, uri: &str, xml: &str) -> Result<DocId> {
    let mut builder = collection.build_document(uri);
    let mut scanner = Scanner::new(xml);
    let mut open_tags: Vec<String> = Vec::new();
    let mut saw_root = false;

    while let Some(event) = scanner.next_event()? {
        match event {
            Event::Start { name, attributes, self_closing } => {
                if saw_root && open_tags.is_empty() {
                    return Err(XmlStoreError::Parse(format!(
                        "second root element {name:?} in document {uri}"
                    )));
                }
                builder.start_element(&name)?;
                saw_root = true;
                for (key, value) in attributes {
                    builder.attribute(&key, &value)?;
                }
                if self_closing {
                    builder.end_element()?;
                } else {
                    open_tags.push(name);
                }
            }
            Event::End { name } => {
                let Some(open) = open_tags.pop() else {
                    return Err(XmlStoreError::Parse(format!(
                        "closing tag </{name}> without matching opening tag"
                    )));
                };
                if open != name {
                    return Err(XmlStoreError::Parse(format!(
                        "closing tag </{name}> does not match open element <{open}>"
                    )));
                }
                builder.end_element()?;
            }
            Event::Text(value) => {
                let trimmed = value.trim();
                if !trimmed.is_empty() {
                    if open_tags.is_empty() {
                        return Err(XmlStoreError::Parse(format!(
                            "text content {trimmed:?} outside the root element"
                        )));
                    }
                    builder.text(trimmed)?;
                }
            }
        }
    }

    if !saw_root {
        return Err(XmlStoreError::EmptyDocument);
    }
    if let Some(open) = open_tags.last() {
        return Err(XmlStoreError::Parse(format!(
            "unbalanced element tags: <{open}> never closed"
        )));
    }
    let document = builder.finish()?;
    collection.insert(document)
}

/// Parses many XML documents (uri, text) into a fresh collection.
pub fn parse_collection<'a, I>(documents: I) -> Result<Collection>
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut collection = Collection::new();
    for (uri, xml) in documents {
        parse_into(&mut collection, uri, xml)?;
    }
    Ok(collection)
}

/// One markup event produced by the scanner.
enum Event {
    Start { name: String, attributes: Vec<(String, String)>, self_closing: bool },
    End { name: String },
    Text(String),
}

/// Byte-level XML scanner over the input text.
struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner { bytes: text.as_bytes(), pos: 0 }
    }

    fn next_event(&mut self) -> Result<Option<Event>> {
        loop {
            if self.pos >= self.bytes.len() {
                return Ok(None);
            }
            if self.bytes[self.pos] != b'<' {
                return self.scan_text().map(Some);
            }
            // Markup: dispatch on what follows '<'.
            match self.bytes.get(self.pos + 1) {
                Some(b'!') if self.starts_with("<!--") => self.skip_until("-->")?,
                Some(b'!') if self.starts_with("<![CDATA[") => {
                    return self.scan_cdata().map(Some);
                }
                Some(b'!') => self.skip_declaration()?,
                Some(b'?') => self.skip_until("?>")?,
                Some(b'/') => return self.scan_end_tag().map(Some),
                Some(_) => return self.scan_start_tag().map(Some),
                None => return Err(XmlStoreError::Parse("dangling '<' at end of input".into())),
            }
        }
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.bytes[self.pos..].starts_with(prefix.as_bytes())
    }

    fn skip_until(&mut self, terminator: &str) -> Result<()> {
        let t = terminator.as_bytes();
        let mut i = self.pos;
        while i + t.len() <= self.bytes.len() {
            if &self.bytes[i..i + t.len()] == t {
                self.pos = i + t.len();
                return Ok(());
            }
            i += 1;
        }
        Err(XmlStoreError::Parse(format!("unterminated markup, expected {terminator:?}")))
    }

    /// Skips `<!DOCTYPE ...>` (tracking nested `[` internal subsets).
    fn skip_declaration(&mut self) -> Result<()> {
        let mut depth = 0usize;
        let mut i = self.pos;
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos = i + 1;
                    return Ok(());
                }
                _ => {}
            }
            i += 1;
        }
        Err(XmlStoreError::Parse("unterminated <! declaration".into()))
    }

    fn scan_text(&mut self) -> Result<Event> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'<' {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| XmlStoreError::Parse(e.to_string()))?;
        Ok(Event::Text(unescape(raw)?))
    }

    fn scan_cdata(&mut self) -> Result<Event> {
        let start = self.pos + "<![CDATA[".len();
        self.pos = start;
        self.skip_until("]]>")?;
        let raw = std::str::from_utf8(&self.bytes[start..self.pos - "]]>".len()])
            .map_err(|e| XmlStoreError::Parse(e.to_string()))?;
        Ok(Event::Text(raw.to_string()))
    }

    fn scan_end_tag(&mut self) -> Result<Event> {
        self.pos += 2; // consume "</"
        let name = self.scan_name()?;
        self.skip_whitespace();
        if self.bytes.get(self.pos) != Some(&b'>') {
            return Err(XmlStoreError::Parse(format!("malformed closing tag </{name}")));
        }
        self.pos += 1;
        Ok(Event::End { name })
    }

    fn scan_start_tag(&mut self) -> Result<Event> {
        self.pos += 1; // consume '<'
        let name = self.scan_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok(Event::Start { name, attributes, self_closing: false });
                }
                Some(b'/') if self.bytes.get(self.pos + 1) == Some(&b'>') => {
                    self.pos += 2;
                    return Ok(Event::Start { name, attributes, self_closing: true });
                }
                Some(_) => attributes.push(self.scan_attribute(&name)?),
                None => {
                    return Err(XmlStoreError::Parse(format!("unterminated opening tag <{name}")));
                }
            }
        }
    }

    fn scan_attribute(&mut self, element: &str) -> Result<(String, String)> {
        let key = self.scan_name()?;
        self.skip_whitespace();
        if self.bytes.get(self.pos) != Some(&b'=') {
            return Err(XmlStoreError::Parse(format!(
                "attribute {key:?} of <{element}> has no value"
            )));
        }
        self.pos += 1;
        self.skip_whitespace();
        let quote = match self.bytes.get(self.pos) {
            Some(&q @ (b'"' | b'\'')) => q,
            _ => {
                return Err(XmlStoreError::Parse(format!(
                    "attribute {key:?} of <{element}> has an unquoted value"
                )));
            }
        };
        self.pos += 1;
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != quote {
            self.pos += 1;
        }
        if self.pos >= self.bytes.len() {
            return Err(XmlStoreError::Parse(format!(
                "unterminated value of attribute {key:?} on <{element}>"
            )));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| XmlStoreError::Parse(e.to_string()))?;
        self.pos += 1; // closing quote
        Ok((key, unescape(raw)?))
    }

    fn scan_name(&mut self) -> Result<String> {
        let start = self.pos;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b' ' | b'\t' | b'\r' | b'\n' | b'>' | b'/' | b'=' => break,
                b'<' => {
                    return Err(XmlStoreError::Parse("unexpected '<' inside a tag".into()));
                }
                _ => self.pos += 1,
            }
        }
        if self.pos == start {
            return Err(XmlStoreError::Parse("empty tag or attribute name".into()));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map(str::to_string)
            .map_err(|e| XmlStoreError::Parse(e.to_string()))
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }
}

/// Resolves the predefined entities and numeric character references.
fn unescape(raw: &str) -> Result<String> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let Some(semi) = rest.find(';') else {
            return Err(XmlStoreError::Parse(format!("unterminated entity in {raw:?}")));
        };
        let entity = &rest[1..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with('#') => {
                let code = if let Some(hex) =
                    entity.strip_prefix("#x").or(entity.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16)
                } else {
                    entity[1..].parse::<u32>()
                }
                .map_err(|_| XmlStoreError::Parse(format!("bad character reference &{entity};")))?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    XmlStoreError::Parse(format!("invalid character reference &{entity};"))
                })?);
            }
            _ => {
                return Err(XmlStoreError::Parse(format!("unknown entity &{entity};")));
            }
        }
        rest = &rest[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FACTBOOK_FRAGMENT: &str = r#"
        <country id="us2006">
          <name>United States</name>
          <year>2006</year>
          <economy>
            <GDP_ppp>12.31T</GDP_ppp>
            <import_partners>
              <item><trade_country>China</trade_country><percentage>15</percentage></item>
              <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
            </import_partners>
          </economy>
        </country>"#;

    #[test]
    fn parses_factbook_fragment() {
        let mut c = Collection::new();
        let doc_id = parse_into(&mut c, "us2006.xml", FACTBOOK_FRAGMENT).unwrap();
        let doc = c.document(doc_id).unwrap();
        assert!(doc.len() > 10);
        let percentage =
            c.paths().get_str(c.symbols(), "/country/economy/import_partners/item/percentage");
        assert!(percentage.is_some());
        assert_eq!(c.nodes_with_path(percentage.unwrap()).len(), 2);
    }

    #[test]
    fn attributes_become_child_nodes() {
        let mut c = Collection::new();
        parse_into(&mut c, "a.xml", FACTBOOK_FRAGMENT).unwrap();
        let id_path = c.paths().get_str(c.symbols(), "/country/id").unwrap();
        let nodes = c.nodes_with_path(id_path);
        assert_eq!(nodes.len(), 1);
        assert_eq!(c.content(nodes[0]).unwrap(), "us2006");
    }

    #[test]
    fn self_closing_elements_are_supported() {
        let mut c = Collection::new();
        parse_into(&mut c, "s.xml", r#"<root><empty flag="yes"/><full>text</full></root>"#)
            .unwrap();
        let flag = c.paths().get_str(c.symbols(), "/root/empty/flag").unwrap();
        assert_eq!(c.nodes_with_path(flag).len(), 1);
    }

    #[test]
    fn entities_are_unescaped() {
        let mut c = Collection::new();
        parse_into(&mut c, "e.xml", r#"<root><t>a &amp; b &lt; c</t></root>"#).unwrap();
        let t = c.paths().get_str(c.symbols(), "/root/t").unwrap();
        assert_eq!(c.content(c.nodes_with_path(t)[0]).unwrap(), "a & b < c");
    }

    #[test]
    fn numeric_character_references_are_resolved() {
        let mut c = Collection::new();
        parse_into(&mut c, "n.xml", r#"<root><t>&#65;&#x42;</t></root>"#).unwrap();
        let t = c.paths().get_str(c.symbols(), "/root/t").unwrap();
        assert_eq!(c.content(c.nodes_with_path(t)[0]).unwrap(), "AB");
    }

    #[test]
    fn cdata_is_text() {
        let mut c = Collection::new();
        parse_into(&mut c, "cd.xml", r#"<root><t><![CDATA[raw <text>]]></t></root>"#).unwrap();
        let t = c.paths().get_str(c.symbols(), "/root/t").unwrap();
        assert_eq!(c.content(c.nodes_with_path(t)[0]).unwrap(), "raw <text>");
    }

    #[test]
    fn mixed_content_is_concatenated() {
        let mut c = Collection::new();
        parse_into(&mut c, "m.xml", r#"<p>import partners of <b>United States</b> in 2006</p>"#)
            .unwrap();
        let p = c.paths().get_str(c.symbols(), "/p").unwrap();
        let content = c.content(c.nodes_with_path(p)[0]).unwrap();
        assert!(content.contains("import partners of"));
        assert!(content.contains("United States"));
        assert!(content.contains("2006"));
    }

    #[test]
    fn declarations_and_instructions_are_skipped() {
        let mut c = Collection::new();
        parse_into(
            &mut c,
            "d.xml",
            "<?xml version=\"1.0\"?><!DOCTYPE root [<!ELEMENT root ANY>]><root><t>x</t></root>",
        )
        .unwrap();
        let t = c.paths().get_str(c.symbols(), "/root/t").unwrap();
        assert_eq!(c.content(c.nodes_with_path(t)[0]).unwrap(), "x");
    }

    #[test]
    fn empty_input_is_rejected() {
        let mut c = Collection::new();
        assert!(parse_into(&mut c, "empty.xml", "   ").is_err());
        assert!(parse_into(&mut c, "comment.xml", "<!-- nothing here -->").is_err());
    }

    #[test]
    fn malformed_xml_is_rejected() {
        let mut c = Collection::new();
        assert!(parse_into(&mut c, "bad.xml", "<a><b></a></b>").is_err());
        assert!(parse_into(&mut c, "open.xml", "<a><b>text</b>").is_err());
        assert!(parse_into(&mut c, "tworoots.xml", "<a/><b/>").is_err());
        assert!(parse_into(&mut c, "stray.xml", "<a></a></b>").is_err());
    }

    #[test]
    fn parse_collection_builds_shared_tables() {
        let docs = vec![
            ("a.xml", "<country><name>France</name></country>"),
            ("b.xml", "<country><name>Spain</name></country>"),
        ];
        let c = parse_collection(docs).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.distinct_path_count(), 2);
    }
}
