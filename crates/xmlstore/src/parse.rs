//! Parsing XML text into the store via `quick-xml`.

use quick_xml::events::Event;
use quick_xml::Reader;

use crate::collection::Collection;
use crate::error::{Result, XmlStoreError};
use crate::node::DocId;

/// Parses a single XML document from text and inserts it into the collection.
///
/// Namespaces are not expanded: SEDA's contexts and query terms operate on the
/// literal tag names that appear in the data, so prefixed names are kept
/// verbatim.  Comments, processing instructions and the XML declaration are
/// skipped; CDATA is treated as text.
pub fn parse_into(collection: &mut Collection, uri: &str, xml: &str) -> Result<DocId> {
    let mut reader = Reader::from_str(xml);
    reader.trim_text(true);

    let mut builder = collection.build_document(uri);
    let mut depth = 0usize;
    let mut saw_root = false;

    loop {
        match reader.read_event() {
            Ok(Event::Start(start)) => {
                let name = String::from_utf8_lossy(start.name().as_ref()).into_owned();
                builder.start_element(&name)?;
                saw_root = true;
                depth += 1;
                for attr in start.attributes() {
                    let attr = attr.map_err(|e| XmlStoreError::Parse(e.to_string()))?;
                    let key = String::from_utf8_lossy(attr.key.as_ref()).into_owned();
                    let value = attr
                        .unescape_value()
                        .map_err(|e| XmlStoreError::Parse(e.to_string()))?
                        .into_owned();
                    builder.attribute(&key, &value)?;
                }
            }
            Ok(Event::Empty(start)) => {
                let name = String::from_utf8_lossy(start.name().as_ref()).into_owned();
                builder.start_element(&name)?;
                saw_root = true;
                for attr in start.attributes() {
                    let attr = attr.map_err(|e| XmlStoreError::Parse(e.to_string()))?;
                    let key = String::from_utf8_lossy(attr.key.as_ref()).into_owned();
                    let value = attr
                        .unescape_value()
                        .map_err(|e| XmlStoreError::Parse(e.to_string()))?
                        .into_owned();
                    builder.attribute(&key, &value)?;
                }
                builder.end_element()?;
            }
            Ok(Event::End(_)) => {
                builder.end_element()?;
                depth = depth.saturating_sub(1);
            }
            Ok(Event::Text(text)) => {
                let value =
                    text.unescape().map_err(|e| XmlStoreError::Parse(e.to_string()))?.into_owned();
                if !value.trim().is_empty() {
                    builder.text(value.trim())?;
                }
            }
            Ok(Event::CData(cdata)) => {
                let value = String::from_utf8_lossy(&cdata).into_owned();
                if !value.trim().is_empty() {
                    builder.text(value.trim())?;
                }
            }
            Ok(Event::Eof) => break,
            Ok(_) => {}
            Err(e) => return Err(XmlStoreError::Parse(e.to_string())),
        }
    }

    if !saw_root {
        return Err(XmlStoreError::EmptyDocument);
    }
    if depth != 0 {
        return Err(XmlStoreError::Parse("unbalanced element tags".into()));
    }
    let document = builder.finish()?;
    collection.insert(document)
}

/// Parses many XML documents (uri, text) into a fresh collection.
pub fn parse_collection<'a, I>(documents: I) -> Result<Collection>
where
    I: IntoIterator<Item = (&'a str, &'a str)>,
{
    let mut collection = Collection::new();
    for (uri, xml) in documents {
        parse_into(&mut collection, uri, xml)?;
    }
    Ok(collection)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FACTBOOK_FRAGMENT: &str = r#"
        <country id="us2006">
          <name>United States</name>
          <year>2006</year>
          <economy>
            <GDP_ppp>12.31T</GDP_ppp>
            <import_partners>
              <item><trade_country>China</trade_country><percentage>15</percentage></item>
              <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
            </import_partners>
          </economy>
        </country>"#;

    #[test]
    fn parses_factbook_fragment() {
        let mut c = Collection::new();
        let doc_id = parse_into(&mut c, "us2006.xml", FACTBOOK_FRAGMENT).unwrap();
        let doc = c.document(doc_id).unwrap();
        assert!(doc.len() > 10);
        let percentage =
            c.paths().get_str(c.symbols(), "/country/economy/import_partners/item/percentage");
        assert!(percentage.is_some());
        assert_eq!(c.nodes_with_path(percentage.unwrap()).len(), 2);
    }

    #[test]
    fn attributes_become_child_nodes() {
        let mut c = Collection::new();
        parse_into(&mut c, "a.xml", FACTBOOK_FRAGMENT).unwrap();
        let id_path = c.paths().get_str(c.symbols(), "/country/id").unwrap();
        let nodes = c.nodes_with_path(id_path);
        assert_eq!(nodes.len(), 1);
        assert_eq!(c.content(nodes[0]).unwrap(), "us2006");
    }

    #[test]
    fn self_closing_elements_are_supported() {
        let mut c = Collection::new();
        parse_into(&mut c, "s.xml", r#"<root><empty flag="yes"/><full>text</full></root>"#)
            .unwrap();
        let flag = c.paths().get_str(c.symbols(), "/root/empty/flag").unwrap();
        assert_eq!(c.nodes_with_path(flag).len(), 1);
    }

    #[test]
    fn entities_are_unescaped() {
        let mut c = Collection::new();
        parse_into(&mut c, "e.xml", r#"<root><t>a &amp; b &lt; c</t></root>"#).unwrap();
        let t = c.paths().get_str(c.symbols(), "/root/t").unwrap();
        assert_eq!(c.content(c.nodes_with_path(t)[0]).unwrap(), "a & b < c");
    }

    #[test]
    fn cdata_is_text() {
        let mut c = Collection::new();
        parse_into(&mut c, "cd.xml", r#"<root><t><![CDATA[raw <text>]]></t></root>"#).unwrap();
        let t = c.paths().get_str(c.symbols(), "/root/t").unwrap();
        assert_eq!(c.content(c.nodes_with_path(t)[0]).unwrap(), "raw <text>");
    }

    #[test]
    fn mixed_content_is_concatenated() {
        let mut c = Collection::new();
        parse_into(&mut c, "m.xml", r#"<p>import partners of <b>United States</b> in 2006</p>"#)
            .unwrap();
        let p = c.paths().get_str(c.symbols(), "/p").unwrap();
        let content = c.content(c.nodes_with_path(p)[0]).unwrap();
        assert!(content.contains("import partners of"));
        assert!(content.contains("United States"));
        assert!(content.contains("2006"));
    }

    #[test]
    fn empty_input_is_rejected() {
        let mut c = Collection::new();
        assert!(parse_into(&mut c, "empty.xml", "   ").is_err());
        assert!(parse_into(&mut c, "comment.xml", "<!-- nothing here -->").is_err());
    }

    #[test]
    fn malformed_xml_is_rejected() {
        let mut c = Collection::new();
        assert!(parse_into(&mut c, "bad.xml", "<a><b></a></b>").is_err());
    }

    #[test]
    fn parse_collection_builds_shared_tables() {
        let docs = vec![
            ("a.xml", "<country><name>France</name></country>"),
            ("b.xml", "<country><name>Spain</name></country>"),
        ];
        let c = parse_collection(docs).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.distinct_path_count(), 2);
    }
}
