//! Collections: the unit SEDA operates on.
//!
//! A [`Collection`] owns the symbol and path intern tables shared by all of
//! its documents, plus the documents themselves.  Every index (full-text,
//! context, dataguide) is built over a collection.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::document::{Document, DocumentBuilder};
use crate::error::{Result, XmlStoreError};
use crate::node::{DocId, Node, NodeId};
use crate::path::{PathId, PathTable};
use crate::symbol::{Symbol, SymbolTable};

/// A collection of XML documents sharing one symbol table and one path table.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Collection {
    symbols: SymbolTable,
    paths: PathTable,
    documents: Vec<Document>,
}

impl Collection {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Shared path (context) table.
    pub fn paths(&self) -> &PathTable {
        &self.paths
    }

    /// Mutable access to the symbol table (used by query compilation to intern
    /// user-provided labels that may not occur in the data).
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True when the collection holds no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Total number of nodes across all documents.
    pub fn total_nodes(&self) -> usize {
        self.documents.iter().map(Document::len).sum()
    }

    /// Number of distinct root-to-leaf paths across the collection (1984 for
    /// the paper's World Factbook corpus).
    pub fn distinct_path_count(&self) -> usize {
        self.paths.len()
    }

    /// Borrow a document.
    pub fn document(&self, id: DocId) -> Result<&Document> {
        self.documents.get(id.index()).ok_or(XmlStoreError::UnknownDocument(id.0))
    }

    /// Iterate over all documents.
    pub fn documents(&self) -> impl Iterator<Item = &Document> {
        self.documents.iter()
    }

    /// Borrow a node by global id.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.document(id.doc)?.node(id.node)
    }

    /// The SEDA `content(n)` of a node (concatenated descendant text).
    pub fn content(&self, id: NodeId) -> Result<String> {
        Ok(self.document(id.doc)?.content(id.node))
    }

    /// The SEDA `context(n)` of a node (its root-to-leaf path id).
    pub fn context(&self, id: NodeId) -> Result<PathId> {
        Ok(self.node(id)?.path)
    }

    /// Renders a node's context in `/a/b/c` notation.
    pub fn context_string(&self, id: NodeId) -> Result<String> {
        let path = self.context(id)?;
        Ok(self.paths.resolve(path).display(&self.symbols))
    }

    /// Renders a path id in `/a/b/c` notation.
    pub fn path_string(&self, path: PathId) -> String {
        self.paths.resolve(path).display(&self.symbols)
    }

    /// Resolves a node's name.
    pub fn node_name(&self, id: NodeId) -> Result<&str> {
        Ok(self.symbols.resolve(self.node(id)?.name))
    }

    /// Opens a builder for a new document.  The caller drives the builder and
    /// then hands the finished document back via [`Collection::insert`].
    pub fn build_document(&mut self, uri: impl Into<String>) -> DocumentBuilder<'_> {
        let doc_id = DocId(self.documents.len() as u32);
        DocumentBuilder::new(&mut self.symbols, &mut self.paths, doc_id, uri)
    }

    /// Inserts a finished document.  The document must have been produced by a
    /// builder obtained from this collection (enforced by checking the id).
    pub fn insert(&mut self, document: Document) -> Result<DocId> {
        let expected = DocId(self.documents.len() as u32);
        if document.id != expected {
            return Err(XmlStoreError::BuilderState(format!(
                "document id {:?} does not match next slot {:?}; was the builder obtained from another collection?",
                document.id, expected
            )));
        }
        let id = document.id;
        self.documents.push(document);
        Ok(id)
    }

    /// Builds and inserts a document in one closure-driven call.
    pub fn add_document<F>(&mut self, uri: impl Into<String>, f: F) -> Result<DocId>
    where
        F: FnOnce(&mut DocumentBuilder<'_>) -> Result<()>,
    {
        let mut builder = self.build_document(uri);
        f(&mut builder)?;
        let doc = builder.finish()?;
        self.insert(doc)
    }

    /// Test-only corruption hook: hands out mutable access to one document so
    /// the seeded-corruption suite can perturb frozen state that library code
    /// never mutates.  Hidden from docs; never called by library code.
    #[doc(hidden)]
    pub fn corrupt_document(&mut self, id: DocId, f: impl FnOnce(&mut Document)) {
        f(&mut self.documents[id.index()]);
    }

    /// All nodes in the collection whose context equals `path`.
    pub fn nodes_with_path(&self, path: PathId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for doc in &self.documents {
            for ordinal in doc.nodes_with_path(path) {
                out.push(NodeId::new(doc.id, ordinal));
            }
        }
        out
    }

    /// All nodes in the collection with the given element/attribute name.
    pub fn nodes_with_name(&self, name: Symbol) -> Vec<NodeId> {
        let mut out = Vec::new();
        for doc in &self.documents {
            for ordinal in doc.nodes_with_name(name) {
                out.push(NodeId::new(doc.id, ordinal));
            }
        }
        out
    }

    /// Document frequency of every path: in how many documents each distinct
    /// path occurs.  The paper reports `/country` occurring in 1577 of 1600
    /// World Factbook documents while rare paths occur in fewer than 200.
    pub fn path_document_frequency(&self) -> HashMap<PathId, usize> {
        let mut freq: HashMap<PathId, usize> = HashMap::new();
        for doc in &self.documents {
            for path in doc.distinct_paths() {
                *freq.entry(path).or_insert(0) += 1;
            }
        }
        freq
    }

    /// Total occurrence count of every path across all nodes of the
    /// collection (the per-path counts stored in the document store that back
    /// the Fig. 8 index).
    pub fn path_occurrence_count(&self) -> HashMap<PathId, usize> {
        let mut freq: HashMap<PathId, usize> = HashMap::new();
        for doc in &self.documents {
            for (_, node) in doc.iter() {
                *freq.entry(node.path).or_insert(0) += 1;
            }
        }
        freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_country_collection() -> Collection {
        let mut c = Collection::new();
        c.add_document("us.xml", |b| {
            b.start_element("country")?;
            b.leaf("name", "United States")?;
            b.leaf("year", "2006")?;
            b.start_element("economy")?;
            b.leaf("GDP_ppp", "12310")?;
            b.end_element()?;
            b.end_element()?;
            Ok(())
        })
        .unwrap();
        c.add_document("mexico.xml", |b| {
            b.start_element("country")?;
            b.leaf("name", "Mexico")?;
            b.leaf("year", "2005")?;
            b.start_element("economy")?;
            b.leaf("GDP", "924")?;
            b.end_element()?;
            b.end_element()?;
            Ok(())
        })
        .unwrap();
        c
    }

    #[test]
    fn documents_share_path_table() {
        let c = two_country_collection();
        assert_eq!(c.len(), 2);
        // /country, /country/name, /country/year, /country/economy shared;
        // GDP_ppp and GDP differ -> 6 distinct paths.
        assert_eq!(c.distinct_path_count(), 6);
    }

    #[test]
    fn path_document_frequency_counts_documents_not_nodes() {
        let c = two_country_collection();
        let freq = c.path_document_frequency();
        let country = c.paths().get_str(c.symbols(), "/country").unwrap();
        let gdp_ppp = c.paths().get_str(c.symbols(), "/country/economy/GDP_ppp").unwrap();
        assert_eq!(freq[&country], 2);
        assert_eq!(freq[&gdp_ppp], 1);
    }

    #[test]
    fn nodes_with_path_spans_documents() {
        let c = two_country_collection();
        let year = c.paths().get_str(c.symbols(), "/country/year").unwrap();
        let nodes = c.nodes_with_path(year);
        assert_eq!(nodes.len(), 2);
        let contents: Vec<String> = nodes.iter().map(|&n| c.content(n).unwrap()).collect();
        assert_eq!(contents, vec!["2006", "2005"]);
    }

    #[test]
    fn nodes_with_name_spans_documents() {
        let c = two_country_collection();
        let name = c.symbols().get("name").unwrap();
        assert_eq!(c.nodes_with_name(name).len(), 2);
    }

    #[test]
    fn context_and_content_accessors() {
        let c = two_country_collection();
        let gdp = c.paths().get_str(c.symbols(), "/country/economy/GDP").unwrap();
        let node = c.nodes_with_path(gdp)[0];
        assert_eq!(c.content(node).unwrap(), "924");
        assert_eq!(c.context_string(node).unwrap(), "/country/economy/GDP");
        assert_eq!(c.node_name(node).unwrap(), "GDP");
    }

    #[test]
    fn unknown_ids_are_reported() {
        let c = two_country_collection();
        assert!(c.document(DocId(99)).is_err());
        assert!(c.node(NodeId::new(DocId(0), 999)).is_err());
    }

    #[test]
    fn insert_rejects_foreign_documents() {
        let mut a = Collection::new();
        let mut b = Collection::new();
        let doc = {
            let mut builder = a.build_document("a.xml");
            builder.start_element("r").unwrap();
            builder.end_element().unwrap();
            builder.finish().unwrap()
        };
        // Inserting into the originating collection works.
        let cloned = doc.clone();
        a.insert(doc).unwrap();
        // Inserting the same id again (now stale) fails.
        assert!(a.insert(cloned.clone()).is_err());
        // A fresh collection accepts id 0, which is fine (ids match), so build
        // a second doc in `a` and try to insert it into `b`.
        let doc2 = {
            let mut builder = a.build_document("b.xml");
            builder.start_element("r").unwrap();
            builder.end_element().unwrap();
            builder.finish().unwrap()
        };
        assert!(b.insert(doc2).is_err());
    }

    #[test]
    fn total_nodes_sums_documents() {
        let c = two_country_collection();
        assert_eq!(c.total_nodes(), 10);
    }

    #[test]
    fn path_occurrence_count_counts_nodes() {
        let mut c = Collection::new();
        c.add_document("d.xml", |b| {
            b.start_element("r")?;
            b.leaf("x", "1")?;
            b.leaf("x", "2")?;
            b.end_element()?;
            Ok(())
        })
        .unwrap();
        let occ = c.path_occurrence_count();
        let x = c.paths().get_str(c.symbols(), "/r/x").unwrap();
        assert_eq!(occ[&x], 2);
    }
}
