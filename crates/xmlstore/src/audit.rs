//! Structural invariant auditing — the `seda-audit` layer for the store.
//!
//! Every substrate crate exposes a `verify()` entry point returning
//! `Result<(), Vec<InvariantViolation>>`; this module defines the shared
//! [`InvariantViolation`] type plus the checks for the store itself.
//!
//! # Invariant catalog (substrate `xmlstore`)
//!
//! | class | invariant |
//! |---|---|
//! | `dewey-order` | Dewey ids are strictly increasing in document order |
//! | `dewey-parent-prefix` | a node's Dewey id extends its parent's by exactly one component; the root is `1` |
//! | `tree-linkage` | parent/child ordinals are in-bounds, parents precede children, and back-pointers agree |
//! | `doc-id-dense` | document ids equal their slot in the collection |
//! | `path-in-bounds` | every node's interned path and name resolve in the shared tables |

use std::fmt;

use crate::collection::Collection;
use crate::dewey::DeweyId;
use crate::document::Document;

/// One detected violation of a structural invariant.
///
/// Violations are diagnostic values, not errors to be matched on in query
/// paths: a frozen read model that fails `verify()` is corrupt and must not
/// serve answers.  The `(substrate, invariant)` pair is a stable,
/// machine-matchable class id (kebab-case) used by the seeded-corruption
/// suite to assert that each injected fault is detected as exactly the class
/// that was perturbed; `detail` is human-oriented context naming the
/// offending document/node/term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The substrate reporting the violation (`"xmlstore"`, `"textindex"`,
    /// `"datagraph"`, `"dataguide"`, `"topk"`, `"core"`).
    pub substrate: &'static str,
    /// Stable kebab-case class id of the violated invariant (e.g.
    /// `"dewey-order"`, `"postings-sorted"`, `"csr-offsets"`).
    pub invariant: &'static str,
    /// Human-oriented description of the specific violation site.
    pub detail: String,
}

impl InvariantViolation {
    /// Builds a violation record.
    pub fn new(
        substrate: &'static str,
        invariant: &'static str,
        detail: impl Into<String>,
    ) -> Self {
        InvariantViolation { substrate, invariant, detail: detail.into() }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}] {}", self.substrate, self.invariant, self.detail)
    }
}

/// Shorthand for the result every `verify()` returns.
pub type AuditResult = Result<(), Vec<InvariantViolation>>;

/// Folds an accumulated violation list into an [`AuditResult`].
pub fn finish(violations: Vec<InvariantViolation>) -> AuditResult {
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

const SUBSTRATE: &str = "xmlstore";

impl Document {
    /// Verifies the per-document structural invariants: Dewey order, the
    /// parent-prefix property, and parent/child linkage consistency.
    pub fn verify(&self) -> AuditResult {
        let mut violations = Vec::new();
        let mut previous: Option<&DeweyId> = None;
        for (ordinal, node) in self.iter() {
            if let Some(prev) = previous {
                if node.dewey <= *prev {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "dewey-order",
                        format!(
                            "doc {} node {ordinal}: dewey {} not after predecessor {prev}",
                            self.id.0, node.dewey
                        ),
                    ));
                }
            }
            previous = Some(&node.dewey);
            match node.parent {
                None => {
                    if ordinal != 0 || node.dewey != DeweyId::root() {
                        violations.push(InvariantViolation::new(
                            SUBSTRATE,
                            "dewey-parent-prefix",
                            format!(
                                "doc {} node {ordinal}: parentless node with dewey {}",
                                self.id.0, node.dewey
                            ),
                        ));
                    }
                }
                Some(parent) => {
                    if parent >= ordinal {
                        violations.push(InvariantViolation::new(
                            SUBSTRATE,
                            "tree-linkage",
                            format!(
                                "doc {} node {ordinal}: parent {parent} does not precede it",
                                self.id.0
                            ),
                        ));
                    } else {
                        let parent_node = self.node_unchecked(parent);
                        if !parent_node.dewey.is_parent_of(&node.dewey) {
                            violations.push(InvariantViolation::new(
                                SUBSTRATE,
                                "dewey-parent-prefix",
                                format!(
                                    "doc {} node {ordinal}: dewey {} does not extend parent's {}",
                                    self.id.0, node.dewey, parent_node.dewey
                                ),
                            ));
                        }
                        if !parent_node.children.contains(&ordinal) {
                            violations.push(InvariantViolation::new(
                                SUBSTRATE,
                                "tree-linkage",
                                format!(
                                    "doc {} node {ordinal}: missing from parent {parent}'s children",
                                    self.id.0
                                ),
                            ));
                        }
                    }
                }
            }
            for &child in &node.children {
                if child as usize >= self.len() {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "tree-linkage",
                        format!(
                            "doc {} node {ordinal}: child ordinal {child} out of bounds",
                            self.id.0
                        ),
                    ));
                } else if self.node_unchecked(child).parent != Some(ordinal) {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "tree-linkage",
                        format!(
                            "doc {} node {ordinal}: child {child} does not point back to it",
                            self.id.0
                        ),
                    ));
                }
            }
        }
        finish(violations)
    }

    /// Test-only corruption hook: overwrites one node's Dewey id so the
    /// seeded-corruption suite can break `dewey-order` / `dewey-parent-prefix`
    /// in isolation.  Hidden from docs; never called by library code.
    #[doc(hidden)]
    pub fn corrupt_node_dewey(&mut self, ordinal: u32, dewey: DeweyId) {
        self.corrupt_node_dewey_impl(ordinal, dewey);
    }
}

impl Collection {
    /// Verifies every document plus the collection-level invariants
    /// (dense document ids, interned paths and names in-bounds).
    pub fn verify(&self) -> AuditResult {
        let mut violations = Vec::new();
        for (slot, doc) in self.documents().enumerate() {
            if doc.id.index() != slot {
                violations.push(InvariantViolation::new(
                    SUBSTRATE,
                    "doc-id-dense",
                    format!("document in slot {slot} carries id {}", doc.id.0),
                ));
            }
            if let Err(mut doc_violations) = doc.verify() {
                violations.append(&mut doc_violations);
            }
            for (ordinal, node) in doc.iter() {
                if node.path.index() >= self.paths().len() {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "path-in-bounds",
                        format!(
                            "doc {} node {ordinal}: path id {} beyond table of {}",
                            doc.id.0,
                            node.path.0,
                            self.paths().len()
                        ),
                    ));
                }
                if node.name.index() >= self.symbols().len() {
                    violations.push(InvariantViolation::new(
                        SUBSTRATE,
                        "path-in-bounds",
                        format!(
                            "doc {} node {ordinal}: name symbol {} beyond table of {}",
                            doc.id.0,
                            node.name.index(),
                            self.symbols().len()
                        ),
                    ));
                }
            }
        }
        finish(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Collection {
        let mut c = Collection::new();
        c.add_document("sample.xml", |b| {
            b.start_element("country")?;
            b.leaf("name", "United States")?;
            b.leaf("year", "2006")?;
            b.start_element("economy")?;
            b.leaf("GDP", "12310")?;
            b.end_element()?;
            b.end_element()?;
            Ok(())
        })
        .unwrap();
        c
    }

    #[test]
    fn fresh_collection_passes() {
        assert_eq!(sample().verify(), Ok(()));
        assert_eq!(Collection::new().verify(), Ok(()));
    }

    #[test]
    fn swapped_sibling_deweys_fail_dewey_order() {
        let mut c = sample();
        // Nodes 1 and 2 are the `name`/`year` sibling leaves: swapping their
        // Dewey ids keeps the parent-prefix property but breaks order.
        let d1 = c.document(crate::DocId(0)).unwrap().node(1).unwrap().dewey.clone();
        let d2 = c.document(crate::DocId(0)).unwrap().node(2).unwrap().dewey.clone();
        c.corrupt_document(crate::DocId(0), |doc| {
            doc.corrupt_node_dewey(1, d2);
            doc.corrupt_node_dewey(2, d1);
        });
        let violations = c.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "dewey-order"), "{violations:?}");
    }

    #[test]
    fn deepened_leaf_dewey_fails_parent_prefix() {
        let mut c = sample();
        // Replacing a leaf's Dewey id with a descendant of itself keeps
        // document order intact but the parent is no longer one level up.
        let deeper = c.document(crate::DocId(0)).unwrap().node(1).unwrap().dewey.child(1);
        c.corrupt_document(crate::DocId(0), |doc| doc.corrupt_node_dewey(1, deeper));
        let violations = c.verify().unwrap_err();
        assert!(violations.iter().all(|v| v.invariant == "dewey-parent-prefix"), "{violations:?}");
    }

    #[test]
    fn violation_display_names_the_class() {
        let v = InvariantViolation::new("xmlstore", "dewey-order", "doc 0 node 3");
        assert_eq!(v.to_string(), "[xmlstore/dewey-order] doc 0 node 3");
    }
}
