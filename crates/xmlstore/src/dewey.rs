//! Dewey order identifiers for XML nodes.
//!
//! SEDA references XML nodes by Dewey IDs (Tatarinov et al., SIGMOD 2002): the
//! root of a document is `1`, its i-th child is `1.i`, and so on.  Dewey IDs
//! encode the full ancestor chain of a node, which gives three properties the
//! rest of the system relies on:
//!
//! * document order is the lexicographic order of the component vectors,
//! * ancestor/descendant tests are prefix tests, and
//! * the holistic twig join (`seda-twigjoin`) can merge posting streams that
//!   are sorted by Dewey ID without touching the document tree.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A Dewey order identifier: the path of 1-based child ordinals from the
/// document root down to a node.  The root element of every document is `[1]`.
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct DeweyId {
    components: Vec<u32>,
}

impl DeweyId {
    /// Dewey ID of a document root element (`1`).
    pub fn root() -> Self {
        DeweyId { components: vec![1] }
    }

    /// Builds a Dewey ID from raw components. Returns `None` for an empty
    /// component list (the empty Dewey ID is reserved for "no node").
    pub fn new(components: Vec<u32>) -> Option<Self> {
        if components.is_empty() {
            None
        } else {
            Some(DeweyId { components })
        }
    }

    /// The raw ordinal components, root first.
    pub fn components(&self) -> &[u32] {
        &self.components
    }

    /// Depth of the node: the root element has depth 1.
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// Dewey ID of the `ordinal`-th (1-based) child of this node.
    pub fn child(&self, ordinal: u32) -> Self {
        let mut components = Vec::with_capacity(self.components.len() + 1);
        components.extend_from_slice(&self.components);
        components.push(ordinal);
        DeweyId { components }
    }

    /// Dewey ID of the parent, or `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.components.len() <= 1 {
            None
        } else {
            Some(DeweyId { components: self.components[..self.components.len() - 1].to_vec() })
        }
    }

    /// True iff `self` is a proper ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &DeweyId) -> bool {
        other.components.len() > self.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// True iff `self` is a proper descendant of `other`.
    pub fn is_descendant_of(&self, other: &DeweyId) -> bool {
        other.is_ancestor_of(self)
    }

    /// True iff `self` is the parent of `other`.
    pub fn is_parent_of(&self, other: &DeweyId) -> bool {
        other.components.len() == self.components.len() + 1
            && other.components[..self.components.len()] == self.components[..]
    }

    /// True iff `self` equals `other` or is an ancestor of `other`.
    pub fn is_ancestor_or_self_of(&self, other: &DeweyId) -> bool {
        self == other || self.is_ancestor_of(other)
    }

    /// Longest common prefix of two Dewey IDs, i.e. the Dewey ID of the lowest
    /// common ancestor when both IDs belong to the same document.  Returns
    /// `None` when the IDs share no prefix (which cannot happen for two nodes
    /// of the same document, whose IDs both start with `1`).
    pub fn common_ancestor(&self, other: &DeweyId) -> Option<DeweyId> {
        let len =
            self.components.iter().zip(other.components.iter()).take_while(|(a, b)| a == b).count();
        DeweyId::new(self.components[..len].to_vec())
    }

    /// Number of parent/child edges on the tree path between the two nodes
    /// (via their lowest common ancestor).  Used by the compactness score of
    /// the top-k unit.  Both IDs must belong to the same document for the
    /// result to be meaningful.
    pub fn tree_distance(&self, other: &DeweyId) -> usize {
        let lca_len =
            self.components.iter().zip(other.components.iter()).take_while(|(a, b)| a == b).count();
        (self.components.len() - lca_len) + (other.components.len() - lca_len)
    }
}

impl Ord for DeweyId {
    fn cmp(&self, other: &Self) -> Ordering {
        self.components.cmp(&other.components)
    }
}

impl PartialOrd for DeweyId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for DeweyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.components {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for DeweyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DeweyId({self})")
    }
}

impl std::str::FromStr for DeweyId {
    type Err = crate::error::XmlStoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let components: Result<Vec<u32>, _> = s.split('.').map(str::parse::<u32>).collect();
        let components =
            components.map_err(|_| crate::error::XmlStoreError::InvalidDeweyId(s.to_string()))?;
        DeweyId::new(components)
            .ok_or_else(|| crate::error::XmlStoreError::InvalidDeweyId(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_depth_one() {
        let r = DeweyId::root();
        assert_eq!(r.depth(), 1);
        assert_eq!(r.to_string(), "1");
        assert!(r.parent().is_none());
    }

    #[test]
    fn child_and_parent_roundtrip() {
        let n = DeweyId::root().child(2).child(5);
        assert_eq!(n.to_string(), "1.2.5");
        assert_eq!(n.parent().unwrap().to_string(), "1.2");
        assert_eq!(n.parent().unwrap().parent().unwrap(), DeweyId::root());
    }

    #[test]
    fn empty_component_list_rejected() {
        assert!(DeweyId::new(vec![]).is_none());
    }

    #[test]
    fn ancestor_descendant_tests() {
        let a = DeweyId::root().child(2);
        let b = a.child(3).child(1);
        assert!(a.is_ancestor_of(&b));
        assert!(b.is_descendant_of(&a));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a), "ancestor relation is strict");
        assert!(a.is_ancestor_or_self_of(&a));
        assert!(DeweyId::root().is_ancestor_of(&b));
    }

    #[test]
    fn parent_relation_is_exactly_one_level() {
        let a = DeweyId::root().child(2);
        let child = a.child(7);
        let grandchild = child.child(1);
        assert!(a.is_parent_of(&child));
        assert!(!a.is_parent_of(&grandchild));
        assert!(!a.is_parent_of(&a));
    }

    #[test]
    fn document_order_is_lexicographic() {
        let mut ids = [
            "1.2.1".parse::<DeweyId>().unwrap(),
            "1.1".parse().unwrap(),
            "1.10".parse().unwrap(),
            "1.2".parse().unwrap(),
            "1".parse().unwrap(),
        ];
        ids.sort();
        let rendered: Vec<String> = ids.iter().map(|d| d.to_string()).collect();
        assert_eq!(rendered, vec!["1", "1.1", "1.2", "1.2.1", "1.10"]);
    }

    #[test]
    fn common_ancestor_is_lca() {
        let a: DeweyId = "1.2.3.4".parse().unwrap();
        let b: DeweyId = "1.2.5".parse().unwrap();
        assert_eq!(a.common_ancestor(&b).unwrap().to_string(), "1.2");
        assert_eq!(a.common_ancestor(&a).unwrap(), a);
    }

    #[test]
    fn tree_distance_counts_edges_via_lca() {
        let a: DeweyId = "1.2.3.4".parse().unwrap();
        let b: DeweyId = "1.2.5".parse().unwrap();
        // a is 2 edges below the LCA 1.2, b is 1 edge below it.
        assert_eq!(a.tree_distance(&b), 3);
        assert_eq!(a.tree_distance(&a), 0);
        let root = DeweyId::root();
        assert_eq!(root.tree_distance(&a), 3);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<DeweyId>().is_err());
        assert!("1..2".parse::<DeweyId>().is_err());
        assert!("1.a".parse::<DeweyId>().is_err());
    }

    #[test]
    fn display_parse_roundtrip() {
        let id: DeweyId = "1.4.2.19".parse().unwrap();
        let back: DeweyId = id.to_string().parse().unwrap();
        assert_eq!(id, back);
    }
}
