//! Error type for the XML store.

use std::fmt;

/// Errors produced while building, parsing or querying the XML store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlStoreError {
    /// A Dewey ID string could not be parsed.
    InvalidDeweyId(String),
    /// XML text could not be parsed.
    Parse(String),
    /// The parsed document had no root element.
    EmptyDocument,
    /// A node id referenced a document that does not exist in the collection.
    UnknownDocument(u32),
    /// A node id referenced a node ordinal that does not exist in its document.
    UnknownNode {
        /// Document id the node was looked up in.
        doc: u32,
        /// Node ordinal that was out of range.
        node: u32,
    },
    /// A builder operation was applied in an invalid state (e.g. `end_element`
    /// without a matching `start_element`).
    BuilderState(String),
}

impl fmt::Display for XmlStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlStoreError::InvalidDeweyId(s) => write!(f, "invalid Dewey id: {s:?}"),
            XmlStoreError::Parse(msg) => write!(f, "XML parse error: {msg}"),
            XmlStoreError::EmptyDocument => write!(f, "document has no root element"),
            XmlStoreError::UnknownDocument(d) => write!(f, "unknown document id {d}"),
            XmlStoreError::UnknownNode { doc, node } => {
                write!(f, "unknown node {node} in document {doc}")
            }
            XmlStoreError::BuilderState(msg) => write!(f, "document builder misuse: {msg}"),
        }
    }
}

impl std::error::Error for XmlStoreError {}

/// Convenient result alias used throughout the store.
pub type Result<T> = std::result::Result<T, XmlStoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let cases: Vec<(XmlStoreError, &str)> = vec![
            (XmlStoreError::InvalidDeweyId("x".into()), "invalid Dewey id"),
            (XmlStoreError::Parse("boom".into()), "XML parse error: boom"),
            (XmlStoreError::EmptyDocument, "no root element"),
            (XmlStoreError::UnknownDocument(3), "unknown document id 3"),
            (XmlStoreError::UnknownNode { doc: 1, node: 2 }, "unknown node 2 in document 1"),
            (XmlStoreError::BuilderState("bad".into()), "builder misuse"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err} should contain {needle}");
        }
    }
}
