//! Node and node-id types.

use serde::{Deserialize, Serialize};

use crate::dewey::DeweyId;
use crate::path::PathId;
use crate::symbol::Symbol;

/// Identifier of a document within a [`crate::collection::Collection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    /// Raw index of the document in its collection.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Globally unique node reference: document plus node ordinal within the
/// document's node arena.  Node ordinals are assigned in document order, so
/// comparing two `NodeId`s of the same document compares document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId {
    /// Owning document.
    pub doc: DocId,
    /// Ordinal of the node within the document (pre-order / document order).
    pub node: u32,
}

impl NodeId {
    /// Builds a node id from raw parts.
    pub fn new(doc: DocId, node: u32) -> Self {
        NodeId { doc, node }
    }
}

/// Kind of a data node.  SEDA treats element-attribute relationships as a
/// special case of parent/child (footnote 6 of the paper), so attributes are
/// ordinary nodes with [`NodeKind::Attribute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An XML element.
    Element,
    /// An XML attribute, modelled as a child node of its owning element.
    Attribute,
}

/// A stored data node.
///
/// Text content is stored directly on the owning element/attribute node
/// rather than as separate text nodes: SEDA's `content(n)` is the
/// concatenation of all descendant text, which the store computes by walking
/// the subtree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Element or attribute name.
    pub name: Symbol,
    /// Element vs attribute.
    pub kind: NodeKind,
    /// Parent ordinal within the same document (`None` for the root).
    pub parent: Option<u32>,
    /// Child ordinals in document order (attributes first, then sub-elements).
    pub children: Vec<u32>,
    /// Immediate text content of this node (not including descendants).
    pub text: Option<String>,
    /// Dewey order identifier of the node.
    pub dewey: DeweyId,
    /// Interned root-to-leaf label path (the node's *context*).
    pub path: PathId,
}

impl Node {
    /// True when the node carries non-empty immediate text.
    pub fn has_text(&self) -> bool {
        self.text.as_deref().map(|t| !t.trim().is_empty()).unwrap_or(false)
    }

    /// True for leaf nodes (no children).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_ordering_follows_document_order_within_a_doc() {
        let d = DocId(0);
        let a = NodeId::new(d, 1);
        let b = NodeId::new(d, 5);
        assert!(a < b);
    }

    #[test]
    fn node_id_ordering_groups_by_document_first() {
        let a = NodeId::new(DocId(0), 100);
        let b = NodeId::new(DocId(1), 1);
        assert!(a < b);
    }

    #[test]
    fn has_text_ignores_whitespace() {
        let mk = |text: Option<&str>| Node {
            name: Symbol(0),
            kind: NodeKind::Element,
            parent: None,
            children: vec![],
            text: text.map(str::to_string),
            dewey: DeweyId::root(),
            path: PathId(0),
        };
        assert!(!mk(None).has_text());
        assert!(!mk(Some("   \n")).has_text());
        assert!(mk(Some("United States")).has_text());
    }
}
