//! Holistic, stack-based twig evaluation over Dewey-ordered streams.
//!
//! The complete-result generator of Sec. 7 retrieves the matches of every twig
//! leaf "in Dewey ID order, which can be directly used by the XML twig
//! processing" of Bruno et al.  This module implements that machinery:
//!
//! * per-pattern-node input streams of `(DeweyId, node)` pairs sorted in
//!   document order,
//! * the PathStack algorithm (the path-at-a-time half of the holistic twig
//!   join family) producing root-to-leaf chain solutions with a linked-stack
//!   encoding, and
//! * a hash merge of the chain solutions on their shared branching nodes,
//!   yielding complete twig matches.

use std::collections::{BTreeMap, HashMap};

use seda_xmlstore::{Collection, DeweyId, Document, NodeId};

use crate::pattern::{Axis, TwigPattern};

/// Matches of a twig pattern over a collection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TwigMatches {
    /// Pattern-node indices the rows are projected onto (the output nodes).
    pub output_nodes: Vec<usize>,
    /// One row per match: a node per output pattern node, in
    /// `output_nodes` order.
    pub rows: Vec<Vec<NodeId>>,
    /// Document nodes scanned while building the pattern nodes' input
    /// streams — the dominant work measure of the evaluation, surfaced so
    /// callers can attribute twig cost without re-walking the collection.
    pub nodes_visited: usize,
}

impl TwigMatches {
    /// Number of matches.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the pattern matched nothing.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a pattern node within the output columns.
    pub fn column_of(&self, pattern_node: usize) -> Option<usize> {
        self.output_nodes.iter().position(|&n| n == pattern_node)
    }
}

/// One element of a pattern node's input stream.
#[derive(Debug, Clone)]
struct StreamElement {
    ordinal: u32,
    dewey: DeweyId,
}

/// Builds the Dewey-ordered input stream of one pattern node within one
/// document: nodes whose label matches and whose direct text satisfies the
/// node's predicate.
fn build_stream(
    collection: &Collection,
    document: &Document,
    pattern: &TwigPattern,
    pattern_node: usize,
    nodes_visited: &mut usize,
) -> Vec<StreamElement> {
    let node = pattern.node(pattern_node);
    let mut out = Vec::new();
    for (ordinal, data_node) in document.iter() {
        *nodes_visited += 1;
        if collection.symbols().resolve(data_node.name) != node.label {
            continue;
        }
        if let Some(predicate) = &node.predicate {
            let text = data_node.text.as_deref().unwrap_or("");
            if !predicate.matches_text(text) {
                continue;
            }
        }
        out.push(StreamElement { ordinal, dewey: data_node.dewey.clone() });
    }
    // Document iteration order is document order, which is Dewey order.
    out
}

/// Stack entry of the PathStack algorithm: a stream element plus a pointer to
/// the top of the parent stack at push time.
#[derive(Debug, Clone)]
struct StackEntry {
    ordinal: u32,
    dewey: DeweyId,
    parent_top: isize,
}

/// Runs PathStack for one root-to-leaf chain of the pattern within one
/// document.  Returns chain solutions as vectors of ordinals aligned with
/// `chain`.
fn path_stack(
    chain: &[usize],
    pattern: &TwigPattern,
    streams: &HashMap<usize, Vec<StreamElement>>,
) -> Vec<Vec<u32>> {
    let n = chain.len();
    let mut cursors = vec![0usize; n];
    let mut stacks: Vec<Vec<StackEntry>> = vec![Vec::new(); n];
    let mut solutions = Vec::new();

    loop {
        // Pick the chain position whose next stream element has the minimal
        // Dewey id.
        let mut min_pos: Option<usize> = None;
        for (i, &q) in chain.iter().enumerate() {
            let stream = &streams[&q];
            if cursors[i] >= stream.len() {
                continue;
            }
            let candidate = &stream[cursors[i]].dewey;
            match min_pos {
                None => min_pos = Some(i),
                Some(current) => {
                    let current_dewey = &streams[&chain[current]][cursors[current]].dewey;
                    if candidate < current_dewey {
                        min_pos = Some(i);
                    }
                }
            }
        }
        let Some(i) = min_pos else { break };
        let element = streams[&chain[i]][cursors[i]].clone();
        cursors[i] += 1;

        // Clean every stack: pop entries that cannot be ancestors of the new
        // element (they can never participate in a future solution).
        for stack in stacks.iter_mut() {
            while let Some(top) = stack.last() {
                if top.dewey.is_ancestor_or_self_of(&element.dewey) {
                    break;
                }
                stack.pop();
            }
        }

        // Push only if the parent stack can support the element.
        if i == 0 || !stacks[i - 1].is_empty() {
            let parent_top = if i == 0 { -1 } else { stacks[i - 1].len() as isize - 1 };
            stacks[i].push(StackEntry {
                ordinal: element.ordinal,
                dewey: element.dewey,
                parent_top,
            });
            if i == n - 1 {
                expand_solutions(chain, pattern, &stacks, &mut solutions);
                stacks[n - 1].pop();
            }
        }
    }
    solutions
}

/// Expands every root-to-leaf solution ending at the entry currently on top of
/// the leaf stack.
fn expand_solutions(
    chain: &[usize],
    pattern: &TwigPattern,
    stacks: &[Vec<StackEntry>],
    solutions: &mut Vec<Vec<u32>>,
) {
    let n = chain.len();
    let leaf_entry =
        stacks[n - 1].last().expect("invariant: the leaf entry was just pushed onto its stack");
    // Partial solutions built bottom-up: (current level, ordinals leaf..level).
    let mut partials: Vec<(isize, Vec<u32>, DeweyId)> =
        vec![(leaf_entry.parent_top, vec![leaf_entry.ordinal], leaf_entry.dewey.clone())];
    for level in (0..n - 1).rev() {
        // Axis of the pattern node *below* this level, relating it to the
        // element we are about to pick at this level.
        let axis = pattern.node(chain[level + 1]).axis;
        let mut next = Vec::new();
        for (top, ordinals, child_dewey) in partials {
            if top < 0 {
                continue;
            }
            for entry in &stacks[level][..=top as usize] {
                let structural_ok = match axis {
                    Axis::Child => entry.dewey.is_parent_of(&child_dewey),
                    Axis::Descendant => entry.dewey.is_ancestor_of(&child_dewey),
                };
                if structural_ok {
                    let mut extended = ordinals.clone();
                    extended.push(entry.ordinal);
                    next.push((entry.parent_top, extended, entry.dewey.clone()));
                }
            }
        }
        partials = next;
        if partials.is_empty() {
            return;
        }
    }
    for (_, ordinals, _) in partials {
        // Ordinals were collected leaf-first; reverse to root-first.
        let mut root_first = ordinals;
        root_first.reverse();
        solutions.push(root_first);
    }
}

/// Evaluates a twig pattern over an entire collection.
pub fn evaluate_twig(collection: &Collection, pattern: &TwigPattern) -> TwigMatches {
    let output_nodes = pattern.output_nodes();
    let mut matches =
        TwigMatches { output_nodes: output_nodes.clone(), rows: Vec::new(), nodes_visited: 0 };
    if pattern.is_empty() || output_nodes.is_empty() {
        return matches;
    }
    let chains = pattern.root_to_leaf_chains();

    for document in collection.documents() {
        // Build streams once per document.
        let mut streams: HashMap<usize, Vec<StreamElement>> = HashMap::new();
        let mut missing = false;
        for q in pattern.node_indices() {
            let stream = build_stream(collection, document, pattern, q, &mut matches.nodes_visited);
            if stream.is_empty() {
                missing = true;
                break;
            }
            streams.insert(q, stream);
        }
        if missing {
            continue;
        }

        // Chain solutions, merged on shared pattern nodes.
        let mut merged: Option<Vec<BTreeMap<usize, u32>>> = None;
        for chain in &chains {
            let chain_solutions = path_stack(chain, pattern, &streams);
            if chain_solutions.is_empty() {
                merged = Some(Vec::new());
                break;
            }
            let as_maps: Vec<BTreeMap<usize, u32>> = chain_solutions
                .into_iter()
                .map(|ordinals| chain.iter().copied().zip(ordinals).collect())
                .collect();
            merged = Some(match merged {
                None => as_maps,
                Some(existing) => merge_solutions(existing, as_maps),
            });
            if merged.as_ref().map(Vec::is_empty).unwrap_or(false) {
                break;
            }
        }

        if let Some(solutions) = merged {
            for solution in solutions {
                let row: Option<Vec<NodeId>> = output_nodes
                    .iter()
                    .map(|q| solution.get(q).map(|&o| NodeId::new(document.id, o)))
                    .collect();
                if let Some(row) = row {
                    matches.rows.push(row);
                }
            }
        }
    }
    matches.rows.sort();
    matches.rows.dedup();
    matches
}

/// Hash-joins two sets of partial solutions on their shared pattern nodes.
fn merge_solutions(
    left: Vec<BTreeMap<usize, u32>>,
    right: Vec<BTreeMap<usize, u32>>,
) -> Vec<BTreeMap<usize, u32>> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    let left_keys: Vec<usize> = left[0].keys().copied().collect();
    let right_keys: Vec<usize> = right[0].keys().copied().collect();
    let shared: Vec<usize> = left_keys.iter().copied().filter(|k| right_keys.contains(k)).collect();

    let key_of = |solution: &BTreeMap<usize, u32>| -> Vec<u32> {
        shared.iter().map(|k| solution[k]).collect()
    };

    let mut right_by_key: HashMap<Vec<u32>, Vec<&BTreeMap<usize, u32>>> = HashMap::new();
    for r in &right {
        right_by_key.entry(key_of(r)).or_default().push(r);
    }

    let mut out = Vec::new();
    for l in &left {
        if let Some(rs) = right_by_key.get(&key_of(l)) {
            for r in rs {
                let mut combined = l.clone();
                for (&k, &v) in r.iter() {
                    combined.insert(k, v);
                }
                out.push(combined);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TwigPattern;
    use seda_textindex::FullTextQuery;
    use seda_xmlstore::parse_collection;

    fn factbook() -> Collection {
        parse_collection(vec![
            (
                "us.xml",
                r#"<country><name>United States</name><year>2006</year>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                       <item><trade_country>Canada</trade_country><percentage>16.9</percentage></item>
                     </import_partners></economy></country>"#,
            ),
            (
                "mx.xml",
                r#"<country><name>Mexico</name><year>2005</year>
                     <economy><import_partners>
                       <item><trade_country>United States</trade_country><percentage>53.4</percentage></item>
                     </import_partners></economy></country>"#,
            ),
            ("ca.xml", r#"<country><name>Canada</name><year>2006</year><economy/></country>"#),
        ])
        .unwrap()
    }

    #[test]
    fn single_path_twig_matches_all_instances() {
        let c = factbook();
        let p = TwigPattern::from_path("/country/economy/import_partners/item/percentage").unwrap();
        let m = evaluate_twig(&c, &p);
        assert_eq!(m.len(), 3);
        for row in &m.rows {
            assert_eq!(c.node_name(row[0]).unwrap(), "percentage");
        }
    }

    #[test]
    fn branching_twig_pairs_siblings_correctly() {
        let c = factbook();
        let p = TwigPattern::from_paths(&[
            "/country/name",
            "/country/economy/import_partners/item/trade_country",
            "/country/economy/import_partners/item/percentage",
        ])
        .unwrap();
        let m = evaluate_twig(&c, &p);
        // US has 2 items, Mexico 1, Canada none (no import_partners) -> 3 rows.
        assert_eq!(m.len(), 3);
        let name_col = m.column_of(m.output_nodes[0]).unwrap();
        let _ = name_col;
        for row in &m.rows {
            let contents: Vec<String> = row.iter().map(|&n| c.content(n).unwrap()).collect();
            // trade_country and percentage must come from the same item.
            let valid = matches!(
                (contents[1].as_str(), contents[2].as_str()),
                ("China", "15") | ("Canada", "16.9") | ("United States", "53.4")
            );
            assert!(valid, "mismatched siblings: {contents:?}");
        }
    }

    #[test]
    fn predicates_filter_matches() {
        let c = factbook();
        let mut p = TwigPattern::from_paths(&[
            "/country/name",
            "/country/economy/import_partners/item/trade_country",
        ])
        .unwrap();
        let tc =
            p.node_indices().into_iter().find(|&i| p.node(i).label == "trade_country").unwrap();
        p.set_predicate(tc, FullTextQuery::phrase("United States"));
        let m = evaluate_twig(&c, &p);
        assert_eq!(m.len(), 1);
        let contents: Vec<String> = m.rows[0].iter().map(|&n| c.content(n).unwrap()).collect();
        assert_eq!(contents, vec!["Mexico", "United States"]);
    }

    #[test]
    fn descendant_axis_skips_levels() {
        let c = factbook();
        let mut p = TwigPattern::with_root("country");
        let tc = p.add_child(0, "trade_country", Axis::Descendant);
        p.set_output(tc, true);
        let m = evaluate_twig(&c, &p);
        assert_eq!(m.len(), 3, "descendant axis reaches trade_country at any depth");
    }

    #[test]
    fn child_axis_is_strict() {
        let c = factbook();
        let mut p = TwigPattern::with_root("country");
        let tc = p.add_child(0, "trade_country", Axis::Child);
        p.set_output(tc, true);
        let m = evaluate_twig(&c, &p);
        assert!(m.is_empty(), "trade_country is never a direct child of country");
    }

    #[test]
    fn unmatched_patterns_return_empty() {
        let c = factbook();
        let p = TwigPattern::from_path("/country/nonexistent").unwrap();
        assert!(evaluate_twig(&c, &p).is_empty());
        let p = TwigPattern::from_path("/city/name").unwrap();
        assert!(evaluate_twig(&c, &p).is_empty());
    }

    #[test]
    fn output_projection_respects_output_flags() {
        let c = factbook();
        let mut p = TwigPattern::from_path("/country/year").unwrap();
        // Also output the root.
        p.set_output(0, true);
        let m = evaluate_twig(&c, &p);
        assert_eq!(m.output_nodes.len(), 2);
        assert_eq!(m.len(), 3);
        for row in &m.rows {
            assert_eq!(c.node_name(row[0]).unwrap(), "country");
            assert_eq!(c.node_name(row[1]).unwrap(), "year");
        }
    }

    #[test]
    fn duplicate_free_results() {
        let c = factbook();
        let p = TwigPattern::from_paths(&["/country/name", "/country/year"]).unwrap();
        let m = evaluate_twig(&c, &p);
        assert_eq!(m.len(), 3);
        let mut rows = m.rows.clone();
        rows.dedup();
        assert_eq!(rows.len(), m.len());
    }
}
