//! Cross-twig joins.
//!
//! "The remaining edges are called cross-twig joins, which combine the results
//! from different twigs. … we join the results from different twigs according
//! to the cross-twig join edges to produce the complete result tuples, which
//! is similar to a join in an RDBMS." (Sec. 7)
//!
//! Two join predicates cover the edges that can cross documents in the data
//! graph: value equality (value-based primary/foreign-key edges) and
//! graph adjacency (IDREF / XLink edges between the matched elements or their
//! ancestors).

use std::collections::HashMap;

use seda_datagraph::DataGraph;
use seda_xmlstore::{Collection, NodeId};

use crate::eval::TwigMatches;

/// A join predicate between a column of the left twig result and a column of
/// the right twig result.  Columns are indices into the respective
/// `output_nodes` / row vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPredicate {
    /// The contents of the two columns must be equal (value-based edge).
    ValueEquality {
        /// Column in the left result.
        left: usize,
        /// Column in the right result.
        right: usize,
    },
    /// The two matched nodes (or the elements owning them) must be directly
    /// connected by a non-tree edge of the data graph (IDREF / XLink /
    /// value-based edge materialised in the graph).
    GraphAdjacency {
        /// Column in the left result.
        left: usize,
        /// Column in the right result.
        right: usize,
    },
}

/// Result of joining two twig results: the output columns of the left result
/// followed by those of the right result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinedMatches {
    /// Pattern-node indices of the left twig, then of the right twig.
    pub output_nodes: Vec<usize>,
    /// Joined rows.
    pub rows: Vec<Vec<NodeId>>,
}

impl JoinedMatches {
    /// Number of joined rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the join produced nothing.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

fn content_key(collection: &Collection, node: NodeId) -> String {
    collection.content(node).unwrap_or_default()
}

/// True when `a` and `b` are directly connected by a non-tree edge, either
/// themselves or via the elements that own them (an IDREF edge links owning
/// elements, not the attribute nodes or text leaves the twig matched).
fn adjacent(graph: &DataGraph, collection: &Collection, a: NodeId, b: NodeId) -> bool {
    let related: Vec<NodeId> = {
        let mut v = vec![a];
        if let Ok(node) = collection.node(a) {
            if let Some(p) = node.parent {
                v.push(NodeId::new(a.doc, p));
            }
        }
        v
    };
    let targets: Vec<NodeId> = {
        let mut v = vec![b];
        if let Ok(node) = collection.node(b) {
            if let Some(p) = node.parent {
                v.push(NodeId::new(b.doc, p));
            }
        }
        v
    };
    for &x in &related {
        for (neighbor, _) in graph.cross_neighbors(x) {
            if targets.contains(neighbor) {
                return true;
            }
        }
    }
    false
}

/// Joins two twig results on the conjunction of the given predicates.
///
/// Value-equality predicates are evaluated with a hash join on the first such
/// predicate; graph-adjacency predicates (and any further value predicates)
/// are applied as filters on the candidate pairs.
pub fn cross_twig_join(
    collection: &Collection,
    graph: &DataGraph,
    left: &TwigMatches,
    right: &TwigMatches,
    predicates: &[JoinPredicate],
) -> JoinedMatches {
    cross_twig_join_bounded(collection, graph, left, right, predicates, None).0
}

/// [`cross_twig_join`] under a result-row ceiling.
///
/// When `max_rows` is set, the join stops once more than `max_rows` distinct
/// rows have been produced, keeps the first `max_rows` rows (in the join's
/// deterministic enumeration order after sort + dedup), and reports the clip
/// in the returned flag.  `(_, false)` means the join ran to completion and
/// the result equals [`cross_twig_join`]'s.
pub fn cross_twig_join_bounded(
    collection: &Collection,
    graph: &DataGraph,
    left: &TwigMatches,
    right: &TwigMatches,
    predicates: &[JoinPredicate],
    max_rows: Option<usize>,
) -> (JoinedMatches, bool) {
    let mut clipped = false;
    let mut result = JoinedMatches {
        output_nodes: left.output_nodes.iter().chain(right.output_nodes.iter()).copied().collect(),
        rows: Vec::new(),
    };
    if left.is_empty() || right.is_empty() {
        return (result, false);
    }

    // Pick the first value-equality predicate as the hash-join key.
    let hash_key = predicates.iter().find_map(|p| match p {
        JoinPredicate::ValueEquality { left, right } => Some((*left, *right)),
        _ => None,
    });

    let candidate_pairs: Vec<(usize, usize)> = match hash_key {
        Some((lcol, rcol)) => {
            let mut by_value: HashMap<String, Vec<usize>> = HashMap::new();
            for (ri, row) in right.rows.iter().enumerate() {
                by_value.entry(content_key(collection, row[rcol])).or_default().push(ri);
            }
            let mut pairs = Vec::new();
            for (li, row) in left.rows.iter().enumerate() {
                if let Some(ris) = by_value.get(&content_key(collection, row[lcol])) {
                    pairs.extend(ris.iter().map(|&ri| (li, ri)));
                }
            }
            pairs
        }
        None => {
            let mut pairs = Vec::with_capacity(left.rows.len() * right.rows.len());
            for li in 0..left.rows.len() {
                for ri in 0..right.rows.len() {
                    pairs.push((li, ri));
                }
            }
            pairs
        }
    };

    'pair: for (li, ri) in candidate_pairs {
        let lrow = &left.rows[li];
        let rrow = &right.rows[ri];
        for predicate in predicates {
            let ok = match *predicate {
                JoinPredicate::ValueEquality { left, right } => {
                    content_key(collection, lrow[left]) == content_key(collection, rrow[right])
                }
                JoinPredicate::GraphAdjacency { left, right } => {
                    adjacent(graph, collection, lrow[left], rrow[right])
                }
            };
            if !ok {
                continue 'pair;
            }
        }
        let mut row = lrow.clone();
        row.extend(rrow.iter().copied());
        result.rows.push(row);
        if let Some(max) = max_rows {
            if result.rows.len() > max {
                // Dedup before declaring a breach: duplicate candidate rows
                // must not trip the ceiling.
                result.rows.sort();
                result.rows.dedup();
                if result.rows.len() > max {
                    result.rows.truncate(max);
                    clipped = true;
                    break;
                }
            }
        }
    }
    result.rows.sort();
    result.rows.dedup();
    (result, clipped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_twig;
    use crate::pattern::TwigPattern;
    use seda_datagraph::GraphConfig;
    use seda_xmlstore::parse_collection;

    fn setup() -> (Collection, DataGraph) {
        let c = parse_collection(vec![
            (
                "us.xml",
                r#"<country id="cty-us"><name>United States</name><year>2006</year>
                     <economy><import_partners>
                       <item><trade_country>China</trade_country><percentage>15</percentage></item>
                     </import_partners></economy></country>"#,
            ),
            (
                "cn.xml",
                r#"<country id="cty-cn"><name>China</name><year>2006</year>
                     <economy><GDP_ppp>10.1T</GDP_ppp></economy></country>"#,
            ),
            (
                "sea.xml",
                r#"<sea id="sea-pac"><name>Pacific Ocean</name>
                     <bordering country_idref="cty-us"/>
                     <bordering country_idref="cty-cn"/></sea>"#,
            ),
        ])
        .unwrap();
        let g = DataGraph::build(&c, &GraphConfig::default());
        (c, g)
    }

    #[test]
    fn value_equality_join_pairs_partner_with_country_document() {
        let (c, g) = setup();
        // Left twig: US import partners (trade_country).
        let left = evaluate_twig(
            &c,
            &TwigPattern::from_path("/country/economy/import_partners/item/trade_country").unwrap(),
        );
        // Right twig: country names with their GDP.
        let right = evaluate_twig(
            &c,
            &TwigPattern::from_paths(&["/country/name", "/country/economy/GDP_ppp"]).unwrap(),
        );
        let joined = cross_twig_join(
            &c,
            &g,
            &left,
            &right,
            &[JoinPredicate::ValueEquality { left: 0, right: 0 }],
        );
        assert_eq!(joined.len(), 1);
        let row = &joined.rows[0];
        assert_eq!(c.content(row[0]).unwrap(), "China");
        assert_eq!(c.content(row[1]).unwrap(), "China");
        assert_eq!(c.content(row[2]).unwrap(), "10.1T");
        assert_eq!(joined.output_nodes.len(), 3);
    }

    #[test]
    fn graph_adjacency_join_follows_idref_edges() {
        let (c, g) = setup();
        // Left twig: the bordering elements of seas.
        let bordering = TwigPattern::from_path("/sea/bordering").unwrap();
        let left = evaluate_twig(&c, &bordering);
        // Right twig: country names together with the country root element.
        let mut country = TwigPattern::from_path("/country/name").unwrap();
        country.set_output(0, true);
        let right = evaluate_twig(&c, &country);
        let joined = cross_twig_join(
            &c,
            &g,
            &left,
            &right,
            &[JoinPredicate::GraphAdjacency { left: 0, right: 0 }],
        );
        // Two bordering elements, each adjacent to exactly one country root.
        assert_eq!(joined.len(), 2);
        for row in &joined.rows {
            assert_eq!(c.node_name(row[0]).unwrap(), "bordering");
            assert_eq!(c.node_name(row[1]).unwrap(), "country");
        }
    }

    #[test]
    fn conjunction_of_predicates_filters_further() {
        let (c, g) = setup();
        let left = evaluate_twig(
            &c,
            &TwigPattern::from_path("/country/economy/import_partners/item/trade_country").unwrap(),
        );
        let right = evaluate_twig(&c, &TwigPattern::from_path("/country/name").unwrap());
        // Value equality alone gives 1 pair; adding an (unsatisfiable)
        // adjacency predicate filters it out because the trade_country leaf
        // has no direct cross edge to the name node.
        let both = cross_twig_join(
            &c,
            &g,
            &left,
            &right,
            &[
                JoinPredicate::ValueEquality { left: 0, right: 0 },
                JoinPredicate::GraphAdjacency { left: 0, right: 0 },
            ],
        );
        assert!(both.is_empty());
    }

    #[test]
    fn join_without_predicates_is_a_cross_product() {
        let (c, g) = setup();
        let left = evaluate_twig(&c, &TwigPattern::from_path("/sea/name").unwrap());
        let right = evaluate_twig(&c, &TwigPattern::from_path("/country/name").unwrap());
        let joined = cross_twig_join(&c, &g, &left, &right, &[]);
        assert_eq!(joined.len(), left.len() * right.len());
    }

    #[test]
    fn bounded_join_clips_rows_and_reports_it() {
        let (c, g) = setup();
        let left = evaluate_twig(&c, &TwigPattern::from_path("/sea/name").unwrap());
        let right = evaluate_twig(&c, &TwigPattern::from_path("/country/name").unwrap());
        let full = cross_twig_join(&c, &g, &left, &right, &[]);
        assert!(full.len() >= 2, "fixture must produce a joinable cross product");

        // A generous ceiling changes nothing and reports no clip.
        let (unclipped, clipped) =
            cross_twig_join_bounded(&c, &g, &left, &right, &[], Some(full.len()));
        assert!(!clipped);
        assert_eq!(unclipped, full);

        // A tight ceiling keeps a prefix of the full result and says so.
        let (bounded, clipped) = cross_twig_join_bounded(&c, &g, &left, &right, &[], Some(1));
        assert!(clipped);
        assert_eq!(bounded.len(), 1);
        assert!(full.rows.contains(&bounded.rows[0]));

        // A zero ceiling yields an empty, clipped result.
        let (none, clipped) = cross_twig_join_bounded(&c, &g, &left, &right, &[], Some(0));
        assert!(clipped);
        assert!(none.is_empty());
    }

    #[test]
    fn empty_inputs_produce_empty_joins() {
        let (c, g) = setup();
        let left = evaluate_twig(&c, &TwigPattern::from_path("/sea/name").unwrap());
        let empty = evaluate_twig(&c, &TwigPattern::from_path("/sea/missing").unwrap());
        assert!(cross_twig_join(&c, &g, &left, &empty, &[]).is_empty());
        assert!(cross_twig_join(&c, &g, &empty, &left, &[]).is_empty());
    }
}
