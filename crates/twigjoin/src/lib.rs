//! # seda-twigjoin
//!
//! The complete-result machinery of SEDA's Sec. 7: query pattern trees
//! ([`TwigPattern`]), holistic stack-based twig evaluation over Dewey-ordered
//! input streams ([`evaluate_twig`]), and cross-twig joins
//! ([`cross_twig_join`]) that combine twig results across documents via value
//! equality or IDREF adjacency — "similar to a join in an RDBMS".
//!
//! ```
//! use seda_twigjoin::{evaluate_twig, TwigPattern};
//! use seda_xmlstore::parse_collection;
//!
//! let collection = parse_collection(vec![
//!     ("us.xml", "<country><name>United States</name><year>2006</year></country>"),
//! ]).unwrap();
//! let pattern = TwigPattern::from_paths(&["/country/name", "/country/year"]).unwrap();
//! let matches = evaluate_twig(&collection, &pattern);
//! assert_eq!(matches.len(), 1);
//! ```

pub mod eval;
pub mod join;
pub mod pattern;

pub use eval::{evaluate_twig, TwigMatches};
pub use join::{cross_twig_join, cross_twig_join_bounded, JoinPredicate, JoinedMatches};
pub use pattern::{Axis, TwigNode, TwigParseError, TwigPattern};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::{evaluate_twig, TwigPattern};
    use seda_xmlstore::Collection;

    /// Builds a collection of `n` documents each holding `items` repeated
    /// item elements with two leaves.
    fn item_collection(n: u8, items: u8) -> Collection {
        let mut c = Collection::new();
        for d in 0..n.max(1) {
            c.add_document(format!("d{d}.xml"), |b| {
                b.start_element("list")?;
                for i in 0..items.max(1) {
                    b.start_element("item")?;
                    b.leaf("key", &format!("k{d}_{i}"))?;
                    b.leaf("value", &format!("{}", (d as u32) * 100 + i as u32))?;
                    b.end_element()?;
                }
                b.end_element()?;
                Ok(())
            })
            .unwrap();
        }
        c
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A branching twig over repeated siblings produces exactly one match
        /// per item (pairs never mix items), and a single-leaf twig produces
        /// one match per leaf instance.
        #[test]
        fn twig_match_counts(n in 1u8..5, items in 1u8..6) {
            let c = item_collection(n, items);
            let branching =
                TwigPattern::from_paths(&["/list/item/key", "/list/item/value"]).unwrap();
            let m = evaluate_twig(&c, &branching);
            prop_assert_eq!(m.len(), (n as usize) * (items as usize));
            for row in &m.rows {
                // key and value must come from the same item (same parent).
                let key_parent = c.node(row[0]).unwrap().parent;
                let value_parent = c.node(row[1]).unwrap().parent;
                prop_assert_eq!(key_parent, value_parent);
                prop_assert_eq!(row[0].doc, row[1].doc);
            }
            let single = TwigPattern::from_path("/list/item/value").unwrap();
            prop_assert_eq!(evaluate_twig(&c, &single).len(), (n as usize) * (items as usize));
        }

        /// Evaluation is deterministic: two runs produce identical rows.
        #[test]
        fn twig_evaluation_is_deterministic(n in 1u8..4, items in 1u8..5) {
            let c = item_collection(n, items);
            let p = TwigPattern::from_paths(&["/list/item/key", "/list/item/value"]).unwrap();
            let a = evaluate_twig(&c, &p);
            let b = evaluate_twig(&c, &p);
            prop_assert_eq!(a.rows, b.rows);
        }
    }
}
