//! Query pattern trees (twigs).
//!
//! Sec. 7 of the paper partitions the user's connection graph into *twigs*:
//! "each twig is a query pattern tree, which includes the connection nodes and
//! parent/child edges within the same document".  A [`TwigPattern`] is such a
//! tree: every node carries a label test, an axis relating it to its parent
//! (child or descendant), an optional full-text predicate on its content, and
//! a flag marking it as an output (query) node.

use std::fmt;

use serde::{Deserialize, Serialize};

use seda_textindex::FullTextQuery;

/// Error produced when a textual twig path cannot be compiled into a
/// [`TwigPattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwigParseError {
    message: String,
}

impl TwigParseError {
    fn new(message: impl Into<String>) -> Self {
        TwigParseError { message: message.into() }
    }
}

impl fmt::Display for TwigParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "twig parse error: {}", self.message)
    }
}

impl std::error::Error for TwigParseError {}

/// Axis between a pattern node and its parent pattern node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// Direct parent/child edge (`/`).
    Child,
    /// Ancestor/descendant edge (`//`).
    Descendant,
}

/// One node of a twig pattern.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwigNode {
    /// Element/attribute label the node must match.
    pub label: String,
    /// Axis to the parent pattern node (ignored for the root).
    pub axis: Axis,
    /// Optional full-text predicate on the matched node's direct content.
    pub predicate: Option<FullTextQuery>,
    /// True when matches of this node are part of the output tuples.
    pub output: bool,
    /// Parent pattern-node index.
    pub parent: Option<usize>,
    /// Child pattern-node indices.
    pub children: Vec<usize>,
}

/// A query pattern tree.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TwigPattern {
    nodes: Vec<TwigNode>,
}

impl TwigPattern {
    /// Creates a pattern with only a root node.
    pub fn with_root(label: impl Into<String>) -> Self {
        TwigPattern {
            nodes: vec![TwigNode {
                label: label.into(),
                axis: Axis::Child,
                predicate: None,
                output: false,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// Compiles the textual twig syntax `/a/b//c`: `/` introduces a
    /// child-axis step, `//` a descendant-axis step.  The leaf of the path is
    /// marked as an output node.
    pub fn parse(expr: &str) -> Result<Self, TwigParseError> {
        let trimmed = expr.trim();
        if trimmed.is_empty() {
            return Err(TwigParseError::new("empty twig path"));
        }
        if !trimmed.starts_with('/') {
            return Err(TwigParseError::new(format!("twig path must start with '/': {trimmed:?}")));
        }
        let mut steps = Vec::new();
        let mut rest = trimmed;
        while !rest.is_empty() {
            let axis = if let Some(stripped) = rest.strip_prefix("//") {
                rest = stripped;
                Axis::Descendant
            } else if let Some(stripped) = rest.strip_prefix('/') {
                rest = stripped;
                Axis::Child
            } else {
                return Err(TwigParseError::new(format!(
                    "expected '/' before the next step in twig path {trimmed:?}"
                )));
            };
            let end = rest.find('/').unwrap_or(rest.len());
            let label = &rest[..end];
            if label.is_empty() {
                return Err(TwigParseError::new(format!("empty step in twig path {trimmed:?}")));
            }
            steps.push((axis, label));
            rest = &rest[end..];
        }
        let mut iter = steps.into_iter();
        let (_, root) = iter.next().expect("invariant: a parsed twig path has at least one step");
        let mut pattern = TwigPattern::with_root(root);
        let mut current = 0usize;
        for (axis, label) in iter {
            current = pattern.add_child(current, label, axis);
        }
        pattern.nodes[current].output = true;
        Ok(pattern)
    }

    /// Builds a single-path pattern from `/a/b/c` notation; the leaf is marked
    /// as an output node.
    pub fn from_path(path: &str) -> Result<Self, TwigParseError> {
        let mut labels = path.split('/').filter(|s| !s.is_empty());
        let root = labels
            .next()
            .ok_or_else(|| TwigParseError::new(format!("twig path has no steps: {path:?}")))?;
        let mut pattern = TwigPattern::with_root(root);
        let mut current = 0usize;
        for label in labels {
            current = pattern.add_child(current, label, Axis::Child);
        }
        pattern.nodes[current].output = true;
        Ok(pattern)
    }

    /// Builds a merged pattern from several `/a/b/c` paths sharing the same
    /// root; each path's leaf becomes an output node.  Fails when the paths
    /// are empty or have different root labels.
    pub fn from_paths(paths: &[&str]) -> Result<Self, TwigParseError> {
        let mut iter = paths.iter();
        let first = iter.next().ok_or_else(|| TwigParseError::new("no twig paths to merge"))?;
        let mut pattern = TwigPattern::from_path(first)?;
        for path in iter {
            let mut labels = path.split('/').filter(|s| !s.is_empty());
            let root = labels
                .next()
                .ok_or_else(|| TwigParseError::new(format!("twig path has no steps: {path:?}")))?;
            if root != pattern.nodes[0].label {
                return Err(TwigParseError::new(format!(
                    "twig paths have different roots: {:?} vs {root:?}",
                    pattern.nodes[0].label
                )));
            }
            let mut current = 0usize;
            for label in labels {
                current = match pattern.nodes[current].children.iter().copied().find(|&c| {
                    pattern.nodes[c].label == label && pattern.nodes[c].axis == Axis::Child
                }) {
                    Some(existing) => existing,
                    None => pattern.add_child(current, label, Axis::Child),
                };
            }
            pattern.nodes[current].output = true;
        }
        Ok(pattern)
    }

    /// Adds a child pattern node and returns its index.
    pub fn add_child(&mut self, parent: usize, label: impl Into<String>, axis: Axis) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(TwigNode {
            label: label.into(),
            axis,
            predicate: None,
            output: false,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    /// Sets the full-text predicate of a pattern node.
    pub fn set_predicate(&mut self, node: usize, predicate: FullTextQuery) {
        self.nodes[node].predicate = Some(predicate);
    }

    /// Marks a pattern node as an output node.
    pub fn set_output(&mut self, node: usize, output: bool) {
        self.nodes[node].output = output;
    }

    /// The root pattern-node index (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the pattern has no nodes (only possible via `Default`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a pattern node.
    pub fn node(&self, idx: usize) -> &TwigNode {
        &self.nodes[idx]
    }

    /// Indices of all pattern nodes, root first (pre-order).
    pub fn node_indices(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(n) = stack.pop() {
            order.push(n);
            for &c in self.nodes[n].children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Indices of leaf pattern nodes.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].children.is_empty()).collect()
    }

    /// Indices of output pattern nodes, in index order.
    pub fn output_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].output).collect()
    }

    /// Root-to-leaf decomposition: for every leaf, the chain of pattern-node
    /// indices from the root down to that leaf.  The stack-based evaluation
    /// processes one chain at a time and merges the per-chain solutions.
    pub fn root_to_leaf_chains(&self) -> Vec<Vec<usize>> {
        self.leaves()
            .into_iter()
            .map(|leaf| {
                let mut chain = vec![leaf];
                let mut current = leaf;
                while let Some(p) = self.nodes[current].parent {
                    chain.push(p);
                    current = p;
                }
                chain.reverse();
                chain
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_path_builds_a_chain() {
        let p = TwigPattern::from_path("/country/economy/GDP").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.node(0).label, "country");
        assert_eq!(p.node(2).label, "GDP");
        assert!(p.node(2).output);
        assert!(!p.node(0).output);
        assert_eq!(p.leaves(), vec![2]);
    }

    #[test]
    fn from_paths_merges_shared_prefixes() {
        let p = TwigPattern::from_paths(&[
            "/country/economy/import_partners/item/trade_country",
            "/country/economy/import_partners/item/percentage",
            "/country/name",
        ])
        .unwrap();
        // country, economy, import_partners, item, trade_country, percentage, name
        assert_eq!(p.len(), 7);
        assert_eq!(p.output_nodes().len(), 3);
        assert_eq!(p.leaves().len(), 3);
        // The two partner leaves share the same `item` parent node.
        let tc =
            p.node_indices().into_iter().find(|&i| p.node(i).label == "trade_country").unwrap();
        let pct = p.node_indices().into_iter().find(|&i| p.node(i).label == "percentage").unwrap();
        assert_eq!(p.node(tc).parent, p.node(pct).parent);
    }

    #[test]
    fn from_paths_rejects_mismatched_roots() {
        let err = TwigPattern::from_paths(&["/country/name", "/sea/name"]).unwrap_err();
        assert!(err.to_string().contains("different roots"), "{err}");
        assert!(TwigPattern::from_paths(&[]).is_err());
        assert!(TwigPattern::from_path("").is_err());
    }

    #[test]
    fn parse_supports_child_and_descendant_axes() {
        let p = TwigPattern::parse("/country/economy//trade_country").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.node(1).axis, Axis::Child);
        assert_eq!(p.node(2).axis, Axis::Descendant);
        assert!(p.node(2).output);
        assert_eq!(p.output_nodes(), vec![2]);
    }

    #[test]
    fn parse_rejects_malformed_paths() {
        assert!(TwigPattern::parse("").is_err());
        assert!(TwigPattern::parse("country/name").is_err());
        assert!(TwigPattern::parse("/country///name").is_err());
        let err = TwigPattern::parse("  ").unwrap_err();
        assert!(err.to_string().contains("twig parse error"));
    }

    #[test]
    fn chains_cover_every_leaf() {
        let p = TwigPattern::from_paths(&["/a/b/c", "/a/b/d", "/a/e"]).unwrap();
        let chains = p.root_to_leaf_chains();
        assert_eq!(chains.len(), 3);
        for chain in &chains {
            assert_eq!(chain[0], p.root());
            assert!(p.node(*chain.last().unwrap()).children.is_empty());
        }
    }

    #[test]
    fn descendant_axis_and_predicates_are_recorded() {
        let mut p = TwigPattern::with_root("country");
        let any_tc = p.add_child(0, "trade_country", Axis::Descendant);
        p.set_predicate(any_tc, FullTextQuery::phrase("United States"));
        p.set_output(any_tc, true);
        assert_eq!(p.node(any_tc).axis, Axis::Descendant);
        assert!(p.node(any_tc).predicate.is_some());
        assert_eq!(p.output_nodes(), vec![any_tc]);
    }

    #[test]
    fn preorder_enumeration_starts_at_root() {
        let p = TwigPattern::from_paths(&["/a/b/c", "/a/d"]).unwrap();
        let order = p.node_indices();
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), p.len());
    }
}
