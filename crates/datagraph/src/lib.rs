//! # seda-datagraph
//!
//! The SEDA data graph (Definition 2 of the paper): XML element/attribute
//! nodes connected by parent/child, IDREF, XLink/XPointer and value-based
//! edges.  The crate builds the graph over a [`seda_xmlstore::Collection`],
//! exposes traversal primitives (BFS, shortest paths, connectedness of result
//! tuples), and implements the *compactness* measure the top-k scoring
//! function uses.
//!
//! ```
//! use seda_datagraph::{DataGraph, GraphConfig};
//! use seda_xmlstore::parse_collection;
//!
//! let collection = parse_collection(vec![
//!     ("c.xml", r#"<country id="c1"><name>China</name></country>"#),
//!     ("s.xml", r#"<sea id="s1"><bordering country_idref="c1"/></sea>"#),
//! ]).unwrap();
//! let graph = DataGraph::build(&collection, &GraphConfig::default());
//! assert_eq!(graph.cross_edge_count(), 1);
//! ```

pub mod audit;
pub mod config;
pub mod connectivity;
pub mod graph;
pub mod traversal;

pub use config::{GraphConfig, ValueKeySpec};
pub use connectivity::{ConnectivityIndex, LabelScheme, LABEL_RADIUS};
pub use graph::{doc_component_builds_on_this_thread, DataGraph, Edge, EdgeKind, GraphShard};
pub use traversal::{
    bfs_is_connected_with, bfs_shortest_distance_with, bfs_shortest_path_with, compactness,
    compactness_with, connecting_tree_size, connecting_tree_size_with, is_connected,
    is_connected_with, pairwise_distances, shortest_distance, shortest_distance_with,
    shortest_path, shortest_path_with, Hop, TraversalScratch,
};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::config::GraphConfig;
    use crate::graph::DataGraph;
    use crate::traversal::{compactness, connecting_tree_size, is_connected, shortest_distance};
    use seda_xmlstore::{Collection, NodeId};

    /// Builds a single-document collection shaped like a shallow tree of
    /// `width` branches each with `depth` nested children.
    fn tree_collection(width: u8, depth: u8) -> Collection {
        let mut c = Collection::new();
        c.add_document("t.xml", |b| {
            b.start_element("root")?;
            for w in 0..width.max(1) {
                b.start_element(&format!("branch{w}"))?;
                for d in 0..depth.max(1) {
                    b.start_element(&format!("level{d}"))?;
                }
                b.leaf("leaf", &format!("value {w}"))?;
                for _ in 0..depth.max(1) {
                    b.end_element()?;
                }
                b.end_element()?;
            }
            b.end_element()?;
            Ok(())
        })
        .unwrap();
        c
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Within a single document every pair of nodes is connected, the
        /// distance is symmetric, and compactness is positive.
        #[test]
        fn tree_nodes_are_always_connected(width in 1u8..4, depth in 1u8..4, a in 0u32..10, b in 0u32..10) {
            let c = tree_collection(width, depth);
            let g = DataGraph::build(&c, &GraphConfig::default());
            let doc = c.documents().next().unwrap();
            let n = doc.len() as u32;
            let na = NodeId::new(doc.id, a % n);
            let nb = NodeId::new(doc.id, b % n);
            let limit = doc.len();
            let d_ab = shortest_distance(&g, na, nb, limit);
            let d_ba = shortest_distance(&g, nb, na, limit);
            prop_assert!(d_ab.is_some());
            prop_assert_eq!(d_ab, d_ba);
            prop_assert!(is_connected(&g, &[na, nb], limit));
            prop_assert!(compactness(&g, &[na, nb], limit) > 0.0);
        }

        /// The connecting-tree size of a pair equals the pair's shortest-path
        /// distance, and adding a node never shrinks the connecting tree.
        #[test]
        fn connecting_tree_is_monotone(width in 1u8..4, depth in 1u8..4, a in 0u32..10, b in 0u32..10, extra in 0u32..10) {
            let c = tree_collection(width, depth);
            let g = DataGraph::build(&c, &GraphConfig::default());
            let doc = c.documents().next().unwrap();
            let n = doc.len() as u32;
            let limit = doc.len();
            let na = NodeId::new(doc.id, a % n);
            let nb = NodeId::new(doc.id, b % n);
            let nc = NodeId::new(doc.id, extra % n);
            let pair = connecting_tree_size(&g, &[na, nb], limit).unwrap();
            let dist = shortest_distance(&g, na, nb, limit).unwrap();
            prop_assert_eq!(pair, dist);
            let triple = connecting_tree_size(&g, &[na, nb, nc], limit).unwrap();
            prop_assert!(triple >= pair);
        }
    }
}
